//! The stream driver: verified, idempotent delta ingestion feeding a
//! set of incremental operators.
//!
//! # Replay safety
//!
//! Delta streams in this system are *mostly* reliable — the epoch log
//! is checksummed per frame, replication verifies the checksum chain —
//! but a tailer can race a compaction (epochs vanish from the log), a
//! cluster push can be re-delivered, and chaos injection deliberately
//! drops and duplicates. A streaming analytics layer that silently
//! mis-applies any of those diverges from the corpus *forever*, which
//! is strictly worse than batch re-analysis being slow. The driver
//! therefore refuses to guess:
//!
//! * **Duplicates / reordering** — every delta targets exactly one
//!   epoch; `delta.epoch <= current` is dropped as a duplicate (the
//!   state already includes it or something newer).
//! * **Gaps** — before mutating anything, the driver computes what the
//!   corpus content checksum *would be* after the delta, using its
//!   mirror and the commutative [`fold_content`] sum. A mismatch with
//!   the producer-recorded [`DeltaRecord::content_checksum`] (or a
//!   removal of an entry the mirror does not hold) proves a delta went
//!   missing in between. The delta is rejected **without touching any
//!   state**, and the driver reports [`Offer::Gap`] / goes *lagging*
//!   until [`StreamDriver::resync`] rebuilds it from an authoritative
//!   materialized epoch.
//!
//! Because verification is read-only, a detected fault never corrupts
//! operator state: either a delta applies exactly, or nothing happens.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use v6chaos::{Chaos, Fault};
use v6obs::{Counter, Histogram};
use v6store::DeltaRecord;

use crate::kernel::{content_term, fold_content};
use crate::op::{Event, Operator};
use crate::{DensityMap, DeviceTracker, EntropyProfile, RotationEstimator, SharedResolver};

/// The standard operator set, fed as one unit.
///
/// Owns one instance of each analytics operator. Kept separate from
/// [`StreamDriver`] so batch equivalence checks can build a fresh
/// `Analytics` from materialized entries and compare checksums — the
/// invariant the whole crate hangs on.
pub struct Analytics {
    /// Per-/48 density.
    pub density: DensityMap,
    /// Per-AS IID entropy histograms.
    pub entropy: EntropyProfile,
    /// EUI-64 device tracking and movement windows.
    pub devices: DeviceTracker,
    /// Per-AS rotation period estimation.
    pub rotation: RotationEstimator,
}

impl Analytics {
    /// Fresh, empty operators attributing addresses through `resolver`.
    pub fn new(resolver: SharedResolver) -> Analytics {
        Analytics {
            density: DensityMap::new(),
            entropy: EntropyProfile::new(resolver.clone()),
            devices: DeviceTracker::new(resolver.clone()),
            rotation: RotationEstimator::new(resolver),
        }
    }

    /// Builds operators from a materialized corpus — the batch path.
    ///
    /// This is definitionally the reference result: a streaming driver
    /// that ingested every delta must hold operators with exactly
    /// these checksums.
    pub fn from_entries(resolver: SharedResolver, entries: &[(u128, u32)]) -> Analytics {
        let mut a = Analytics::new(resolver);
        for &(bits, week) in entries {
            a.apply(&Event::Added { bits, week });
        }
        a
    }

    /// Folds one event into every operator.
    pub fn apply(&mut self, event: &Event) {
        self.density.apply(event);
        self.entropy.apply(event);
        self.devices.apply(event);
        self.rotation.apply(event);
    }

    /// `(operator name, checksum)` for all operators, in fixed order.
    pub fn checksums(&self) -> [(&'static str, u64); 4] {
        [
            (self.density.name(), self.density.checksum()),
            (self.entropy.name(), self.entropy.checksum()),
            (self.devices.name(), self.devices.checksum()),
            (self.rotation.name(), self.rotation.checksum()),
        ]
    }

    /// Clears every operator.
    pub fn reset(&mut self) {
        self.density.reset();
        self.entropy.reset();
        self.devices.reset();
        self.rotation.reset();
    }
}

/// What [`StreamDriver::offer`] did with one delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Verified and applied; this many resolved events were folded.
    Applied(usize),
    /// `delta.epoch` is not newer than the current epoch — already
    /// incorporated (re-delivery or reordering). Dropped, harmless.
    Duplicate,
    /// Checksum-chain mismatch: at least one intervening delta is
    /// missing. Nothing was mutated; the driver is now lagging.
    Gap,
    /// Dropped because the driver is lagging from an earlier gap and
    /// awaits [`StreamDriver::resync`].
    Lagging,
    /// Dropped by the installed fault injector before the driver saw
    /// it — a lost delivery. Surfaces as [`Offer::Gap`] at the next
    /// non-empty delta.
    Dropped,
}

struct DriverMetrics {
    applied: Counter,
    events: Counter,
    duplicates: Counter,
    gaps: Counter,
    dropped: Counter,
    resyncs: Counter,
    apply_latency: Histogram,
}

impl DriverMetrics {
    fn global() -> DriverMetrics {
        DriverMetrics {
            applied: v6obs::counter("stream.op.applied"),
            events: v6obs::counter("stream.op.events"),
            duplicates: v6obs::counter("stream.op.duplicates"),
            gaps: v6obs::counter("stream.op.gaps"),
            dropped: v6obs::counter("stream.op.dropped"),
            resyncs: v6obs::counter("stream.op.resyncs"),
            apply_latency: v6obs::histogram("stream.op.apply_latency"),
        }
    }
}

/// Tails a delta stream into an [`Analytics`] set, maintaining a
/// corpus mirror for verification and event resolution.
///
/// Work per delta is O(|delta| · log corpus) — independent of corpus
/// *size* except through map-depth, which is what makes per-epoch
/// analytics flat where batch re-analysis grows linearly.
pub struct StreamDriver {
    /// bits → first-seen week; the verified corpus mirror.
    mirror: HashMap<u128, u32>,
    epoch: u64,
    week: u64,
    /// Running [`fold_content`] sum over the mirror.
    checksum: u64,
    lagging: bool,
    analytics: Analytics,
    chaos: Option<Arc<dyn Chaos>>,
    metrics: DriverMetrics,
    /// Scratch event buffer, reused across deltas.
    events: Vec<Event>,
}

impl StreamDriver {
    /// An empty driver at epoch 0.
    pub fn new(resolver: SharedResolver) -> StreamDriver {
        StreamDriver {
            mirror: HashMap::new(),
            epoch: 0,
            week: 0,
            checksum: 0,
            lagging: false,
            analytics: Analytics::new(resolver),
            chaos: None,
            metrics: DriverMetrics::global(),
            events: Vec::new(),
        }
    }

    /// Installs a fault injector consulted by [`StreamDriver::feed`]
    /// at `stream.delta.<epoch>` sites.
    pub fn with_chaos(mut self, chaos: Arc<dyn Chaos>) -> StreamDriver {
        self.chaos = Some(chaos);
        self
    }

    /// The epoch the operators reflect.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The latest study week the operators reflect.
    pub fn week(&self) -> u64 {
        self.week
    }

    /// Live corpus size in the mirror.
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// True when no entries are mirrored.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// The maintained corpus content checksum (the commutative
    /// [`fold_content`] sum over all mirrored entries).
    pub fn content_checksum(&self) -> u64 {
        self.checksum
    }

    /// True when a gap was detected and a [`StreamDriver::resync`] is
    /// required before further deltas apply.
    pub fn is_lagging(&self) -> bool {
        self.lagging
    }

    /// The operator set.
    pub fn analytics(&self) -> &Analytics {
        &self.analytics
    }

    /// Verifies and applies one delta.
    pub fn offer(&mut self, delta: &DeltaRecord) -> Offer {
        let started = Instant::now();
        if self.lagging {
            self.metrics.dropped.inc();
            return Offer::Lagging;
        }
        if delta.epoch <= self.epoch {
            self.metrics.duplicates.inc();
            return Offer::Duplicate;
        }

        // Read-only verification: compute the post-delta checksum from
        // the mirror. Any inconsistency proves a missing delta.
        let mut next = self.checksum;
        let mut consistent = true;
        for &bits in &delta.removed {
            match self.mirror.get(&bits) {
                Some(&week) => next = next.wrapping_sub(content_term(bits, week)),
                None => {
                    consistent = false;
                    break;
                }
            }
        }
        if consistent {
            for &(bits, week) in &delta.added {
                if let Some(&old) = self.mirror.get(&bits) {
                    next = next.wrapping_sub(content_term(bits, old));
                }
                next = fold_content(next, bits, week);
            }
        }
        if !consistent || next != delta.content_checksum {
            self.metrics.gaps.inc();
            self.lagging = true;
            return Offer::Gap;
        }

        // Verified: resolve events and mutate mirror + operators.
        self.events.clear();
        for &bits in &delta.removed {
            let week = self.mirror.remove(&bits).expect("verified above");
            self.events.push(Event::Removed { bits, week });
        }
        for &(bits, week) in &delta.added {
            match self.mirror.insert(bits, week) {
                Some(old_week) => self.events.push(Event::WeekChanged {
                    bits,
                    old_week,
                    new_week: week,
                }),
                None => self.events.push(Event::Added { bits, week }),
            }
        }
        let events = std::mem::take(&mut self.events);
        for event in &events {
            self.analytics.apply(event);
        }
        let count = events.len();
        self.events = events;
        self.checksum = next;
        self.epoch = delta.epoch;
        self.week = delta.week;
        self.metrics.applied.inc();
        self.metrics.events.add(count as u64);
        self.metrics
            .apply_latency
            .record_duration(started.elapsed());
        Offer::Applied(count)
    }

    /// Chaos-aware delivery: consults the injector at
    /// `stream.delta.<epoch>` and simulates the transport faults the
    /// driver must survive — `Error`/`Panic` drop the delta entirely
    /// (a lost delivery, surfacing as a gap at the next delta),
    /// `Stall` delivers it twice (a retried send). Without an
    /// installed injector this is exactly [`StreamDriver::offer`].
    pub fn feed(&mut self, delta: &DeltaRecord) -> Offer {
        let fault = match &self.chaos {
            Some(chaos) => chaos.decide(&format!("stream.delta.{}", delta.epoch), 0),
            None => Fault::None,
        };
        match fault {
            Fault::Error | Fault::Panic => {
                self.metrics.dropped.inc();
                // The delta is lost in transit; the driver only learns
                // at the next delivery, when the chain breaks.
                Offer::Dropped
            }
            Fault::Stall(_) => {
                let first = self.offer(delta);
                let second = self.offer(delta);
                debug_assert!(
                    !matches!(second, Offer::Applied(_)),
                    "re-delivery must be deduped"
                );
                first
            }
            Fault::None => self.offer(delta),
        }
    }

    /// Polls a live epoch-log tailer and feeds every newly delivered
    /// delta — the "analytics sidecar tailing a serving store's
    /// epoch log" deployment shape.
    ///
    /// Returns the per-delta outcomes plus the tailer's own report.
    /// Note a tailer can race the log's checkpoint compaction, in
    /// which case compacted epochs are genuine gaps: the driver
    /// detects them via the checksum chain and goes lagging, and the
    /// caller resyncs from the store's materialized state.
    pub fn poll_log(
        &mut self,
        tailer: &mut v6store::LogTailer,
    ) -> std::io::Result<(Vec<Offer>, v6store::TailReport)> {
        let (deltas, report) = tailer.poll()?;
        let outcomes = deltas.iter().map(|d| self.feed(d)).collect();
        Ok((outcomes, report))
    }

    /// Rebuilds mirror, checksum, and all operators from an
    /// authoritative materialized epoch — the gap recovery path.
    ///
    /// O(corpus), by design: resync is the explicitly-paid fallback
    /// that bounds how wrong the cheap path can ever be.
    pub fn resync(&mut self, epoch: u64, week: u64, entries: &[(u128, u32)]) {
        self.mirror.clear();
        self.mirror.reserve(entries.len());
        self.analytics.reset();
        let mut checksum = 0u64;
        for &(bits, week) in entries {
            self.mirror.insert(bits, week);
            checksum = fold_content(checksum, bits, week);
            self.analytics.apply(&Event::Added { bits, week });
        }
        self.checksum = checksum;
        self.epoch = epoch;
        self.week = week;
        self.lagging = false;
        self.metrics.resyncs.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::PrefixAsTable;
    use v6store::{replica, EpochState, EpochView};

    fn resolver() -> SharedResolver {
        Arc::new(PrefixAsTable::new(Vec::new()))
    }

    /// Builds the delta carrying `prev` to `entries`, with the
    /// canonical fold checksum a serving producer would record.
    fn delta_to(prev: &EpochState, epoch: u64, entries: &[(u128, u32)]) -> DeltaRecord {
        let checksum = entries
            .iter()
            .fold(0u64, |acc, &(bits, week)| fold_content(acc, bits, week));
        replica::delta_between(
            prev,
            &EpochView {
                epoch,
                week: epoch,
                content_checksum: checksum,
                missing_shards: &[],
                entries,
                aliases: &[],
            },
        )
    }

    fn advance(state: &mut EpochState, epoch: u64, entries: Vec<(u128, u32)>) -> DeltaRecord {
        let delta = delta_to(state, epoch, &entries);
        replica::apply(state, &delta);
        delta
    }

    #[test]
    fn applies_duplicates_and_gaps() {
        let mut state = EpochState::default();
        let mut driver = StreamDriver::new(resolver());

        let d1 = advance(&mut state, 1, vec![(10, 1), (20, 1)]);
        let d2 = advance(&mut state, 2, vec![(10, 1), (30, 2)]);
        let d3 = advance(&mut state, 3, vec![(10, 2), (30, 2), (40, 3)]);

        assert_eq!(driver.offer(&d1), Offer::Applied(2));
        assert_eq!(driver.offer(&d1), Offer::Duplicate, "re-delivery is inert");
        assert_eq!(driver.offer(&d2), Offer::Applied(2), "remove 20, add 30");
        assert_eq!(driver.content_checksum(), d2.content_checksum);

        // Skip d3's predecessor? No — drop d3 and offer a later delta:
        let d4 = advance(&mut state, 4, vec![(10, 2), (40, 3)]);
        assert_eq!(driver.offer(&d4), Offer::Gap, "missing d3 breaks the chain");
        assert!(driver.is_lagging());
        assert_eq!(
            driver.offer(&d3),
            Offer::Lagging,
            "lagging drops everything"
        );
        assert_eq!(
            driver.content_checksum(),
            d2.content_checksum,
            "gap rejection mutated nothing"
        );

        driver.resync(state.epoch, state.week, &state.entries);
        assert!(!driver.is_lagging());
        assert_eq!(driver.epoch(), 4);
        assert_eq!(driver.content_checksum(), d4.content_checksum);

        // Equivalence after the whole ordeal.
        let batch = Analytics::from_entries(resolver(), &state.entries);
        assert_eq!(driver.analytics().checksums(), batch.checksums());
    }

    #[test]
    fn week_change_resolves_as_upsert() {
        let mut state = EpochState::default();
        let mut driver = StreamDriver::new(resolver());
        let d1 = advance(&mut state, 1, vec![(10, 5)]);
        let d2 = advance(&mut state, 2, vec![(10, 2)]);
        assert_eq!(driver.offer(&d1), Offer::Applied(1));
        assert_eq!(driver.offer(&d2), Offer::Applied(1));
        let batch = Analytics::from_entries(resolver(), &state.entries);
        assert_eq!(driver.analytics().checksums(), batch.checksums());
    }

    #[test]
    fn removal_of_unknown_entry_is_a_gap() {
        let mut state = EpochState::default();
        let mut driver = StreamDriver::new(resolver());
        let d1 = advance(&mut state, 1, vec![(10, 1), (20, 1)]);
        driver.offer(&d1);
        let bogus = DeltaRecord {
            epoch: 2,
            week: 2,
            content_checksum: 0,
            missing_shards: vec![],
            removed: vec![99],
            added: vec![],
            removed_aliases: vec![],
            added_aliases: vec![],
        };
        assert_eq!(driver.offer(&bogus), Offer::Gap);
    }
}
