//! Address → AS attribution for per-AS streaming analytics.
//!
//! Delta records carry only `(bits, week)`; the per-AS operators
//! ([`crate::EntropyProfile`], [`crate::RotationEstimator`], the
//! cross-AS classes of [`crate::DeviceTracker`]) need to know which
//! network owns each address. An [`AsResolver`] supplies that mapping.
//! The batch pipeline builds a [`PrefixAsTable`] from the simulated
//! world's routing table; production deployments would build one from
//! a BGP dump — either way the resolver must be **stable across the
//! stream's lifetime**, because re-attributing history is exactly the
//! kind of hidden global pass this crate exists to eliminate.

/// The attribution an [`AsResolver`] returns for one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsTag {
    /// Dense AS identifier (an index, not a real ASN — callers map
    /// back through their own table).
    pub index: u16,
    /// Registration country, as two big-endian ISO 3166-1 alpha-2
    /// bytes (`u16::from_be_bytes(*b"DE")`).
    pub country: u16,
}

/// Maps an address to the AS that announces it.
pub trait AsResolver {
    /// The owning AS, or `None` when no covering route exists
    /// (unrouted addresses are skipped by per-AS operators).
    fn resolve(&self, bits: u128) -> Option<AsTag>;
}

/// A sorted, non-overlapping longest-prefix table — the standard
/// [`AsResolver`].
///
/// Entries are `(prefix_bits, prefix_len, tag)`; lookup is a binary
/// search over the masked address. Prefixes must not overlap (the
/// netsim world announces disjoint /32s; overlapping real-world
/// tables should be flattened before construction).
#[derive(Debug, Clone, Default)]
pub struct PrefixAsTable {
    /// Sorted by prefix bits; each entry is `(first, last, tag)` — the
    /// inclusive address range the prefix covers.
    ranges: Vec<(u128, u128, AsTag)>,
}

impl PrefixAsTable {
    /// Builds a table from `(prefix_bits, prefix_len, tag)` triples.
    ///
    /// # Panics
    /// Panics if any two prefixes overlap.
    pub fn new(mut prefixes: Vec<(u128, u8, AsTag)>) -> PrefixAsTable {
        prefixes.sort_unstable_by_key(|&(bits, len, _)| (bits, len));
        let mut ranges = Vec::with_capacity(prefixes.len());
        for (bits, len, tag) in prefixes {
            assert!(len <= 128, "prefix length out of range");
            let span = if len == 0 {
                u128::MAX
            } else {
                (1u128 << (128 - len)) - 1
            };
            let first = bits & !span;
            let last = first | span;
            if let Some(&(_, prev_last, _)) = ranges.last() {
                assert!(first > prev_last, "overlapping prefixes in PrefixAsTable");
            }
            ranges.push((first, last, tag));
        }
        PrefixAsTable { ranges }
    }

    /// Number of prefixes in the table.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the table holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

impl AsResolver for PrefixAsTable {
    fn resolve(&self, bits: u128) -> Option<AsTag> {
        let idx = self.ranges.partition_point(|&(first, _, _)| first <= bits);
        if idx == 0 {
            return None;
        }
        let (_, last, tag) = self.ranges[idx - 1];
        (bits <= last).then_some(tag)
    }
}

/// Encodes a two-letter country code as the `u16` [`AsTag::country`]
/// representation.
#[inline]
pub fn country_code(code: [u8; 2]) -> u16 {
    u16::from_be_bytes(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(index: u16) -> AsTag {
        AsTag {
            index,
            country: country_code(*b"DE"),
        }
    }

    #[test]
    fn resolves_inside_and_outside_prefixes() {
        let table = PrefixAsTable::new(vec![
            (0x2a00_0001u128 << 96, 32, tag(1)),
            (0x2a00_0002u128 << 96, 32, tag(2)),
        ]);
        assert_eq!(
            table.resolve((0x2a00_0001u128 << 96) | 42).unwrap().index,
            1
        );
        assert_eq!(
            table
                .resolve((0x2a00_0002u128 << 96) | (1 << 95))
                .unwrap()
                .index,
            2
        );
        assert_eq!(table.resolve(0x2a00_0003u128 << 96), None);
        assert_eq!(table.resolve(0), None);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn rejects_overlap() {
        PrefixAsTable::new(vec![
            (0x2a00_0001u128 << 96, 32, tag(1)),
            (0x2a00_0001u128 << 96 | 1 << 90, 48, tag(2)),
        ]);
    }
}
