//! EUI-64 device tracking: per-MAC network histories, the paper's
//! five track classes, and cross-network movement windows.

use std::collections::BTreeMap;

use crate::kernel::{eui64_mac, net64, Digest, MacNets};
use crate::op::{Event, Operator};
use crate::SharedResolver;

/// The paper's taxonomy of multi-network EUI-64 devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrackClass {
    /// Seen in more than one country — the MAC is reused across
    /// distinct physical devices (broken vendor defaults).
    MacReuse,
    /// Multiple ASes and many network transitions: a physically
    /// travelling device.
    UserMovement,
    /// Multiple ASes, few transitions: a subscriber switching ISPs.
    ChangingProviders,
    /// One AS, many transitions: periodic prefix rotation by the ISP.
    PrefixReassignment,
    /// Few transitions within one AS.
    MostlyStatic,
}

/// Transition count above which a device counts as "many moves".
pub const MANY_TRANSITIONS: usize = 3;

#[derive(Debug, Clone, Default)]
struct Device {
    nets: MacNets,
    /// as index → live address count.
    ases: BTreeMap<u16, u32>,
    /// country code → live address count.
    countries: BTreeMap<u16, u32>,
}

impl Device {
    fn classify(&self) -> Option<TrackClass> {
        if self.nets.net_count() < 2 {
            return None; // single-network devices carry no track signal
        }
        let transitions = self.nets.net_count() - 1;
        Some(if self.countries.len() > 1 {
            TrackClass::MacReuse
        } else if self.ases.len() > 1 && transitions > MANY_TRANSITIONS {
            TrackClass::UserMovement
        } else if self.ases.len() > 1 {
            TrackClass::ChangingProviders
        } else if transitions > MANY_TRANSITIONS {
            TrackClass::PrefixReassignment
        } else {
            TrackClass::MostlyStatic
        })
    }
}

/// Tracks every EUI-64 device across the corpus, incrementally.
///
/// Keyed by the MAC leaked in the IID; non-EUI-64 addresses are
/// invisible to this operator. AS and country attribution comes from
/// the shared resolver; unrouted addresses still contribute their
/// network history (moves are observable without attribution).
#[derive(Clone)]
pub struct DeviceTracker {
    resolver: SharedResolver,
    devices: BTreeMap<u64, Device>,
}

/// A point-in-time view of [`DeviceTracker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceReport {
    /// Devices currently visible (≥ 1 live EUI-64 address).
    pub devices: u64,
    /// Devices seen in two or more /64s.
    pub multi_network: u64,
    /// `(class, device count)` over multi-network devices, ascending
    /// by class.
    pub classes: Vec<(TrackClass, u64)>,
}

/// One device that moved networks inside a query window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// MAC key (48 bits, big-endian in the low bytes).
    pub mac: u64,
    /// A /64 the device inhabited at or before the window start.
    pub from_net: u64,
    /// The /64 it first appeared in inside the window.
    pub to_net: u64,
    /// First-seen week of `to_net`.
    pub week: u32,
}

impl DeviceTracker {
    /// An empty tracker attributing addresses through `resolver`.
    pub fn new(resolver: SharedResolver) -> DeviceTracker {
        DeviceTracker {
            resolver,
            devices: BTreeMap::new(),
        }
    }

    fn add(&mut self, bits: u128, week: u32) {
        let Some(mac) = eui64_mac(bits) else { return };
        let tag = self.resolver.resolve(bits);
        let dev = self.devices.entry(mac).or_default();
        dev.nets.add(net64(bits), week);
        if let Some(tag) = tag {
            *dev.ases.entry(tag.index).or_insert(0) += 1;
            *dev.countries.entry(tag.country).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, bits: u128, week: u32) {
        let Some(mac) = eui64_mac(bits) else { return };
        let tag = self.resolver.resolve(bits);
        let Some(dev) = self.devices.get_mut(&mac) else {
            return;
        };
        dev.nets.remove(net64(bits), week);
        if let Some(tag) = tag {
            decrement(&mut dev.ases, tag.index);
            decrement(&mut dev.countries, tag.country);
        }
        if dev.nets.is_empty() {
            self.devices.remove(&mac);
        }
    }

    /// Builds the typed class-census snapshot.
    pub fn snapshot(&self) -> DeviceReport {
        let mut classes: BTreeMap<TrackClass, u64> = BTreeMap::new();
        let mut multi = 0u64;
        for dev in self.devices.values() {
            if let Some(class) = dev.classify() {
                multi += 1;
                *classes.entry(class).or_insert(0) += 1;
            }
        }
        DeviceReport {
            devices: self.devices.len() as u64,
            multi_network: multi,
            classes: classes.into_iter().collect(),
        }
    }

    /// Devices that inhabited some /64 at or before week `w0` and
    /// first appeared in a *different* /64 during `(w0, w1]` — the
    /// `moved_between` windowed query. Rows ascend by MAC; one row per
    /// destination net, `from_net` being the device's earliest
    /// pre-window network.
    pub fn moved_between(&self, w0: u32, w1: u32) -> Vec<Move> {
        let mut out = Vec::new();
        for (&mac, dev) in &self.devices {
            let firsts: Vec<(u64, u32)> = dev.nets.first_weeks().collect();
            let from = firsts
                .iter()
                .filter(|&&(_, w)| w <= w0)
                .min_by_key(|&&(net, w)| (w, net));
            let Some(&(from_net, _)) = from else { continue };
            for &(net, week) in &firsts {
                if net != from_net && week > w0 && week <= w1 {
                    out.push(Move {
                        mac,
                        from_net,
                        to_net: net,
                        week,
                    });
                }
            }
        }
        out
    }
}

fn decrement(map: &mut BTreeMap<u16, u32>, key: u16) {
    if let Some(c) = map.get_mut(&key) {
        *c -= 1;
        if *c == 0 {
            map.remove(&key);
        }
    }
}

impl Operator for DeviceTracker {
    fn name(&self) -> &'static str {
        "device"
    }

    fn apply(&mut self, event: &Event) {
        match *event {
            Event::Added { bits, week } => self.add(bits, week),
            Event::Removed { bits, week } => self.remove(bits, week),
            Event::WeekChanged {
                bits,
                old_week,
                new_week,
            } => {
                if let Some(mac) = eui64_mac(bits) {
                    if let Some(dev) = self.devices.get_mut(&mac) {
                        dev.nets.week_changed(net64(bits), old_week, new_week);
                    }
                }
            }
        }
    }

    fn checksum(&self) -> u64 {
        let mut d = Digest::new();
        d.word(self.devices.len() as u64);
        for (&mac, dev) in &self.devices {
            d.word(mac);
            dev.nets.digest_into(&mut d);
            d.word(dev.ases.len() as u64);
            for (&a, &c) in &dev.ases {
                d.word(u64::from(a) << 32 | u64::from(c));
            }
            d.word(dev.countries.len() as u64);
            for (&cc, &c) in &dev.countries {
                d.word(u64::from(cc) << 32 | u64::from(c));
            }
        }
        d.finish()
    }

    fn reset(&mut self) {
        self.devices.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{AsTag, PrefixAsTable};
    use std::sync::Arc;

    fn resolver() -> SharedResolver {
        Arc::new(PrefixAsTable::new(vec![
            (
                0x2a00_0001u128 << 96,
                32,
                AsTag {
                    index: 1,
                    country: u16::from_be_bytes(*b"DE"),
                },
            ),
            (
                0x2a00_0002u128 << 96,
                32,
                AsTag {
                    index: 2,
                    country: u16::from_be_bytes(*b"DE"),
                },
            ),
            (
                0x2a00_0003u128 << 96,
                32,
                AsTag {
                    index: 3,
                    country: u16::from_be_bytes(*b"JP"),
                },
            ),
        ]))
    }

    fn eui(prefix: u128, subnet: u64, mac: u64) -> u128 {
        let iid = v6addr::Iid::from_mac(v6addr::Mac::from_u64(mac));
        (prefix << 96) | (u128::from(subnet) << 64) | u128::from(iid.as_u64())
    }

    #[test]
    fn classifies_and_windows_moves() {
        let mut t = DeviceTracker::new(resolver());
        let empty = t.checksum();
        let mac = 0x0012_3456_789a;
        // Week 1: home network; weeks 3 and 5: two more subnets, same AS.
        t.apply(&Event::Added {
            bits: eui(0x2a00_0001, 0, mac),
            week: 1,
        });
        t.apply(&Event::Added {
            bits: eui(0x2a00_0001, 1, mac),
            week: 3,
        });
        t.apply(&Event::Added {
            bits: eui(0x2a00_0001, 2, mac),
            week: 5,
        });
        let snap = t.snapshot();
        assert_eq!((snap.devices, snap.multi_network), (1, 1));
        assert_eq!(snap.classes, vec![(TrackClass::MostlyStatic, 1)]);

        // The same MAC in Japan: reuse across countries.
        t.apply(&Event::Added {
            bits: eui(0x2a00_0003, 0, mac),
            week: 4,
        });
        assert_eq!(t.snapshot().classes, vec![(TrackClass::MacReuse, 1)]);

        let moves = t.moved_between(2, 4);
        assert_eq!(moves.len(), 2, "weeks 3 and 4 fall in (2, 4]");
        assert!(moves.iter().all(|m| m.from_net == (0x2a00_0001u64 << 32)));
        assert!(t.moved_between(5, 9).is_empty());

        for (p, s, w) in [
            (0x2a00_0001, 0, 1),
            (0x2a00_0001, 1, 3),
            (0x2a00_0001, 2, 5),
            (0x2a00_0003, 0, 4),
        ] {
            t.apply(&Event::Removed {
                bits: eui(p, s, mac),
                week: w,
            });
        }
        assert_eq!(t.checksum(), empty, "drained tracker equals fresh");
    }

    #[test]
    fn non_eui64_addresses_are_invisible() {
        let mut t = DeviceTracker::new(resolver());
        t.apply(&Event::Added {
            bits: (0x2a00_0001u128 << 96) | 0xabcd,
            week: 1,
        });
        assert_eq!(t.snapshot().devices, 0);
    }
}
