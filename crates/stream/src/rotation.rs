//! Per-AS prefix rotation period estimation from EUI-64 device
//! network histories.

use std::collections::BTreeMap;

use crate::kernel::{eui64_mac, net64, Digest, MacNets};
use crate::op::{Event, Operator};
use crate::SharedResolver;

#[derive(Debug, Clone, Default)]
struct RotDevice {
    nets: MacNets,
    /// as index → live address count.
    ases: BTreeMap<u16, u32>,
}

/// Estimates each AS's prefix rotation period from the weeks at which
/// its EUI-64 devices surface in new /64s.
///
/// Only devices attributed to exactly one AS contribute — a device
/// that changed providers tells us about churn, not rotation. Keeps
/// its own per-device state rather than sharing [`crate::DeviceTracker`]'s:
/// operator independence means a fault corrupting one operator is
/// caught by *its* checksum without masking or contaminating the
/// other.
#[derive(Clone)]
pub struct RotationEstimator {
    resolver: SharedResolver,
    devices: BTreeMap<u64, RotDevice>,
}

/// One AS row of a [`RotationEstimator`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationRow {
    /// Dense AS index.
    pub as_index: u16,
    /// Median weeks between a device's consecutive network
    /// appearances (nearest-rank).
    pub median_period_weeks: u32,
    /// Number of pooled inter-appearance intervals.
    pub samples: u64,
}

impl RotationEstimator {
    /// An empty estimator attributing addresses through `resolver`.
    pub fn new(resolver: SharedResolver) -> RotationEstimator {
        RotationEstimator {
            resolver,
            devices: BTreeMap::new(),
        }
    }

    /// Per-AS rotation rows, descending by sample count then
    /// ascending by AS index.
    pub fn snapshot(&self) -> Vec<RotationRow> {
        let mut pools: BTreeMap<u16, Vec<u32>> = BTreeMap::new();
        for dev in self.devices.values() {
            if dev.ases.len() != 1 || dev.nets.net_count() < 2 {
                continue;
            }
            let as_index = *dev.ases.keys().next().expect("len checked");
            let mut weeks: Vec<u32> = dev.nets.first_weeks().map(|(_, w)| w).collect();
            weeks.sort_unstable();
            weeks.dedup();
            let pool = pools.entry(as_index).or_default();
            for pair in weeks.windows(2) {
                pool.push(pair[1] - pair[0]);
            }
        }
        let mut rows: Vec<RotationRow> = pools
            .into_iter()
            .filter(|(_, pool)| !pool.is_empty())
            .map(|(as_index, mut pool)| {
                pool.sort_unstable();
                RotationRow {
                    as_index,
                    // Nearest-rank median: element ⌈n/2⌉ (1-based).
                    median_period_weeks: pool[pool.len().div_ceil(2) - 1],
                    samples: pool.len() as u64,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.as_index.cmp(&b.as_index)));
        rows
    }
}

impl Operator for RotationEstimator {
    fn name(&self) -> &'static str {
        "rotation"
    }

    fn apply(&mut self, event: &Event) {
        match *event {
            Event::Added { bits, week } => {
                let Some(mac) = eui64_mac(bits) else { return };
                let tag = self.resolver.resolve(bits);
                let dev = self.devices.entry(mac).or_default();
                dev.nets.add(net64(bits), week);
                if let Some(tag) = tag {
                    *dev.ases.entry(tag.index).or_insert(0) += 1;
                }
            }
            Event::Removed { bits, week } => {
                let Some(mac) = eui64_mac(bits) else { return };
                let tag = self.resolver.resolve(bits);
                let Some(dev) = self.devices.get_mut(&mac) else {
                    return;
                };
                dev.nets.remove(net64(bits), week);
                if let Some(tag) = tag {
                    if let Some(c) = dev.ases.get_mut(&tag.index) {
                        *c -= 1;
                        if *c == 0 {
                            dev.ases.remove(&tag.index);
                        }
                    }
                }
                if dev.nets.is_empty() {
                    self.devices.remove(&mac);
                }
            }
            Event::WeekChanged {
                bits,
                old_week,
                new_week,
            } => {
                if let Some(mac) = eui64_mac(bits) {
                    if let Some(dev) = self.devices.get_mut(&mac) {
                        dev.nets.week_changed(net64(bits), old_week, new_week);
                    }
                }
            }
        }
    }

    fn checksum(&self) -> u64 {
        let mut d = Digest::new();
        d.word(self.devices.len() as u64);
        for (&mac, dev) in &self.devices {
            d.word(mac);
            dev.nets.digest_into(&mut d);
            d.word(dev.ases.len() as u64);
            for (&a, &c) in &dev.ases {
                d.word(u64::from(a) << 32 | u64::from(c));
            }
        }
        d.finish()
    }

    fn reset(&mut self) {
        self.devices.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{AsTag, PrefixAsTable};
    use std::sync::Arc;

    fn resolver() -> SharedResolver {
        Arc::new(PrefixAsTable::new(vec![(
            0x2a00_0001u128 << 96,
            32,
            AsTag {
                index: 1,
                country: 0,
            },
        )]))
    }

    fn eui(subnet: u64, mac: u64) -> u128 {
        let iid = v6addr::Iid::from_mac(v6addr::Mac::from_u64(mac));
        (0x2a00_0001u128 << 96) | (u128::from(subnet) << 64) | u128::from(iid.as_u64())
    }

    #[test]
    fn estimates_rotation_period() {
        let mut r = RotationEstimator::new(resolver());
        let empty = r.checksum();
        // A device rotated to a fresh /64 every 2 weeks.
        for (i, week) in [(0u64, 1u32), (1, 3), (2, 5), (3, 7)] {
            r.apply(&Event::Added {
                bits: eui(i, 0xaa),
                week,
            });
        }
        let rows = r.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_index, 1);
        assert_eq!(rows[0].median_period_weeks, 2);
        assert_eq!(rows[0].samples, 3);

        for (i, week) in [(0u64, 1u32), (1, 3), (2, 5), (3, 7)] {
            r.apply(&Event::Removed {
                bits: eui(i, 0xaa),
                week,
            });
        }
        assert_eq!(r.checksum(), empty, "drained estimator equals fresh");
    }

    #[test]
    fn single_network_devices_yield_no_rows() {
        let mut r = RotationEstimator::new(resolver());
        r.apply(&Event::Added {
            bits: eui(0, 0xbb),
            week: 1,
        });
        assert!(r.snapshot().is_empty());
    }
}
