//! # v6stream — incremental O(|Δ|) analytics over the epoch stream
//!
//! The paper's analyses — device tracking across networks, prefix
//! rotation periods, IID entropy profiles, address density — were all
//! built here as **batch** passes: every published epoch re-reads the
//! whole corpus. That is O(corpus) work per epoch for answers that
//! changed by O(|Δ|). This crate inverts the cost: each analysis
//! becomes an *operator* that folds the store's own
//! [`DeltaRecord`](v6store::DeltaRecord)s as they are produced, so
//! per-epoch analytics cost tracks the delta, not the corpus.
//!
//! The layering:
//!
//! * [`kernel`] — the pure per-record folds (network extraction,
//!   EUI-64 MAC recovery, entropy bucketing, the canonical
//!   [`fold_content`] corpus checksum) shared between streaming
//!   operators and batch reference analyses. One kernel, two drivers.
//! * [`AsResolver`] / [`PrefixAsTable`] — address → AS attribution,
//!   since deltas carry only `(bits, week)`.
//! * [`Operator`] / [`Event`] — the operator contract: a pure fold
//!   over resolved corpus events with a canonical-state checksum.
//! * [`DensityMap`], [`EntropyProfile`], [`DeviceTracker`],
//!   [`RotationEstimator`] — the four operators, owned together as an
//!   [`Analytics`] set.
//! * [`StreamDriver`] — verified ingestion: detects duplicate and
//!   out-of-order deliveries by epoch, detects replay **gaps** by
//!   recomputing each delta's content checksum against its corpus
//!   mirror before mutating anything, and recovers from gaps with an
//!   explicit O(corpus) [`StreamDriver::resync`]. It can tail a live
//!   store's epoch log through [`v6store::LogTailer`], or be fed a
//!   cluster follower's replication stream.
//!
//! The governing invariant, pinned by proptests and the `stream`
//! chaos mode: **at every epoch boundary, each operator's checksum
//! equals the checksum of the same operator built fresh from the
//! materialized corpus.** Streaming is an optimization, never an
//! approximation — and when delivery faults make the cheap path
//! unsound, the driver *knows* (checksum chain) and says so (lagging
//! state), rather than drifting.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernel;
pub mod op;
pub mod resolver;

mod density;
mod device;
mod driver;
mod entropy;
mod rotation;

pub use density::{DensityMap, DensityReport};
pub use device::{DeviceReport, DeviceTracker, Move, TrackClass, MANY_TRANSITIONS};
pub use driver::{Analytics, Offer, StreamDriver};
pub use entropy::{EntropyProfile, EntropyRow};
pub use kernel::{content_term, fold_content};
pub use op::{Event, Operator};
pub use resolver::{country_code, AsResolver, AsTag, PrefixAsTable};
pub use rotation::{RotationEstimator, RotationRow};

/// The shared, thread-safe resolver handle operators hold.
pub type SharedResolver = std::sync::Arc<dyn AsResolver + Send + Sync>;
