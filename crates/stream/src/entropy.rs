//! Per-AS IID entropy histograms, maintained incrementally.

use std::collections::BTreeMap;

use crate::kernel::{
    entropy_bucket, Digest, ENTROPY_BUCKETS, HIGH_ENTROPY_BUCKET, LOW_ENTROPY_BUCKET,
};
use crate::op::{Event, Operator};
use crate::SharedResolver;

/// Per-AS, per-week histogram of IID entropy buckets.
///
/// Bucketing happens at ingest (an integer in `0..16`), so all stored
/// state — and every statistic derived from it — is integer-only:
/// float evaluation order can never perturb a checksum. Addresses the
/// resolver cannot attribute are skipped.
#[derive(Clone)]
pub struct EntropyProfile {
    resolver: SharedResolver,
    /// as index → week → entropy-bucket counts.
    per_as: BTreeMap<u16, BTreeMap<u32, [u64; ENTROPY_BUCKETS]>>,
}

/// One AS row of an [`EntropyProfile`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntropyRow {
    /// Dense AS index.
    pub as_index: u16,
    /// Live attributed addresses.
    pub addresses: u64,
    /// Per-mille of addresses with normalized IID entropy ≥ 0.75.
    pub high_per_mille: u32,
    /// Per-mille of addresses with normalized IID entropy < 0.25.
    pub low_per_mille: u32,
}

impl EntropyProfile {
    /// An empty profile attributing addresses through `resolver`.
    pub fn new(resolver: SharedResolver) -> EntropyProfile {
        EntropyProfile {
            resolver,
            per_as: BTreeMap::new(),
        }
    }

    fn bump(&mut self, bits: u128, week: u32, delta: i64) {
        let Some(tag) = self.resolver.resolve(bits) else {
            return;
        };
        let bucket = entropy_bucket(bits);
        let weeks = self.per_as.entry(tag.index).or_default();
        let hist = weeks.entry(week).or_insert([0; ENTROPY_BUCKETS]);
        hist[bucket] = hist[bucket].wrapping_add_signed(delta);
        if delta < 0 {
            if hist.iter().all(|&c| c == 0) {
                weeks.remove(&week);
            }
            if self.per_as.get(&tag.index).is_some_and(BTreeMap::is_empty) {
                self.per_as.remove(&tag.index);
            }
        }
    }

    /// Aggregated histogram of `as_index` over weeks for which
    /// `keep(week)` holds.
    fn histogram(&self, as_index: u16, keep: impl Fn(u32) -> bool) -> [u64; ENTROPY_BUCKETS] {
        let mut out = [0u64; ENTROPY_BUCKETS];
        if let Some(weeks) = self.per_as.get(&as_index) {
            for (&week, hist) in weeks {
                if keep(week) {
                    for (o, &c) in out.iter_mut().zip(hist) {
                        *o += c;
                    }
                }
            }
        }
        out
    }

    /// Per-AS entropy summary rows, ascending by AS index.
    pub fn snapshot(&self) -> Vec<EntropyRow> {
        self.per_as
            .keys()
            .map(|&as_index| {
                let hist = self.histogram(as_index, |_| true);
                let total: u64 = hist.iter().sum();
                let high: u64 = hist[HIGH_ENTROPY_BUCKET..].iter().sum();
                let low: u64 = hist[..LOW_ENTROPY_BUCKET].iter().sum();
                EntropyRow {
                    as_index,
                    addresses: total,
                    high_per_mille: per_mille(high, total),
                    low_per_mille: per_mille(low, total),
                }
            })
            .collect()
    }

    /// Distribution shift of `as_index` between the corpus as of week
    /// `w0` (first-seen ≤ `w0`) and the additions of the window
    /// `(w0, w1]`, as total-variation distance in per-mille.
    ///
    /// 0 means the window's additions have the same entropy mix as the
    /// established corpus; 1000 means completely disjoint buckets —
    /// e.g. an AS whose new addresses suddenly come from a low-entropy
    /// allocator. `None` when either side is empty.
    pub fn shift(&self, as_index: u16, w0: u32, w1: u32) -> Option<u32> {
        let before = self.histogram(as_index, |w| w <= w0);
        let after = self.histogram(as_index, |w| w > w0 && w <= w1);
        let (tb, ta): (u64, u64) = (before.iter().sum(), after.iter().sum());
        if tb == 0 || ta == 0 {
            return None;
        }
        let l1: u64 = before
            .iter()
            .zip(&after)
            .map(|(&b, &a)| per_mille(b, tb).abs_diff(per_mille(a, ta)) as u64)
            .sum();
        Some((l1 / 2) as u32)
    }
}

/// Rounded integer fraction in per-mille.
#[inline]
fn per_mille(part: u64, total: u64) -> u32 {
    (1000 * part + total / 2).checked_div(total).unwrap_or(0) as u32
}

impl Operator for EntropyProfile {
    fn name(&self) -> &'static str {
        "entropy"
    }

    fn apply(&mut self, event: &Event) {
        match *event {
            Event::Added { bits, week } => self.bump(bits, week, 1),
            Event::Removed { bits, week } => self.bump(bits, week, -1),
            Event::WeekChanged {
                bits,
                old_week,
                new_week,
            } => {
                self.bump(bits, old_week, -1);
                self.bump(bits, new_week, 1);
            }
        }
    }

    fn checksum(&self) -> u64 {
        let mut d = Digest::new();
        d.word(self.per_as.len() as u64);
        for (&as_index, weeks) in &self.per_as {
            d.word(u64::from(as_index));
            d.word(weeks.len() as u64);
            for (&week, hist) in weeks {
                d.word(u64::from(week));
                for &c in hist {
                    d.word(c);
                }
            }
        }
        d.finish()
    }

    fn reset(&mut self) {
        self.per_as.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{AsTag, PrefixAsTable};
    use std::sync::Arc;

    fn resolver() -> SharedResolver {
        Arc::new(PrefixAsTable::new(vec![(
            0x2a00_0001u128 << 96,
            32,
            AsTag {
                index: 1,
                country: 0,
            },
        )]))
    }

    fn addr(iid: u64) -> u128 {
        (0x2a00_0001u128 << 96) | u128::from(iid)
    }

    #[test]
    fn tracks_and_drains_canonically() {
        let mut p = EntropyProfile::new(resolver());
        let empty = p.checksum();
        p.apply(&Event::Added {
            bits: addr(0),
            week: 1,
        }); // low entropy
        p.apply(&Event::Added {
            bits: addr(0xdead_beef_cafe_f00d),
            week: 1,
        });
        let rows = p.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].addresses, 2);
        assert_eq!(rows[0].low_per_mille, 500);
        // Unrouted addresses are ignored.
        p.apply(&Event::Added { bits: 42, week: 1 });
        assert_eq!(p.snapshot()[0].addresses, 2);
        p.apply(&Event::Removed {
            bits: addr(0),
            week: 1,
        });
        p.apply(&Event::Removed {
            bits: addr(0xdead_beef_cafe_f00d),
            week: 1,
        });
        assert_eq!(p.checksum(), empty);
    }

    #[test]
    fn shift_sees_allocator_change() {
        let mut p = EntropyProfile::new(resolver());
        // Established corpus: high-entropy IIDs up to week 2.
        for i in 0..8u64 {
            p.apply(&Event::Added {
                bits: addr(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i * 2 + 1)),
                week: 1 + (i as u32 % 2),
            });
        }
        // Window (2, 4]: all-zero low-entropy IIDs.
        for i in 0..4u64 {
            p.apply(&Event::Added {
                bits: addr(i),
                week: 3,
            });
        }
        let shift = p.shift(1, 2, 4).expect("both sides populated");
        assert!(shift > 500, "allocator flip is a large shift, got {shift}");
        assert_eq!(p.shift(1, 0, 1), None, "empty 'before' side");
        assert_eq!(p.shift(9, 2, 4), None, "unknown AS");
    }
}
