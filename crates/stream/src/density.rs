//! Per-/48 address density, maintained incrementally.

use std::collections::BTreeMap;

use crate::kernel::{net48, Digest};
use crate::op::{Event, Operator};

/// Live address count per /48 network.
///
/// The streaming replacement for the batch density scan: one counter
/// per /48, bumped on add, decremented (and pruned at zero) on remove.
/// Week changes do not move an address between networks, so they are
/// no-ops here.
#[derive(Debug, Clone, Default)]
pub struct DensityMap {
    per48: BTreeMap<u128, u64>,
}

/// A point-in-time view of [`DensityMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityReport {
    /// Number of populated /48s.
    pub networks: u64,
    /// Total live addresses.
    pub addresses: u64,
    /// The densest /48s, `(net48 bits, count)`, descending by count
    /// then ascending by network; at most `top` rows.
    pub top: Vec<(u128, u64)>,
}

impl DensityMap {
    /// An empty map.
    pub fn new() -> DensityMap {
        DensityMap::default()
    }

    /// Live address count in `net` (a /48 network's bits).
    pub fn count(&self, net: u128) -> u64 {
        self.per48.get(&net48(net)).copied().unwrap_or(0)
    }

    /// Builds the typed snapshot with up to `top` densest networks.
    pub fn snapshot(&self, top: usize) -> DensityReport {
        let mut rows: Vec<(u128, u64)> = self.per48.iter().map(|(&n, &c)| (n, c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(top);
        DensityReport {
            networks: self.per48.len() as u64,
            addresses: self.per48.values().sum(),
            top: rows,
        }
    }
}

impl Operator for DensityMap {
    fn name(&self) -> &'static str {
        "density"
    }

    fn apply(&mut self, event: &Event) {
        match *event {
            Event::Added { bits, .. } => {
                *self.per48.entry(net48(bits)).or_insert(0) += 1;
            }
            Event::Removed { bits, .. } => {
                let net = net48(bits);
                if let Some(c) = self.per48.get_mut(&net) {
                    *c -= 1;
                    if *c == 0 {
                        self.per48.remove(&net);
                    }
                }
            }
            Event::WeekChanged { .. } => {}
        }
    }

    fn checksum(&self) -> u64 {
        let mut d = Digest::new();
        d.word(self.per48.len() as u64);
        for (&net, &count) in &self.per48 {
            d.wide(net);
            d.word(count);
        }
        d.finish()
    }

    fn reset(&mut self) {
        self.per48.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_is_canonical() {
        let mut m = DensityMap::new();
        let empty = m.checksum();
        let a = (0x2001_0db8u128 << 96) | 1;
        let b = (0x2001_0db8u128 << 96) | 2;
        m.apply(&Event::Added { bits: a, week: 1 });
        m.apply(&Event::Added { bits: b, week: 2 });
        assert_eq!(m.count(a), 2);
        m.apply(&Event::Removed { bits: a, week: 1 });
        m.apply(&Event::Removed { bits: b, week: 2 });
        assert_eq!(m.checksum(), empty, "drained map equals fresh map");
    }

    #[test]
    fn snapshot_orders_by_density() {
        let mut m = DensityMap::new();
        for i in 0..3u128 {
            m.apply(&Event::Added {
                bits: (1u128 << 82) | i,
                week: 0,
            });
        }
        m.apply(&Event::Added {
            bits: 2u128 << 82,
            week: 0,
        });
        let snap = m.snapshot(8);
        assert_eq!(snap.networks, 2);
        assert_eq!(snap.addresses, 4);
        assert_eq!(snap.top[0].1, 3);
    }
}
