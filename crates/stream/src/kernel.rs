//! The pure per-record fold kernels every operator (and its batch
//! counterpart) is built from.
//!
//! Each kernel is a deterministic function of the address bits and
//! first-seen week alone — the two facts a [`v6store::DeltaRecord`]
//! carries per entry. Incremental operators fold these kernels over
//! resolved delta events; batch analyses fold the *same* kernels over
//! the materialized corpus. That sharing is what makes the
//! streaming ≡ batch equivalence invariant provable rather than
//! hoped-for.

use std::collections::BTreeMap;

use v6addr::Iid;

/// The /48 network containing `bits` (top 48 bits, low bits zeroed).
#[inline]
pub fn net48(bits: u128) -> u128 {
    bits >> 80 << 80
}

/// The /64 network containing `bits`, as its upper 64 bits.
#[inline]
pub fn net64(bits: u128) -> u64 {
    (bits >> 64) as u64
}

/// The interface identifier (low 64 bits) of `bits`.
#[inline]
pub fn iid_of(bits: u128) -> Iid {
    Iid::new(bits as u64)
}

/// The MAC address an EUI-64 SLAAC IID leaks, as a `u64` key
/// (big-endian 6 bytes in the low 48 bits). `None` for non-EUI-64
/// IIDs.
#[inline]
pub fn eui64_mac(bits: u128) -> Option<u64> {
    iid_of(bits).to_mac().map(v6addr::Mac::as_u64)
}

/// Number of entropy histogram buckets ([0, 1) in 1/16 steps; the
/// value 1.0 folds into the top bucket).
pub const ENTROPY_BUCKETS: usize = 16;

/// Buckets at or above this index hold IIDs with normalized entropy
/// ≥ 0.75 — the paper's "high entropy" class.
pub const HIGH_ENTROPY_BUCKET: usize = 12;

/// Buckets below this index hold IIDs with normalized entropy < 0.25
/// — the paper's "low entropy" class.
pub const LOW_ENTROPY_BUCKET: usize = 4;

/// The entropy histogram bucket of an address's IID: nibble entropy
/// (normalized to `[0, 1]`) quantized into [`ENTROPY_BUCKETS`] bins.
#[inline]
pub fn entropy_bucket(bits: u128) -> usize {
    let h = v6addr::iid_entropy(iid_of(bits));
    ((h * ENTROPY_BUCKETS as f64) as usize).min(ENTROPY_BUCKETS - 1)
}

/// FNV-1a 64 over a stream of words — the operator checksum fold.
///
/// Operators feed their *entire canonical state* (sorted, deterministic
/// iteration order) through one of these; equal states produce equal
/// digests regardless of the event order that built them.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// FNV-1a offset basis.
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one 64-bit word.
    #[inline]
    pub fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one 128-bit word.
    #[inline]
    pub fn wide(&mut self, w: u128) {
        self.word(w as u64);
        self.word((w >> 64) as u64);
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// One term of the serving layer's order-independent content checksum
/// over `(bits, week)` entries.
///
/// This is the **canonical definition** of the fold `v6serve`
/// publishes as `Snapshot::content_checksum` and `v6store` records in
/// every [`v6store::DeltaRecord`]. It is a commutative wrapping sum of
/// per-entry terms, which is exactly what lets a stream consumer
/// maintain the corpus checksum in O(1) per record
/// (`acc ± content_term(bits, week)`) and verify each delta against
/// the checksum its producer recorded — the gap detector.
#[inline]
pub fn content_term(bits: u128, week: u32) -> u64 {
    let mixed = (bits as u64)
        ^ ((bits >> 64) as u64).rotate_left(17)
        ^ u64::from(week).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    mixed.wrapping_mul(0xbf58_476d_1ce4_e5b9) | 1
}

/// Folds one entry into the running content checksum.
#[inline]
pub fn fold_content(acc: u64, bits: u128, week: u32) -> u64 {
    acc.wrapping_add(content_term(bits, week))
}

/// Per-device /64 history: each net maps to a multiset of first-seen
/// weeks (one per address currently present under that net).
///
/// Shared by [`crate::DeviceTracker`] and [`crate::RotationEstimator`]
/// — the two operators keep *independent* copies (so chaos faults
/// cannot couple them) built from this one kernel structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MacNets {
    /// net64 → (week → live address count).
    nets: BTreeMap<u64, BTreeMap<u32, u32>>,
}

impl MacNets {
    /// Records one address appearing under `net` with first-seen
    /// `week`.
    pub fn add(&mut self, net: u64, week: u32) {
        *self.nets.entry(net).or_default().entry(week).or_insert(0) += 1;
    }

    /// Removes one address; returns true when no nets remain.
    pub fn remove(&mut self, net: u64, week: u32) -> bool {
        if let Some(weeks) = self.nets.get_mut(&net) {
            if let Some(count) = weeks.get_mut(&week) {
                *count -= 1;
                if *count == 0 {
                    weeks.remove(&week);
                }
            }
            if weeks.is_empty() {
                self.nets.remove(&net);
            }
        }
        self.nets.is_empty()
    }

    /// Moves one address's first-seen week (a week-changed upsert).
    pub fn week_changed(&mut self, net: u64, old_week: u32, new_week: u32) {
        if let Some(weeks) = self.nets.get_mut(&net) {
            if let Some(count) = weeks.get_mut(&old_week) {
                *count -= 1;
                if *count == 0 {
                    weeks.remove(&old_week);
                }
            }
            *weeks.entry(new_week).or_insert(0) += 1;
        }
    }

    /// Distinct /64s this device currently appears in.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// True when no addresses remain.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// `(net64, earliest first-seen week)` per net, ascending by net.
    pub fn first_weeks(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.nets
            .iter()
            .map(|(&net, weeks)| (net, *weeks.keys().next().expect("nets prune empties")))
    }

    /// Folds the full state into a digest (canonical order).
    pub fn digest_into(&self, d: &mut Digest) {
        d.word(self.nets.len() as u64);
        for (&net, weeks) in &self.nets {
            d.word(net);
            d.word(weeks.len() as u64);
            for (&week, &count) in weeks {
                d.word(u64::from(week) << 32 | u64::from(count));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_term_matches_serve_fold_shape() {
        // Odd by construction (the `| 1`): a zero term could hide a
        // dropped entry from the additive checksum.
        for (bits, week) in [(0u128, 0u32), (42, 7), (u128::MAX, u32::MAX)] {
            assert_eq!(content_term(bits, week) & 1, 1);
        }
        // Commutative and invertible folding.
        let a = fold_content(fold_content(0, 1, 2), 3, 4);
        let b = fold_content(fold_content(0, 3, 4), 1, 2);
        assert_eq!(a, b);
        assert_eq!(a.wrapping_sub(content_term(1, 2)), fold_content(0, 3, 4));
    }

    #[test]
    fn eui64_mac_roundtrip() {
        let mac: v6addr::Mac = "00:12:34:56:78:9a".parse().unwrap();
        let iid = Iid::from_mac(mac);
        let bits = (0x2001_0db8u128 << 96) | u128::from(iid.as_u64());
        let key = eui64_mac(bits).expect("EUI-64 shape");
        assert_eq!(key, mac.as_u64());
        // A random IID without the ff:fe filler yields nothing.
        assert_eq!(eui64_mac(0x1234_5678_9abc_def0), None);
    }

    #[test]
    fn entropy_buckets_cover_range() {
        assert_eq!(entropy_bucket(0), 0); // zero IID: zero entropy
        for bits in [7u128, 0xdead_beef_cafe_f00d, u128::MAX] {
            assert!(entropy_bucket(bits) < ENTROPY_BUCKETS);
        }
    }

    #[test]
    fn mac_nets_add_remove_symmetry() {
        let mut m = MacNets::default();
        m.add(10, 1);
        m.add(10, 1);
        m.add(20, 3);
        assert_eq!(m.net_count(), 2);
        assert_eq!(m.first_weeks().collect::<Vec<_>>(), vec![(10, 1), (20, 3)]);
        assert!(!m.remove(10, 1));
        assert!(!m.remove(10, 1));
        assert!(m.remove(20, 3), "now empty");
        assert_eq!(m, MacNets::default(), "state is canonical after drain");
    }

    #[test]
    fn mac_nets_week_change_moves_multiset() {
        let mut a = MacNets::default();
        a.add(10, 5);
        a.week_changed(10, 5, 2);
        let mut b = MacNets::default();
        b.add(10, 2);
        assert_eq!(a, b);
    }
}
