//! The event model and the common operator contract.
//!
//! Raw [`v6store::DeltaRecord`]s conflate "added" with "week-changed"
//! (`added` holds every upsert). The [`crate::StreamDriver`] resolves
//! each delta against its corpus mirror into unambiguous [`Event`]s so
//! operators stay pure folds with no corpus knowledge of their own.

/// One resolved corpus change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `bits` entered the corpus with first-seen `week`.
    Added {
        /// Address bits.
        bits: u128,
        /// First-seen study week.
        week: u32,
    },
    /// `bits` left the corpus; it had first-seen `week`.
    Removed {
        /// Address bits.
        bits: u128,
        /// The first-seen week it held while present.
        week: u32,
    },
    /// `bits` stayed but its first-seen week was rewritten (an upsert
    /// from a re-ingested earlier study week).
    WeekChanged {
        /// Address bits.
        bits: u128,
        /// Week before the upsert.
        old_week: u32,
        /// Week after the upsert.
        new_week: u32,
    },
}

/// An incremental analytics operator over the resolved event stream.
///
/// The contract every implementation upholds, and the equivalence
/// proptests pin: after any event sequence, the operator's state —
/// and therefore [`Operator::checksum`] — equals that of a fresh
/// operator fed only `Added` events for the surviving corpus. That
/// requires canonical state (prune empty sub-maps and zero counts)
/// and kernels that depend on `(bits, week)` alone.
pub trait Operator {
    /// Stable operator name — used for metrics and transcripts.
    fn name(&self) -> &'static str;

    /// Folds one resolved event into the state.
    fn apply(&mut self, event: &Event);

    /// FNV digest of the full canonical state.
    fn checksum(&self) -> u64;

    /// Discards all state (used on resync).
    fn reset(&mut self);

    /// Folds a batch of events in order.
    fn apply_all(&mut self, events: &[Event]) {
        for e in events {
            self.apply(e);
        }
    }
}
