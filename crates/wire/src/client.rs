//! The wire client: speaks the framed protocol over any [`Transport`].
//!
//! Deliberately minimal and sans-io like the server side: `send`
//! queues a request frame, `poll` drains whatever response frames have
//! arrived. Request ids are assigned sequentially and echoed by the
//! server, so callers can pipeline and match out of order. The client
//! validates the server's preamble and checks every inbound frame —
//! corruption injected by a chaos transport surfaces as a typed
//! [`WireClientError`], at which point the caller reconnects (the
//! chaos bench does exactly that).

use crate::frame::{check_preamble, frame, preamble, FrameDecoder, FrameError, PREAMBLE_LEN};
use crate::proto::{Request, Response};
use crate::transport::{Transport, TransportError};

/// Why a client operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireClientError {
    /// The transport closed.
    Transport(TransportError),
    /// The server's byte stream violated the protocol (bad preamble,
    /// framing, or an undecodable response) — reconnect.
    Protocol(FrameError),
}

impl std::fmt::Display for WireClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireClientError::Transport(e) => write!(f, "transport: {e}"),
            WireClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for WireClientError {}

impl From<TransportError> for WireClientError {
    fn from(e: TransportError) -> Self {
        WireClientError::Transport(e)
    }
}

impl From<FrameError> for WireClientError {
    fn from(e: FrameError) -> Self {
        WireClientError::Protocol(e)
    }
}

/// A protocol client over one transport connection.
pub struct WireClient<T> {
    transport: T,
    decoder: FrameDecoder,
    preamble_buf: Vec<u8>,
    preamble_ok: bool,
    next_id: u64,
}

impl<T: Transport> WireClient<T> {
    /// Opens the connection: sends this side's preamble immediately.
    pub fn connect(mut transport: T, now_us: u64) -> Result<Self, WireClientError> {
        transport.send(&preamble(), now_us)?;
        Ok(WireClient {
            transport,
            decoder: FrameDecoder::new(),
            preamble_buf: Vec::with_capacity(PREAMBLE_LEN),
            preamble_ok: false,
            next_id: 1,
        })
    }

    /// The underlying transport (for chaos counters, closing, etc.).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Sends one request; returns the id its response will echo.
    pub fn send(&mut self, req: &Request, now_us: u64) -> Result<u64, WireClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.transport.send(&frame(&req.encode(id)), now_us)?;
        Ok(id)
    }

    /// Drains every `(request_id, response)` pair that has arrived by
    /// `now_us`.
    pub fn poll(&mut self, now_us: u64) -> Result<Vec<(u64, Response)>, WireClientError> {
        let mut bytes = self.transport.recv(now_us)?;
        if !self.preamble_ok {
            let need = PREAMBLE_LEN - self.preamble_buf.len();
            let take = need.min(bytes.len());
            self.preamble_buf.extend_from_slice(&bytes[..take]);
            bytes.drain(..take);
            if self.preamble_buf.len() < PREAMBLE_LEN {
                return Ok(Vec::new());
            }
            let fixed: [u8; PREAMBLE_LEN] =
                self.preamble_buf[..].try_into().expect("length checked");
            check_preamble(&fixed)?;
            self.preamble_ok = true;
        }
        if bytes.is_empty() {
            return Ok(Vec::new());
        }
        let payloads = self.decoder.feed(&bytes)?;
        payloads
            .iter()
            .map(|p| Response::decode(p).map_err(WireClientError::from))
            .collect()
    }

    /// Closes this end of the connection.
    pub fn close(&mut self) {
        self.transport.close();
    }
}
