//! Registry-backed metrics for the front door.
//!
//! Same idiom as `v6serve::ServeMetrics`: a per-server facade over a
//! private [`v6obs::Registry`], handles resolved once at construction,
//! the registry mutex touched only for exposition. Names:
//!
//! * `wire.conn.*` — connection lifecycle: opens, closes, frames in and
//!   out, protocol errors (bad preamble, framing violations).
//! * `wire.admit.*` — admission verdicts: admitted / throttled / shed,
//!   plus per-class throttle counters
//!   (`wire.admit.throttled.{new,steady,burst,flood}`).
//! * `wire.shed.*` — shed causes: `global_overload`, `too_many_clients`.
//! * `wire.latency.<class>` — per-behavioral-class service latency
//!   histograms for *admitted* requests, the percentiles the
//!   adversarial bench reports.

use std::sync::Arc;
use std::time::Duration;

use v6obs::{Counter, Histogram, Registry};

use crate::admit::ClientClass;
use crate::proto::ShedReason;

/// Front-door metrics, recorded into a server-private registry.
#[derive(Debug)]
pub struct WireMetrics {
    registry: Arc<Registry>,
    conn_opened: Counter,
    conn_closed: Counter,
    frames_in: Counter,
    frames_out: Counter,
    protocol_errors: Counter,
    admitted: Counter,
    throttled: Counter,
    shed: Counter,
    throttled_by_class: [Counter; 4],
    shed_global: Counter,
    shed_clients: Counter,
    latency_by_class: [Histogram; 4],
}

impl Default for WireMetrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        WireMetrics {
            conn_opened: registry.counter("wire.conn.opened"),
            conn_closed: registry.counter("wire.conn.closed"),
            frames_in: registry.counter("wire.conn.frames_in"),
            frames_out: registry.counter("wire.conn.frames_out"),
            protocol_errors: registry.counter("wire.conn.protocol_errors"),
            admitted: registry.counter("wire.admit.admitted"),
            throttled: registry.counter("wire.admit.throttled"),
            shed: registry.counter("wire.admit.shed"),
            throttled_by_class: [
                registry.counter("wire.admit.throttled.new"),
                registry.counter("wire.admit.throttled.steady"),
                registry.counter("wire.admit.throttled.burst"),
                registry.counter("wire.admit.throttled.flood"),
            ],
            shed_global: registry.counter("wire.shed.global_overload"),
            shed_clients: registry.counter("wire.shed.too_many_clients"),
            latency_by_class: [
                registry.histogram("wire.latency.new"),
                registry.histogram("wire.latency.steady"),
                registry.histogram("wire.latency.burst"),
                registry.histogram("wire.latency.flood"),
            ],
            registry,
        }
    }
}

impl WireMetrics {
    /// A fresh metrics facade over its own registry.
    pub fn new() -> Self {
        WireMetrics::default()
    }

    pub(crate) fn record_conn_opened(&self) {
        self.conn_opened.inc();
    }

    pub(crate) fn record_conn_closed(&self) {
        self.conn_closed.inc();
    }

    pub(crate) fn record_frames_in(&self, n: u64) {
        self.frames_in.add(n);
    }

    pub(crate) fn record_frame_out(&self) {
        self.frames_out.inc();
    }

    pub(crate) fn record_protocol_error(&self) {
        self.protocol_errors.inc();
    }

    pub(crate) fn record_admitted(&self) {
        self.admitted.inc();
    }

    pub(crate) fn record_throttled(&self, class: ClientClass) {
        self.throttled.inc();
        self.throttled_by_class[class.as_u8() as usize].inc();
    }

    pub(crate) fn record_shed(&self, reason: ShedReason) {
        self.shed.inc();
        match reason {
            ShedReason::GlobalOverload => self.shed_global.inc(),
            ShedReason::TooManyClients => self.shed_clients.inc(),
        }
    }

    pub(crate) fn record_latency(&self, class: ClientClass, elapsed: Duration) {
        self.latency_by_class[class.as_u8() as usize].record_duration(elapsed);
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.get()
    }

    /// Requests throttled so far (across all classes).
    pub fn throttled(&self) -> u64 {
        self.throttled.get()
    }

    /// Requests shed so far (across both causes).
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// The p99 service latency for one behavioral class, in
    /// nanoseconds (log2-bucket upper bound; 0 when unobserved).
    pub fn p99_ns(&self, class: ClientClass) -> u64 {
        self.latency_by_class[class.as_u8() as usize].quantile_ns(0.99)
    }

    /// Samples recorded for one behavioral class.
    pub fn latency_count(&self, class: ClientClass) -> u64 {
        self.latency_by_class[class.as_u8() as usize].count()
    }

    /// The server-private registry: `wire.conn.*` / `wire.admit.*` /
    /// `wire.shed.*` counters plus per-class latency histograms.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_land_in_named_counters() {
        let m = WireMetrics::new();
        m.record_admitted();
        m.record_throttled(ClientClass::Flood);
        m.record_throttled(ClientClass::Flood);
        m.record_shed(ShedReason::GlobalOverload);
        m.record_shed(ShedReason::TooManyClients);
        m.record_latency(ClientClass::Steady, Duration::from_micros(5));
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("wire.admit.admitted"), Some(1));
        assert_eq!(snap.counter("wire.admit.throttled"), Some(2));
        assert_eq!(snap.counter("wire.admit.throttled.flood"), Some(2));
        assert_eq!(snap.counter("wire.admit.shed"), Some(2));
        assert_eq!(snap.counter("wire.shed.global_overload"), Some(1));
        assert_eq!(snap.counter("wire.shed.too_many_clients"), Some(1));
        assert_eq!(m.latency_count(ClientClass::Steady), 1);
        assert!(m.p99_ns(ClientClass::Steady) > 0);
        assert_eq!(m.latency_count(ClientClass::Flood), 0);
    }
}
