//! Byte transports: the in-repo stand-in for sockets.
//!
//! The front door never touches real sockets in this repo — every test,
//! bench, and chaos run drives connections over [`duplex`] pipes, a
//! pair of in-memory byte queues with explicit microsecond timestamps.
//! [`ChaosTransport`] wraps any transport and injects the three network
//! failure modes from a seeded [`v6chaos`] plan:
//!
//! * [`Fault::Error`] — the chunk is **dropped** (packet loss);
//! * [`Fault::Panic`] — one deterministic **bit flip** inside the chunk
//!   (corruption in transit — the frame checksum must catch it);
//! * [`Fault::Stall`] — delivery of the chunk is **deferred** by the
//!   stall duration (a slow peer), released by a later `recv`.
//!
//! Fault sites are named `wire.<label>.<seq>` where `seq` is the chunk
//! sequence number on that transport, so a seeded plan replays the same
//! loss/corruption pattern on every run.
//!
//! The [`Transport`] trait is also the cluster's node boundary:
//! `v6cluster` links implement it over the same caller-driven clock,
//! with their own fault semantics at `cluster.<node>.<seq>` sites
//! (there, `Panic` kills the sending node rather than flipping a bit).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use v6chaos::{Chaos, Fault};

/// Why a transport operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed its end and no buffered bytes remain.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional byte stream with caller-driven time.
///
/// `now_us` is the caller's simulated clock; pipes ignore it, the chaos
/// wrapper uses it to release stalled chunks. Chunk boundaries are NOT
/// preserved end-to-end: `recv` may coalesce several sends, exactly
/// like a TCP stream — which is why the frame decoder is incremental.
pub trait Transport {
    /// Queues `bytes` toward the peer.
    fn send(&mut self, bytes: &[u8], now_us: u64) -> Result<(), TransportError>;

    /// Takes every byte that has arrived from the peer by `now_us`
    /// (empty when nothing is pending).
    fn recv(&mut self, now_us: u64) -> Result<Vec<u8>, TransportError>;

    /// Closes this end; the peer sees [`TransportError::Closed`] once
    /// it drains what was already sent.
    fn close(&mut self);
}

#[derive(Debug, Default)]
struct PipeLane {
    chunks: VecDeque<Vec<u8>>,
    closed: bool,
}

/// One end of an in-memory duplex pipe (see [`duplex`]).
#[derive(Debug, Clone)]
pub struct PipeTransport {
    outgoing: Arc<Mutex<PipeLane>>,
    incoming: Arc<Mutex<PipeLane>>,
}

/// A connected pair of in-memory byte pipes: what one end sends, the
/// other receives, in order, with no loss.
pub fn duplex() -> (PipeTransport, PipeTransport) {
    let a_to_b = Arc::new(Mutex::new(PipeLane::default()));
    let b_to_a = Arc::new(Mutex::new(PipeLane::default()));
    (
        PipeTransport {
            outgoing: Arc::clone(&a_to_b),
            incoming: Arc::clone(&b_to_a),
        },
        PipeTransport {
            outgoing: b_to_a,
            incoming: a_to_b,
        },
    )
}

impl Transport for PipeTransport {
    fn send(&mut self, bytes: &[u8], _now_us: u64) -> Result<(), TransportError> {
        let mut lane = self.outgoing.lock();
        if lane.closed {
            return Err(TransportError::Closed);
        }
        lane.chunks.push_back(bytes.to_vec());
        Ok(())
    }

    fn recv(&mut self, _now_us: u64) -> Result<Vec<u8>, TransportError> {
        let mut lane = self.incoming.lock();
        if lane.chunks.is_empty() {
            return if lane.closed {
                Err(TransportError::Closed)
            } else {
                Ok(Vec::new())
            };
        }
        let mut out = Vec::new();
        while let Some(chunk) = lane.chunks.pop_front() {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    fn close(&mut self) {
        self.outgoing.lock().closed = true;
        self.incoming.lock().closed = true;
    }
}

/// A chunk held back by a stall fault until `release_us`.
#[derive(Debug)]
struct Deferred {
    release_us: u64,
    bytes: Vec<u8>,
}

/// Wraps a transport with seeded loss, corruption, and stalls on the
/// *send* path (faults on one direction of a duplex connection are
/// modeled by wrapping that end).
pub struct ChaosTransport<T, C> {
    inner: T,
    chaos: C,
    label: String,
    seq: u32,
    deferred: Vec<Deferred>,
}

impl<T: Transport, C: Chaos> ChaosTransport<T, C> {
    /// Wraps `inner`, naming fault sites `wire.<label>.<seq>`.
    pub fn new(inner: T, chaos: C, label: impl Into<String>) -> Self {
        ChaosTransport {
            inner,
            chaos,
            label: label.into(),
            seq: 0,
            deferred: Vec::new(),
        }
    }

    /// Chunks sent so far (fault-site sequence counter).
    pub fn chunks_sent(&self) -> u32 {
        self.seq
    }

    /// Flushes deferred (stalled) chunks whose release time arrived.
    fn release_due(&mut self, now_us: u64) -> Result<(), TransportError> {
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].release_us <= now_us {
                let d = self.deferred.remove(i);
                self.inner.send(&d.bytes, now_us)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

impl<T: Transport, C: Chaos> Transport for ChaosTransport<T, C> {
    fn send(&mut self, bytes: &[u8], now_us: u64) -> Result<(), TransportError> {
        let site = format!("wire.{}.{}", self.label, self.seq);
        self.seq += 1;
        self.release_due(now_us)?;
        match self.chaos.decide(&site, 0) {
            Fault::None => self.inner.send(bytes, now_us),
            // Loss: the chunk vanishes. The send itself "succeeds" —
            // real networks do not report dropped segments either.
            Fault::Error => Ok(()),
            // Corruption: flip one bit, position derived from the
            // sequence number so runs replay identically.
            Fault::Panic => {
                let mut rotten = bytes.to_vec();
                if !rotten.is_empty() {
                    let pos = self.seq as usize % rotten.len();
                    rotten[pos] ^= 1 << (self.seq % 8);
                }
                self.inner.send(&rotten, now_us)
            }
            Fault::Stall(d) => {
                self.deferred.push(Deferred {
                    release_us: now_us + d.as_micros() as u64,
                    bytes: bytes.to_vec(),
                });
                Ok(())
            }
        }
    }

    fn recv(&mut self, now_us: u64) -> Result<Vec<u8>, TransportError> {
        self.release_due(now_us)?;
        self.inner.recv(now_us)
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use v6chaos::{NoChaos, ScriptedChaos, SiteScript};

    #[test]
    fn duplex_delivers_in_order_and_coalesces() {
        let (mut a, mut b) = duplex();
        a.send(b"one", 0).unwrap();
        a.send(b"two", 0).unwrap();
        assert_eq!(b.recv(0).unwrap(), b"onetwo".to_vec());
        assert_eq!(b.recv(0).unwrap(), Vec::<u8>::new());
        b.send(b"back", 0).unwrap();
        assert_eq!(a.recv(0).unwrap(), b"back".to_vec());
    }

    #[test]
    fn close_drains_then_errors() {
        let (mut a, mut b) = duplex();
        a.send(b"tail", 0).unwrap();
        a.close();
        assert_eq!(b.recv(0).unwrap(), b"tail".to_vec());
        assert_eq!(b.recv(0), Err(TransportError::Closed));
        assert_eq!(b.send(b"x", 0), Err(TransportError::Closed));
    }

    #[test]
    fn chaos_error_drops_the_chunk() {
        let (a, mut b) = duplex();
        let chaos = ScriptedChaos::new().with("wire.c2s.0", SiteScript::permanent());
        let mut a = ChaosTransport::new(a, chaos, "c2s");
        a.send(b"lost", 0).unwrap();
        a.send(b"kept", 0).unwrap();
        assert_eq!(b.recv(0).unwrap(), b"kept".to_vec());
    }

    #[test]
    fn chaos_panic_flips_exactly_one_bit() {
        let (a, mut b) = duplex();
        let chaos = ScriptedChaos::new().with("wire.c2s.0", SiteScript::permanent_panic());
        let mut a = ChaosTransport::new(a, chaos, "c2s");
        a.send(&[0u8; 8], 0).unwrap();
        let got = b.recv(0).unwrap();
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped: {got:?}");
    }

    #[test]
    fn chaos_stall_defers_until_release_time() {
        let (a, mut b) = duplex();
        let chaos = ScriptedChaos::new().with(
            "wire.c2s.0",
            SiteScript::ok().with_stall(Duration::from_millis(5)),
        );
        let mut a = ChaosTransport::new(a, chaos, "c2s");
        a.send(b"slow", 0).unwrap();
        assert_eq!(b.recv(0).unwrap(), Vec::<u8>::new());
        // Not due yet at 4 ms...
        a.send(b"", 4_000).unwrap(); // a later send also releases due chunks
        assert_eq!(b.recv(4_000).unwrap(), Vec::<u8>::new());
        // ...due at 5 ms, released by the sender's next recv.
        assert_eq!(a.recv(5_000).unwrap(), Vec::<u8>::new());
        assert_eq!(b.recv(5_000).unwrap(), b"slow".to_vec());
    }

    #[test]
    fn no_chaos_is_transparent() {
        let (a, mut b) = duplex();
        let mut a = ChaosTransport::new(a, NoChaos, "c2s");
        a.send(b"clean", 7).unwrap();
        assert_eq!(b.recv(7).unwrap(), b"clean".to_vec());
        assert_eq!(a.chunks_sent(), 1);
    }
}
