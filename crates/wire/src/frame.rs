//! Wire framing (format v1): the connection preamble and the streaming
//! frame decoder.
//!
//! A connection opens with an 8-byte preamble from each side — the
//! 7-byte magic `V6WIRE1` followed by a protocol-version byte — and then
//! carries length-prefixed, checksummed frames in both directions:
//!
//! ```text
//! preamble := "V6WIRE1" version(u8 = 1)
//! frame    := payload_len(u32 LE) payload(payload_len bytes) fnv64(payload)
//! payload  := tag(u8) request_id(u64 LE) body
//! ```
//!
//! The frame layout is deliberately identical to the `v6store` on-disk
//! frame (length prefix, FNV-1a 64 over the payload only), and the
//! payload bodies reuse the same [`v6store::format::Enc`] and
//! [`v6store::format::Dec`]
//! primitives — one codec for disk, wire, and the node-to-node
//! replication stream (`v6cluster` frames its `v6store::replica`
//! payloads with this same [`frame`]/[`FrameDecoder`] pair).
//!
//! # Abuse-hardening contract
//!
//! The decoder is the first thing untrusted bytes touch, so it pins
//! three properties (enforced by the fuzz battery in
//! `crates/wire/tests/fuzz_codec.rs`):
//!
//! * **Never panics.** Any byte sequence — truncated, bit-flipped,
//!   adversarial — yields frames or a typed [`FrameError`], never a
//!   panic.
//! * **Never over-allocates.** A length prefix above
//!   [`MAX_FRAME_PAYLOAD`] is rejected *before* any buffer grows toward
//!   it; the decoder's internal buffer never exceeds
//!   [`FrameDecoder::MAX_BUFFERED`] after a successful feed.
//! * **Incomplete is not an error.** A prefix of a valid stream decodes
//!   to the frames it completes and waits for the rest; only structural
//!   violations (bad magic, oversized prefix, checksum mismatch)
//!   produce errors.

use v6store::format::fnv64;

/// The 7-byte connection magic. The trailing `1` is the wire
/// generation: peers reject preambles whose magic does not match
/// exactly.
pub const MAGIC: [u8; 7] = *b"V6WIRE1";

/// Current protocol version, the 8th preamble byte.
pub const PROTOCOL_VERSION: u8 = 1;

/// Preamble size: magic + version byte.
pub const PREAMBLE_LEN: usize = 8;

/// Ceiling on a single frame's payload (1 MiB). A length prefix above
/// this is a protocol error, not an allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Bytes a frame adds around its payload: length prefix + checksum.
pub const FRAME_OVERHEAD: usize = 12;

/// Why a byte stream was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The preamble did not start with [`MAGIC`].
    BadMagic,
    /// The magic matched but the version byte is not one we speak.
    UnsupportedVersion(u8),
    /// A frame declared a payload longer than [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        declared: u32,
    },
    /// A complete frame whose FNV checksum does not match its payload:
    /// corruption in transit.
    BadChecksum,
    /// A payload tag neither side's codec knows.
    UnknownTag(u8),
    /// A payload body that is truncated, has trailing bytes, or holds
    /// an out-of-range field.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "connection preamble magic mismatch"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized { declared } => write!(
                f,
                "frame declares {declared} payload bytes (cap {MAX_FRAME_PAYLOAD})"
            ),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::UnknownTag(t) => write!(f, "unknown payload tag {t:#04x}"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The 8 preamble bytes this side sends.
pub fn preamble() -> [u8; PREAMBLE_LEN] {
    let mut out = [0u8; PREAMBLE_LEN];
    out[..7].copy_from_slice(&MAGIC);
    out[7] = PROTOCOL_VERSION;
    out
}

/// Validates a peer's 8 preamble bytes.
pub fn check_preamble(bytes: &[u8; PREAMBLE_LEN]) -> Result<(), FrameError> {
    if bytes[..7] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes[7] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(bytes[7]));
    }
    Ok(())
}

/// Wraps a payload in a wire frame: length prefix + payload + FNV-1a 64
/// checksum.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`] — encoders build
/// payloads from typed requests, which are capped long before this.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD as usize,
        "encoder produced a {}-byte payload (cap {MAX_FRAME_PAYLOAD})",
        payload.len()
    );
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Incremental frame decoder over an untrusted byte stream.
///
/// Feed it chunks as they arrive; it returns every payload the chunk
/// completes and buffers the partial tail. A structural violation
/// poisons the decoder — the connection must close, there is no way to
/// resynchronize a corrupt length-prefixed stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: bool,
}

impl FrameDecoder {
    /// Upper bound on bytes the decoder retains after a successful
    /// [`FrameDecoder::feed`]: one maximal partial frame.
    pub const MAX_BUFFERED: usize = MAX_FRAME_PAYLOAD as usize + FRAME_OVERHEAD;

    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Bytes currently buffered (a partial frame awaiting the rest).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True once a structural violation was seen; every later feed
    /// returns the same class of error.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Consumes a chunk, returning every complete payload it yields.
    ///
    /// Frames are validated front to back: an oversized length prefix
    /// or checksum mismatch fails the whole feed (the stream cannot be
    /// resynchronized past it), but the payloads decoded *before* the
    /// violation were already valid and are lost with the connection —
    /// callers respond to the error by closing, so nothing is silently
    /// dropped mid-session.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Malformed("decoder poisoned by earlier error"));
        }
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let err = loop {
            let rest = &self.buf[pos..];
            if rest.len() < 4 {
                break None;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes checked"));
            if len > MAX_FRAME_PAYLOAD {
                break Some(FrameError::Oversized { declared: len });
            }
            let total = 4 + len as usize + 8;
            if rest.len() < total {
                break None;
            }
            let payload = &rest[4..4 + len as usize];
            let sum =
                u64::from_le_bytes(rest[4 + len as usize..total].try_into().expect("8 bytes"));
            if fnv64(payload) != sum {
                break Some(FrameError::BadChecksum);
            }
            out.push(payload.to_vec());
            pos += total;
        };
        self.buf.drain(..pos);
        if let Some(e) = err {
            self.poisoned = true;
            self.buf.clear();
            return Err(e);
        }
        debug_assert!(self.buf.len() <= Self::MAX_BUFFERED);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preamble_round_trip_and_rejection() {
        let p = preamble();
        assert_eq!(p.len(), PREAMBLE_LEN);
        assert_eq!(check_preamble(&p), Ok(()));
        let mut bad = p;
        bad[0] ^= 0xff;
        assert_eq!(check_preamble(&bad), Err(FrameError::BadMagic));
        let mut wrong_version = p;
        wrong_version[7] = 9;
        assert_eq!(
            check_preamble(&wrong_version),
            Err(FrameError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn frames_decode_across_arbitrary_chunk_boundaries() {
        let a = frame(b"first");
        let b = frame(b"second payload");
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        for cut in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut got = dec.feed(&stream[..cut]).expect("prefix never errors");
            got.extend(dec.feed(&stream[cut..]).expect("suffix completes"));
            assert_eq!(got, vec![b"first".to_vec(), b"second payload".to_vec()]);
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut dec = FrameDecoder::new();
        let mut bytes = (MAX_FRAME_PAYLOAD + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 32]);
        assert_eq!(
            dec.feed(&bytes),
            Err(FrameError::Oversized {
                declared: MAX_FRAME_PAYLOAD + 1
            })
        );
        assert!(dec.is_poisoned());
        assert_eq!(dec.buffered(), 0);
        // A poisoned decoder refuses further input instead of parsing
        // from a desynchronized offset.
        assert!(dec.feed(&frame(b"later")).is_err());
    }

    #[test]
    fn bit_flip_is_a_checksum_error() {
        let f = frame(b"payload bytes");
        let mut rotten = f.clone();
        rotten[7] ^= 0x20;
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.feed(&rotten), Err(FrameError::BadChecksum));
    }

    #[test]
    fn valid_frames_before_a_violation_are_returned_by_earlier_feeds() {
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.feed(&frame(b"ok")).unwrap(), vec![b"ok".to_vec()]);
        let mut rotten = frame(b"bad");
        rotten[5] ^= 1;
        assert_eq!(dec.feed(&rotten), Err(FrameError::BadChecksum));
    }
}
