//! The per-connection server state machine.
//!
//! A [`ServerConn`] is sans-io: it consumes raw bytes via
//! [`ServerConn::on_bytes`] and returns the bytes to write back — no
//! sockets, no threads, no clocks beyond the caller's `now_us`. The
//! [`ServerConn::pump`] convenience moves bytes through any
//! [`Transport`].
//!
//! Lifecycle: the connection starts awaiting the client's 8-byte
//! preamble (the server's own preamble is available immediately from
//! [`ServerConn::handshake_bytes`]); once validated it serves frames
//! until a structural violation closes it. Every decoded request gets
//! **exactly one** response frame — an answer, a `Throttled`, a `Shed`,
//! or an `Error` — never a silent drop.
//!
//! Batch coalescing: all requests decoded from one `on_bytes` chunk are
//! answered against a single snapshot clone (one `Arc` bump, one
//! epoch), so pipelined requests cost one snapshot resolution and can
//! never straddle a publication mid-chunk.

use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::Instant;

use v6serve::{ServeStatus, Snapshot, StreamAnalytics};

use crate::admit::AdmitDecision;
use crate::frame::{check_preamble, frame, FrameDecoder, FrameError, PREAMBLE_LEN};
use crate::proto::{Request, Response, WireLookup, WireMove, MAX_MOVED_ROWS};
use crate::server::WireServer;
use crate::transport::{Transport, TransportError};

/// What one [`ServerConn::on_bytes`] call produced.
#[derive(Debug, Default)]
pub struct ConnOutput {
    /// Bytes to write back to the client (response frames, in order).
    pub bytes: Vec<u8>,
    /// True when the connection must close (protocol violation or
    /// explicit shutdown); `error` says why.
    pub close: bool,
    /// The violation that closed the connection, if any.
    pub error: Option<FrameError>,
}

#[derive(Debug, PartialEq, Eq)]
enum ConnPhase {
    AwaitPreamble,
    Open,
    Closed,
}

/// Server side of one client connection.
pub struct ServerConn {
    server: Arc<WireServer>,
    client_id: u64,
    phase: ConnPhase,
    preamble_buf: Vec<u8>,
    decoder: FrameDecoder,
    handshake_sent: bool,
}

impl ServerConn {
    pub(crate) fn new(server: Arc<WireServer>, client_id: u64) -> Self {
        server.metrics().record_conn_opened();
        ServerConn {
            server,
            client_id,
            phase: ConnPhase::AwaitPreamble,
            preamble_buf: Vec::with_capacity(PREAMBLE_LEN),
            decoder: FrameDecoder::new(),
            handshake_sent: false,
        }
    }

    /// The client identity this connection authenticated as.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// True once the connection closed (violation or shutdown).
    pub fn is_closed(&self) -> bool {
        self.phase == ConnPhase::Closed
    }

    /// The server's own preamble, to be written before any response
    /// frame.
    pub fn handshake_bytes(&self) -> [u8; PREAMBLE_LEN] {
        crate::frame::preamble()
    }

    /// Consumes client bytes arriving at `now_us`; returns response
    /// bytes and the close verdict.
    pub fn on_bytes(&mut self, bytes: &[u8], now_us: u64) -> ConnOutput {
        let mut out = ConnOutput::default();
        if self.phase == ConnPhase::Closed {
            out.close = true;
            return out;
        }
        let mut rest = bytes;
        if self.phase == ConnPhase::AwaitPreamble {
            let need = PREAMBLE_LEN - self.preamble_buf.len();
            let take = need.min(rest.len());
            self.preamble_buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.preamble_buf.len() < PREAMBLE_LEN {
                return out;
            }
            let fixed: [u8; PREAMBLE_LEN] =
                self.preamble_buf[..].try_into().expect("length checked");
            if let Err(e) = check_preamble(&fixed) {
                return self.fail(out, e);
            }
            self.phase = ConnPhase::Open;
        }
        if rest.is_empty() {
            return out;
        }
        let payloads = match self.decoder.feed(rest) {
            Ok(p) => p,
            Err(e) => return self.fail(out, e),
        };
        if payloads.is_empty() {
            return out;
        }
        self.server
            .metrics()
            .record_frames_in(payloads.len() as u64);

        // One snapshot resolves every request in this chunk: batch
        // coalescing at the connection boundary.
        let snap = self.server.engine().store().snapshot();
        for payload in &payloads {
            let (id, req) = match Request::decode(payload) {
                Ok(pair) => pair,
                Err(e) => {
                    // The frame was intact (checksum passed) but the
                    // payload is not a request we speak: tell the
                    // client, then close.
                    let resp = Response::Error {
                        message: e.to_string(),
                    };
                    out.bytes.extend_from_slice(&frame(&resp.encode(0)));
                    self.server.metrics().record_frame_out();
                    return self.fail(out, e);
                }
            };
            let resp = self.answer(&snap, req, now_us);
            out.bytes.extend_from_slice(&frame(&resp.encode(id)));
            self.server.metrics().record_frame_out();
        }
        out
    }

    /// Admission + dispatch for one decoded request.
    fn answer(&self, snap: &Snapshot, req: Request, now_us: u64) -> Response {
        // Pings are liveness probes: answered before admission so a
        // throttled client can still see the server is up.
        if req == Request::Ping {
            return Response::Pong;
        }
        let metrics = self.server.metrics();
        let decision = self.server.admit(self.client_id, now_us);
        let class = match decision {
            AdmitDecision::Admit => {
                metrics.record_admitted();
                self.server
                    .client_class(self.client_id)
                    .unwrap_or(crate::admit::ClientClass::New)
            }
            AdmitDecision::Throttle {
                retry_after_ms,
                class,
            } => {
                metrics.record_throttled(class);
                return Response::Throttled {
                    retry_after_ms,
                    class,
                };
            }
            AdmitDecision::Shed { reason } => {
                metrics.record_shed(reason);
                return Response::Shed { reason };
            }
        };
        let started = Instant::now();
        let resp = serve_request_with(snap, self.server.engine().analytics().map(|a| &**a), req);
        metrics.record_latency(class, started.elapsed());
        resp
    }

    fn fail(&mut self, mut out: ConnOutput, error: FrameError) -> ConnOutput {
        self.server.metrics().record_protocol_error();
        self.close_internal();
        out.close = true;
        out.error = Some(error);
        out
    }

    fn close_internal(&mut self) {
        if self.phase != ConnPhase::Closed {
            self.phase = ConnPhase::Closed;
            self.server.metrics().record_conn_closed();
        }
    }

    /// Explicitly closes the connection (accounted in `wire.conn.*`).
    pub fn close(&mut self) {
        self.close_internal();
    }

    /// Moves bytes through `transport`: sends the server preamble on
    /// the first call, receives whatever the client sent by `now_us`,
    /// processes it, and sends the responses back. Returns the close
    /// verdict of this round.
    pub fn pump<T: Transport>(
        &mut self,
        transport: &mut T,
        now_us: u64,
    ) -> Result<ConnOutput, TransportError> {
        if !self.handshake_sent {
            transport.send(&self.handshake_bytes(), now_us)?;
            self.handshake_sent = true;
        }
        let inbound = match transport.recv(now_us) {
            Ok(b) => b,
            Err(TransportError::Closed) => {
                self.close_internal();
                return Err(TransportError::Closed);
            }
        };
        let out = self.on_bytes(&inbound, now_us);
        if !out.bytes.is_empty() {
            transport.send(&out.bytes, now_us)?;
        }
        if out.close {
            transport.close();
        }
        Ok(out)
    }
}

impl Drop for ServerConn {
    fn drop(&mut self) {
        self.close_internal();
    }
}

/// Answers one admitted request from `snap`. Pure — no admission, no
/// metrics — so the golden fixtures and chaos harness can call it
/// directly. Windowed streaming requests get a labeled
/// [`Response::Error`]; servers with streaming analytics use
/// [`serve_request_with`].
pub fn serve_request(snap: &Snapshot, req: Request) -> Response {
    serve_request_with(snap, None, req)
}

/// Answers one admitted request from `snap`, routing the windowed
/// streaming-analytics requests ([`Request::MovedBetween`],
/// [`Request::EntropyShift`]) to `analytics` when present.
pub fn serve_request_with(
    snap: &Snapshot,
    analytics: Option<&StreamAnalytics>,
    req: Request,
) -> Response {
    match req {
        Request::MovedBetween { w0, w1 } => {
            let Some(analytics) = analytics else {
                return Response::Error {
                    message: "streaming analytics not enabled on this server".to_string(),
                };
            };
            let mut moves: Vec<WireMove> = analytics
                .moved_between(w0, w1)
                .into_iter()
                .map(|m| WireMove {
                    mac: m.mac,
                    from_net: m.from_net,
                    to_net: m.to_net,
                    week: m.week,
                })
                .collect();
            moves.truncate(MAX_MOVED_ROWS);
            return Response::Moved {
                epoch: analytics.epoch(),
                lagging: analytics.is_lagging(),
                moves,
            };
        }
        Request::EntropyShift { as_index, w0, w1 } => {
            let Some(analytics) = analytics else {
                return Response::Error {
                    message: "streaming analytics not enabled on this server".to_string(),
                };
            };
            return Response::EntropyShift {
                epoch: analytics.epoch(),
                lagging: analytics.is_lagging(),
                shift: analytics.entropy_shift(as_index, w0, w1),
            };
        }
        _ => {}
    }
    match req {
        Request::Ping => Response::Pong,
        Request::Membership { addr } => Response::Bool {
            value: snap.membership(Ipv6Addr::from(addr)).is_present(),
        },
        Request::MembershipUnaliased { addr } => {
            let a = Ipv6Addr::from(addr);
            Response::Bool {
                value: snap.membership(a).is_present() && !snap.is_aliased(a),
            }
        }
        Request::Lookup { addr } => Response::Lookup {
            epoch: snap.epoch(),
            answer: lookup_in(snap, addr),
        },
        Request::Density { prefix } => Response::Count {
            epoch: snap.epoch(),
            value: snap.count_within(&prefix),
        },
        Request::NewSince { week } => Response::Count {
            epoch: snap.epoch(),
            value: snap.new_since(week),
        },
        Request::Batch { addrs } => {
            let mut present = 0u64;
            let mut aliased = 0u64;
            let answers: Vec<WireLookup> = addrs
                .iter()
                .map(|&a| {
                    let ans = lookup_in(snap, a);
                    present += u64::from(ans.present);
                    aliased += u64::from(ans.alias.is_some());
                    ans
                })
                .collect();
            Response::Batch {
                epoch: snap.epoch(),
                missing_shards: snap.missing_shards().to_vec(),
                answers,
                present,
                aliased,
            }
        }
        Request::Status => Response::Status {
            epoch: snap.epoch(),
            week: snap.week(),
            len: snap.len(),
            shard_count: snap.shard_count() as u32,
            missing_shards: match snap.status() {
                ServeStatus::Ok => Vec::new(),
                ServeStatus::Degraded { missing_shards } => missing_shards,
            },
        },
        Request::MovedBetween { .. } | Request::EntropyShift { .. } => {
            unreachable!("windowed requests answered before snapshot dispatch")
        }
    }
}

fn lookup_in(snap: &Snapshot, addr: u128) -> WireLookup {
    let a = Ipv6Addr::from(addr);
    WireLookup {
        present: snap.contains(a),
        first_week: snap.first_week(a),
        alias: snap.longest_alias(a),
        degraded: snap.shard_missing(a),
    }
}
