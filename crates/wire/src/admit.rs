//! Admission control: per-client token buckets, a global load-shedding
//! budget, and a behavioral classifier that adapts throttle tiers.
//!
//! Everything here is pure state driven by caller-supplied microsecond
//! timestamps — no clocks, no threads — so adversarial scenarios replay
//! deterministically in tests and benches.
//!
//! The decision order is deliberate (and load-bearing for the fairness
//! guarantee the integration tests assert):
//!
//! 1. **Classify** — the arrival is recorded in the client's windowed
//!    history; crossing the flood rate promotes immediately.
//! 2. **Per-client bucket** — refilled at the base rate divided by the
//!    class's throttle tier. An abusive client exhausts *its own*
//!    bucket and gets [`AdmitDecision::Throttle`] long before it can
//!    drain the shared budget.
//! 3. **Global bucket** — only requests that passed their own tier draw
//!    from the shared budget; exhaustion is [`AdmitDecision::Shed`].
//!
//! Because a flood is contained at step 2, steady pollers keep seeing
//! an un-drained global bucket: zero sheds for the well-behaved even
//! while a flooder hammers the same server.

use std::collections::HashMap;

use crate::proto::ShedReason;

/// Microseconds per second — the token-math scale factor (1 token is
/// carried as 1_000_000 micro-tokens so refill stays in integers).
const MICROS: u64 = 1_000_000;

/// Behavioral class assigned to a client by its arrival pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClientClass {
    /// Too few frames observed to classify; treated like steady.
    New,
    /// Regular arrivals within the base rate: full rate tier.
    Steady,
    /// Spiky scraper — long quiet gaps, dense bursts: rate / 4.
    Burst,
    /// Sustained arrivals above the flood rate: rate / 20.
    Flood,
}

impl ClientClass {
    /// Divisor applied to the base per-client refill rate.
    pub fn tier_divisor(self) -> u64 {
        match self {
            ClientClass::New | ClientClass::Steady => 1,
            ClientClass::Burst => 4,
            ClientClass::Flood => 20,
        }
    }

    /// Wire encoding of the class.
    pub fn as_u8(self) -> u8 {
        match self {
            ClientClass::New => 0,
            ClientClass::Steady => 1,
            ClientClass::Burst => 2,
            ClientClass::Flood => 3,
        }
    }

    /// Decodes a wire class byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ClientClass::New),
            1 => Some(ClientClass::Steady),
            2 => Some(ClientClass::Burst),
            3 => Some(ClientClass::Flood),
            _ => None,
        }
    }

    /// Metric-label name for this class.
    pub fn name(self) -> &'static str {
        match self {
            ClientClass::New => "new",
            ClientClass::Steady => "steady",
            ClientClass::Burst => "burst",
            ClientClass::Flood => "flood",
        }
    }

    fn demote(self) -> Self {
        match self {
            ClientClass::Flood => ClientClass::Burst,
            ClientClass::Burst | ClientClass::Steady => ClientClass::Steady,
            ClientClass::New => ClientClass::New,
        }
    }
}

/// The verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Serve it.
    Admit,
    /// The client's tier bucket is empty; answer with a labeled
    /// `Throttled` frame.
    Throttle {
        /// Suggested wait until a token is available, in milliseconds.
        retry_after_ms: u32,
        /// The class whose tier rejected the request.
        class: ClientClass,
    },
    /// Global overload (or client-table exhaustion); answer with a
    /// labeled `Shed` frame.
    Shed {
        /// Why the request was shed.
        reason: ShedReason,
    },
}

/// Tunables for the admission layer.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Base per-client sustained rate (requests/second) before tier
    /// division.
    pub client_rate_per_sec: u64,
    /// Per-client bucket capacity (requests of burst headroom).
    pub client_burst: u64,
    /// Shared sustained rate across all clients (requests/second).
    pub global_rate_per_sec: u64,
    /// Shared bucket capacity.
    pub global_burst: u64,
    /// Ceiling on concurrently tracked clients; beyond it, unknown
    /// clients are shed with [`ShedReason::TooManyClients`].
    pub max_clients: usize,
    /// Classifier window length in microseconds.
    pub window_us: u64,
    /// Sustained arrivals/second that promote a client to
    /// [`ClientClass::Flood`].
    pub flood_rate_per_sec: u64,
    /// Peak-to-mean window ratio that marks a [`ClientClass::Burst`]
    /// scraper.
    pub burst_ratio: u64,
    /// Frames a client must show before it can leave
    /// [`ClientClass::New`].
    pub classify_min_frames: u64,
    /// Consecutive quiet windows before a class demotes one step.
    pub quiet_windows_to_demote: u32,
    /// Windows with no arrivals at all before an idle client's state is
    /// dropped (frees a table slot).
    pub idle_windows_to_evict: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            client_rate_per_sec: 500,
            client_burst: 100,
            global_rate_per_sec: 20_000,
            global_burst: 4_000,
            max_clients: 4_096,
            window_us: 100_000,
            flood_rate_per_sec: 2_000,
            burst_ratio: 8,
            classify_min_frames: 16,
            quiet_windows_to_demote: 20,
            idle_windows_to_evict: 600,
        }
    }
}

/// Integer token bucket: tokens scaled by [`MICROS`] so refill is exact
/// integer math on microsecond timestamps.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    micro_tokens: u64,
    capacity_micro: u64,
    last_refill_us: u64,
}

impl TokenBucket {
    fn new(burst: u64, now_us: u64) -> Self {
        let capacity = burst.saturating_mul(MICROS);
        TokenBucket {
            micro_tokens: capacity,
            capacity_micro: capacity,
            last_refill_us: now_us,
        }
    }

    fn refill(&mut self, rate_per_sec: u64, now_us: u64) {
        let elapsed = now_us.saturating_sub(self.last_refill_us);
        self.last_refill_us = now_us;
        // rate tokens/sec == rate micro-tokens/microsecond.
        let added = elapsed.saturating_mul(rate_per_sec);
        self.micro_tokens = (self.micro_tokens.saturating_add(added)).min(self.capacity_micro);
    }

    /// Takes one token if available; on failure returns the wait (µs)
    /// until one accrues at `rate_per_sec`.
    fn try_take(&mut self, rate_per_sec: u64, now_us: u64) -> Result<(), u64> {
        self.refill(rate_per_sec, now_us);
        if self.micro_tokens >= MICROS {
            self.micro_tokens -= MICROS;
            Ok(())
        } else {
            let deficit = MICROS - self.micro_tokens;
            Err(deficit.div_ceil(rate_per_sec.max(1)))
        }
    }
}

/// Windowed arrival history driving classification.
const HISTORY_WINDOWS: usize = 8;

#[derive(Debug)]
struct ClientState {
    bucket: TokenBucket,
    class: ClientClass,
    window_start_us: u64,
    current_window: u64,
    history: [u64; HISTORY_WINDOWS],
    history_len: usize,
    frames_seen: u64,
    classified_at_frame: Option<u64>,
    quiet_windows: u32,
    idle_windows: u32,
}

impl ClientState {
    fn new(cfg: &AdmissionConfig, now_us: u64) -> Self {
        ClientState {
            bucket: TokenBucket::new(cfg.client_burst, now_us),
            class: ClientClass::New,
            window_start_us: now_us,
            current_window: 0,
            history: [0; HISTORY_WINDOWS],
            history_len: 0,
            frames_seen: 0,
            classified_at_frame: None,
            quiet_windows: 0,
            idle_windows: 0,
        }
    }

    /// Closes every window that elapsed before `now_us`, pushing counts
    /// into the history ring and re-classifying at each boundary.
    fn roll_windows(&mut self, cfg: &AdmissionConfig, now_us: u64) {
        while now_us.saturating_sub(self.window_start_us) >= cfg.window_us {
            let count = self.current_window;
            self.history.rotate_right(1);
            self.history[0] = count;
            self.history_len = (self.history_len + 1).min(HISTORY_WINDOWS);
            self.current_window = 0;
            self.window_start_us += cfg.window_us;
            self.idle_windows = if count == 0 { self.idle_windows + 1 } else { 0 };

            // A quiet window is one at or below the steady budget.
            let steady_per_window = cfg.client_rate_per_sec * cfg.window_us / MICROS;
            if count <= steady_per_window {
                self.quiet_windows += 1;
                if self.quiet_windows >= cfg.quiet_windows_to_demote
                    && self.class > ClientClass::Steady
                {
                    self.class = self.class.demote();
                    self.quiet_windows = 0;
                }
            } else {
                self.quiet_windows = 0;
            }
            self.classify(cfg);
        }
    }

    /// Window-boundary classification from the history ring.
    fn classify(&mut self, cfg: &AdmissionConfig) {
        if self.frames_seen < cfg.classify_min_frames || self.history_len == 0 {
            return;
        }
        let window_count = self.history_len as u64;
        let total: u64 = self.history[..self.history_len].iter().sum();
        let peak: u64 = *self.history[..self.history_len].iter().max().unwrap_or(&0);
        let span_us = window_count * cfg.window_us;
        // Average arrivals/second across the ring.
        let avg_rate = total.saturating_mul(MICROS) / span_us.max(1);
        let mean_per_window = total / window_count;

        let next = if avg_rate >= cfg.flood_rate_per_sec {
            ClientClass::Flood
        } else if peak >= cfg.burst_ratio.saturating_mul(mean_per_window.max(1))
            && peak > cfg.client_rate_per_sec * cfg.window_us / MICROS
        {
            ClientClass::Burst
        } else {
            ClientClass::Steady
        };
        // Upgrades apply immediately; downgrades only through the
        // quiet-window path, so a flooder cannot reset its tier by
        // pausing for one window.
        if next > self.class || (self.class == ClientClass::New && next >= ClientClass::Steady) {
            self.set_class(next);
        }
    }

    fn set_class(&mut self, class: ClientClass) {
        if class > ClientClass::New && self.classified_at_frame.is_none() {
            self.classified_at_frame = Some(self.frames_seen);
        }
        self.class = class;
        self.quiet_windows = 0;
    }

    /// Records one arrival; fast-path flood promotion when the current
    /// window alone crosses the flood budget.
    fn record_arrival(&mut self, cfg: &AdmissionConfig, now_us: u64) {
        self.roll_windows(cfg, now_us);
        self.current_window += 1;
        self.frames_seen += 1;
        self.idle_windows = 0;
        let flood_per_window = cfg.flood_rate_per_sec * cfg.window_us / MICROS;
        if self.frames_seen >= cfg.classify_min_frames
            && self.current_window > flood_per_window
            && self.class < ClientClass::Flood
        {
            self.set_class(ClientClass::Flood);
        }
    }
}

/// A classified client's externally visible state (for tests, metrics,
/// and the adversarial bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientInfo {
    /// Current behavioral class.
    pub class: ClientClass,
    /// Frames seen from this client so far.
    pub frames_seen: u64,
    /// Frame index at which the client first left
    /// [`ClientClass::New`], if it has.
    pub classified_at_frame: Option<u64>,
}

/// The admission gate: one per server, shared by every connection.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    clients: HashMap<u64, ClientState>,
    global: TokenBucket,
}

impl Admission {
    /// A gate with `cfg` tunables, starting at time `now_us`.
    pub fn new(cfg: AdmissionConfig, now_us: u64) -> Self {
        Admission {
            global: TokenBucket::new(cfg.global_burst, now_us),
            clients: HashMap::new(),
            cfg,
        }
    }

    /// The active tunables.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Clients currently tracked.
    pub fn tracked_clients(&self) -> usize {
        self.clients.len()
    }

    /// The externally visible state of one client.
    pub fn client_info(&self, client_id: u64) -> Option<ClientInfo> {
        self.clients.get(&client_id).map(|c| ClientInfo {
            class: c.class,
            frames_seen: c.frames_seen,
            classified_at_frame: c.classified_at_frame,
        })
    }

    /// Drops clients idle long enough to evict; called internally when
    /// the table is full, and callable from a housekeeping tick.
    pub fn evict_idle(&mut self, now_us: u64) {
        let cfg = self.cfg;
        self.clients.retain(|_, c| {
            c.roll_windows(&cfg, now_us);
            c.idle_windows < cfg.idle_windows_to_evict
        });
    }

    /// Decides one request from `client_id` arriving at `now_us`.
    pub fn admit(&mut self, client_id: u64, now_us: u64) -> AdmitDecision {
        if !self.clients.contains_key(&client_id) {
            if self.clients.len() >= self.cfg.max_clients {
                self.evict_idle(now_us);
            }
            if self.clients.len() >= self.cfg.max_clients {
                return AdmitDecision::Shed {
                    reason: ShedReason::TooManyClients,
                };
            }
            self.clients
                .insert(client_id, ClientState::new(&self.cfg, now_us));
        }
        let cfg = self.cfg;
        let client = self.clients.get_mut(&client_id).expect("just inserted");
        client.record_arrival(&cfg, now_us);
        let class = client.class;

        let rate = cfg.client_rate_per_sec / class.tier_divisor();
        if let Err(wait_us) = client.bucket.try_take(rate.max(1), now_us) {
            return AdmitDecision::Throttle {
                retry_after_ms: u32::try_from(wait_us.div_ceil(1_000).max(1)).unwrap_or(u32::MAX),
                class,
            };
        }

        if self
            .global
            .try_take(cfg.global_rate_per_sec, now_us)
            .is_err()
        {
            return AdmitDecision::Shed {
                reason: ShedReason::GlobalOverload,
            };
        }
        AdmitDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            client_rate_per_sec: 100,
            client_burst: 10,
            global_rate_per_sec: 10_000,
            global_burst: 1_000,
            max_clients: 8,
            window_us: 100_000,
            flood_rate_per_sec: 1_000,
            burst_ratio: 8,
            classify_min_frames: 16,
            quiet_windows_to_demote: 5,
            idle_windows_to_evict: 50,
        }
    }

    #[test]
    fn steady_rate_is_always_admitted() {
        let mut adm = Admission::new(cfg(), 0);
        // 50 req/s against a 100 req/s budget: every request admitted.
        for i in 0..500u64 {
            let now = i * 20_000;
            assert_eq!(adm.admit(1, now), AdmitDecision::Admit, "request {i}");
        }
        assert_eq!(adm.client_info(1).unwrap().class, ClientClass::Steady);
    }

    #[test]
    fn flood_is_promoted_and_throttled() {
        let mut adm = Admission::new(cfg(), 0);
        // 10k req/s: far over the 1k flood line.
        let mut throttled = 0u32;
        for i in 0..2_000u64 {
            let now = i * 100;
            if matches!(adm.admit(7, now), AdmitDecision::Throttle { .. }) {
                throttled += 1;
            }
        }
        let info = adm.client_info(7).unwrap();
        assert_eq!(info.class, ClientClass::Flood);
        assert!(
            info.classified_at_frame.unwrap() <= 200,
            "flood classified late: {:?}",
            info.classified_at_frame
        );
        assert!(throttled > 1_800, "flood mostly throttled: {throttled}");
    }

    #[test]
    fn flood_does_not_drain_the_global_budget() {
        let mut adm = Admission::new(cfg(), 0);
        for i in 0..5_000u64 {
            let now = i * 100;
            // Flooder (client 9) and steady poller (client 1, 50 req/s).
            let _ = adm.admit(9, now);
            if now % 20_000 == 0 {
                assert_eq!(
                    adm.admit(1, now),
                    AdmitDecision::Admit,
                    "steady poller shed at t={now}us"
                );
            }
        }
    }

    #[test]
    fn quiet_windows_demote_a_flooder() {
        let mut adm = Admission::new(cfg(), 0);
        for i in 0..2_000u64 {
            let _ = adm.admit(3, i * 100);
        }
        assert_eq!(adm.client_info(3).unwrap().class, ClientClass::Flood);
        // Slow to 10 req/s for well past the demotion horizon.
        let base = 2_000 * 100;
        for i in 0..50u64 {
            let _ = adm.admit(3, base + i * 100_000);
        }
        let class = adm.client_info(3).unwrap().class;
        assert!(
            class < ClientClass::Flood,
            "flooder should demote after sustained quiet: {class:?}"
        );
    }

    #[test]
    fn client_table_overflow_sheds_new_clients() {
        let mut adm = Admission::new(cfg(), 0);
        for id in 0..8u64 {
            assert_eq!(adm.admit(id, 0), AdmitDecision::Admit);
        }
        assert_eq!(
            adm.admit(99, 1),
            AdmitDecision::Shed {
                reason: ShedReason::TooManyClients
            }
        );
        // Once the others idle out, the newcomer gets a slot.
        let later = 51 * 100_000 + 2;
        assert_eq!(adm.admit(99, later), AdmitDecision::Admit);
        assert!(adm.tracked_clients() < 8);
    }

    #[test]
    fn global_exhaustion_is_an_explicit_shed() {
        let mut adm = Admission::new(
            AdmissionConfig {
                client_rate_per_sec: 1_000_000,
                client_burst: 1_000_000,
                global_rate_per_sec: 10,
                global_burst: 5,
                ..cfg()
            },
            0,
        );
        let mut sheds = 0;
        for i in 0..50u64 {
            if matches!(
                adm.admit(1, i),
                AdmitDecision::Shed {
                    reason: ShedReason::GlobalOverload
                }
            ) {
                sheds += 1;
            }
        }
        assert_eq!(sheds, 45, "5 burst tokens then pure shed");
    }

    #[test]
    fn throttle_retry_hint_is_positive_and_bounded() {
        let mut adm = Admission::new(cfg(), 0);
        loop {
            match adm.admit(1, 0) {
                AdmitDecision::Admit => continue,
                AdmitDecision::Throttle { retry_after_ms, .. } => {
                    assert!(retry_after_ms >= 1);
                    assert!(retry_after_ms <= 1_000);
                    break;
                }
                other => panic!("unexpected decision {other:?}"),
            }
        }
    }
}
