//! Typed request/response payloads and their binary codec.
//!
//! Every payload is `tag(u8) | request_id(u64 LE) | body`, where the
//! body reuses the bounds-checked [`v6store::format::Enc`]/[`Dec`]
//! primitives. Request tags occupy `0x01..=0x7f`, response tags
//! `0x81..=0xff`, so a peer can never confuse directions even on a
//! misrouted stream.
//!
//! The `request_id` is chosen by the client and echoed verbatim in the
//! response, which lets clients pipeline requests and match answers
//! without ordering assumptions. Admission verdicts ([`Response::Throttled`],
//! [`Response::Shed`]) carry the id of the request they reject — a shed
//! is an explicit labeled frame, never a silent drop.

use v6addr::Prefix;
use v6store::format::{Dec, Enc};

use crate::admit::ClientClass;
use crate::frame::FrameError;

/// Ceiling on addresses in one [`Request::Batch`]; keeps the encoded
/// payload safely under [`crate::frame::MAX_FRAME_PAYLOAD`].
///
/// The binding side is the *response*: a batch answer costs up to 25
/// bytes per address (present flag, optional week, optional full alias
/// prefix, degraded flag), so the cap must satisfy
/// `25 × cap + header < 1 MiB` — 40 000 leaves ~48 KiB of headroom for
/// the response header and a worst-case missing-shard list
/// (`crates/wire/tests/repro_overflow.rs` pins the all-aliased worst
/// case).
pub const MAX_BATCH_ADDRS: usize = 40_000;

const REQ_PING: u8 = 0x01;
const REQ_MEMBERSHIP: u8 = 0x02;
const REQ_MEMBERSHIP_UNALIASED: u8 = 0x03;
const REQ_LOOKUP: u8 = 0x04;
const REQ_DENSITY: u8 = 0x05;
const REQ_NEW_SINCE: u8 = 0x06;
const REQ_BATCH: u8 = 0x07;
const REQ_STATUS: u8 = 0x08;
const REQ_MOVED_BETWEEN: u8 = 0x09;
const REQ_ENTROPY_SHIFT: u8 = 0x0a;

const RESP_PONG: u8 = 0x81;
const RESP_BOOL: u8 = 0x82;
const RESP_LOOKUP: u8 = 0x83;
const RESP_COUNT: u8 = 0x84;
const RESP_BATCH: u8 = 0x85;
const RESP_STATUS: u8 = 0x86;
const RESP_THROTTLED: u8 = 0x87;
const RESP_SHED: u8 = 0x88;
const RESP_ERROR: u8 = 0x89;
const RESP_MOVED: u8 = 0x8a;
const RESP_ENTROPY_SHIFT: u8 = 0x8b;

/// Ceiling on device-move rows in one [`Response::Moved`]. Each row
/// encodes to 28 bytes, so the cap keeps the response frame well under
/// [`crate::frame::MAX_FRAME_PAYLOAD`] with header headroom.
pub const MAX_MOVED_ROWS: usize = 30_000;

/// A client request. Addresses travel as raw `u128` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered without touching the snapshot.
    Ping,
    /// Exact membership for one address.
    Membership {
        /// The address bits.
        addr: u128,
    },
    /// Membership excluding addresses under aliased prefixes.
    MembershipUnaliased {
        /// The address bits.
        addr: u128,
    },
    /// Full lookup: membership + first week + alias cover.
    Lookup {
        /// The address bits.
        addr: u128,
    },
    /// Published-address count within a prefix.
    Density {
        /// The prefix queried.
        prefix: Prefix,
    },
    /// Count of addresses first published after a study week.
    NewSince {
        /// The study week.
        week: u64,
    },
    /// Batched lookups, all resolved against one epoch.
    Batch {
        /// The address bits, in request order.
        addrs: Vec<u128>,
    },
    /// Service health: epoch, week, size, quarantined shards.
    Status,
    /// Windowed streaming-analytics query: EUI-64 devices that moved
    /// from one /64 to another between two study weeks. Answerable
    /// only when the server runs streaming analytics.
    MovedBetween {
        /// Window start (exclusive): the device was settled at `w0`.
        w0: u32,
        /// Window end (inclusive): the move surfaced in `(w0, w1]`.
        w1: u32,
    },
    /// Windowed streaming-analytics query: entropy-distribution shift
    /// of one AS between the corpus as of `w0` and the additions of
    /// `(w0, w1]`.
    EntropyShift {
        /// Dense AS index (the resolver's attribution space).
        as_index: u16,
        /// Window start (exclusive).
        w0: u32,
        /// Window end (inclusive).
        w1: u32,
    },
}

/// One address's answer inside a lookup or batch response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLookup {
    /// Is the address in the published hitlist?
    pub present: bool,
    /// Week first published, when present.
    pub first_week: Option<u32>,
    /// Longest aliased prefix covering the address, if any.
    pub alias: Option<Prefix>,
    /// True when the address's shard is quarantined in the answering
    /// epoch (the answer may be stale).
    pub degraded: bool,
}

/// One device move inside a [`Response::Moved`] answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMove {
    /// The device's MAC (low 48 bits), recovered from its EUI-64 IID.
    pub mac: u64,
    /// The /64 (high 64 address bits) the device sat in before the
    /// window.
    pub from_net: u64,
    /// The /64 it surfaced in inside the window.
    pub to_net: u64,
    /// Week it first appeared in `to_net`.
    pub week: u32,
}

/// A server response. Every variant echoes the request id it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Boolean answer (membership probes).
    Bool {
        /// The verdict.
        value: bool,
    },
    /// Answer to [`Request::Lookup`].
    Lookup {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// The per-address answer.
        answer: WireLookup,
    },
    /// Scalar count answer (density, new-since).
    Count {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// The count.
        value: u64,
    },
    /// Answer to [`Request::Batch`], resolved against one epoch.
    Batch {
        /// Epoch answering every address in the batch.
        epoch: u64,
        /// Quarantined shard indices in that epoch (empty = healthy).
        missing_shards: Vec<u32>,
        /// Per-address answers, in request order.
        answers: Vec<WireLookup>,
        /// How many were present.
        present: u64,
        /// How many fell under an aliased prefix.
        aliased: u64,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Current epoch.
        epoch: u64,
        /// Latest study week included.
        week: u64,
        /// Total published addresses.
        len: u64,
        /// Number of shards.
        shard_count: u32,
        /// Quarantined shard indices (empty = healthy).
        missing_shards: Vec<u32>,
    },
    /// The request exceeded this client's rate tier; retry later.
    Throttled {
        /// Suggested wait before retrying, in milliseconds.
        retry_after_ms: u32,
        /// The behavioral class that set the tier.
        class: ClientClass,
    },
    /// The server shed the request under global overload.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
    },
    /// The request was structurally valid but unanswerable.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Answer to [`Request::MovedBetween`].
    Moved {
        /// Epoch the streaming operators reflect.
        epoch: u64,
        /// True when the analytics lag the store after a detected
        /// replay gap — the answer reflects the last verified epoch.
        lagging: bool,
        /// The device moves, ordered by (mac, week, to_net).
        moves: Vec<WireMove>,
    },
    /// Answer to [`Request::EntropyShift`].
    EntropyShift {
        /// Epoch the streaming operators reflect.
        epoch: u64,
        /// True when the analytics lag the store (see
        /// [`Response::Moved::lagging`]).
        lagging: bool,
        /// Total-variation distance in per-mille; `None` when either
        /// window side holds no attributed addresses.
        shift: Option<u32>,
    },
}

/// Why a request was shed rather than answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global admission budget is exhausted.
    GlobalOverload,
    /// The per-client tracking table is full of *other* active clients.
    TooManyClients,
}

impl ShedReason {
    fn as_u8(self) -> u8 {
        match self {
            ShedReason::GlobalOverload => 0,
            ShedReason::TooManyClients => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ShedReason::GlobalOverload),
            1 => Some(ShedReason::TooManyClients),
            _ => None,
        }
    }
}

fn enc_opt_week(e: &mut Enc, week: Option<u32>) {
    match week {
        Some(w) => {
            e.u8(1);
            e.u32(w);
        }
        None => e.u8(0),
    }
}

fn dec_opt_week(d: &mut Dec<'_>) -> Option<Option<u32>> {
    match d.u8()? {
        0 => Some(None),
        1 => Some(Some(d.u32()?)),
        _ => None,
    }
}

fn enc_opt_prefix(e: &mut Enc, prefix: Option<Prefix>) {
    match prefix {
        Some(p) => {
            e.u8(1);
            e.u128(p.bits());
            e.u8(p.len());
        }
        None => e.u8(0),
    }
}

fn dec_opt_prefix(d: &mut Dec<'_>) -> Option<Option<Prefix>> {
    match d.u8()? {
        0 => Some(None),
        1 => {
            let bits = d.u128()?;
            let len = d.u8()?;
            if len > 128 {
                return None;
            }
            Some(Some(Prefix::from_bits(bits, len)))
        }
        _ => None,
    }
}

fn enc_lookup(e: &mut Enc, a: &WireLookup) {
    e.u8(u8::from(a.present));
    enc_opt_week(e, a.first_week);
    enc_opt_prefix(e, a.alias);
    e.u8(u8::from(a.degraded));
}

fn dec_lookup(d: &mut Dec<'_>) -> Option<WireLookup> {
    let present = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let first_week = dec_opt_week(d)?;
    let alias = dec_opt_prefix(d)?;
    let degraded = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    Some(WireLookup {
        present,
        first_week,
        alias,
        degraded,
    })
}

impl Request {
    /// Encodes this request as a wire payload (tag + id + body), ready
    /// for [`crate::frame::frame`].
    ///
    /// # Panics
    /// Panics if a batch exceeds [`MAX_BATCH_ADDRS`] — callers split
    /// larger batches.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Ping => {
                e.u8(REQ_PING);
                e.u64(request_id);
            }
            Request::Membership { addr } => {
                e.u8(REQ_MEMBERSHIP);
                e.u64(request_id);
                e.u128(*addr);
            }
            Request::MembershipUnaliased { addr } => {
                e.u8(REQ_MEMBERSHIP_UNALIASED);
                e.u64(request_id);
                e.u128(*addr);
            }
            Request::Lookup { addr } => {
                e.u8(REQ_LOOKUP);
                e.u64(request_id);
                e.u128(*addr);
            }
            Request::Density { prefix } => {
                e.u8(REQ_DENSITY);
                e.u64(request_id);
                e.u128(prefix.bits());
                e.u8(prefix.len());
            }
            Request::NewSince { week } => {
                e.u8(REQ_NEW_SINCE);
                e.u64(request_id);
                e.u64(*week);
            }
            Request::Batch { addrs } => {
                assert!(
                    addrs.len() <= MAX_BATCH_ADDRS,
                    "batch of {} addresses exceeds cap {MAX_BATCH_ADDRS}",
                    addrs.len()
                );
                e.u8(REQ_BATCH);
                e.u64(request_id);
                e.u128_list(addrs);
            }
            Request::Status => {
                e.u8(REQ_STATUS);
                e.u64(request_id);
            }
            Request::MovedBetween { w0, w1 } => {
                e.u8(REQ_MOVED_BETWEEN);
                e.u64(request_id);
                e.u32(*w0);
                e.u32(*w1);
            }
            Request::EntropyShift { as_index, w0, w1 } => {
                e.u8(REQ_ENTROPY_SHIFT);
                e.u64(request_id);
                e.u16(*as_index);
                e.u32(*w0);
                e.u32(*w1);
            }
        }
        e.into_bytes()
    }

    /// Decodes a wire payload into `(request_id, request)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), FrameError> {
        let mut d = Dec::new(payload);
        let tag = d.u8().ok_or(FrameError::Malformed("empty payload"))?;
        let id = d
            .u64()
            .ok_or(FrameError::Malformed("truncated request id"))?;
        let req = match tag {
            REQ_PING => Request::Ping,
            REQ_MEMBERSHIP => Request::Membership {
                addr: d.u128().ok_or(FrameError::Malformed("truncated address"))?,
            },
            REQ_MEMBERSHIP_UNALIASED => Request::MembershipUnaliased {
                addr: d.u128().ok_or(FrameError::Malformed("truncated address"))?,
            },
            REQ_LOOKUP => Request::Lookup {
                addr: d.u128().ok_or(FrameError::Malformed("truncated address"))?,
            },
            REQ_DENSITY => {
                let bits = d
                    .u128()
                    .ok_or(FrameError::Malformed("truncated prefix bits"))?;
                let len = d
                    .u8()
                    .ok_or(FrameError::Malformed("truncated prefix length"))?;
                if len > 128 {
                    return Err(FrameError::Malformed("prefix length out of range"));
                }
                Request::Density {
                    prefix: Prefix::from_bits(bits, len),
                }
            }
            REQ_NEW_SINCE => Request::NewSince {
                week: d.u64().ok_or(FrameError::Malformed("truncated week"))?,
            },
            REQ_BATCH => {
                let addrs = d
                    .u128_list()
                    .ok_or(FrameError::Malformed("truncated batch list"))?;
                if addrs.len() > MAX_BATCH_ADDRS {
                    return Err(FrameError::Malformed("batch exceeds address cap"));
                }
                Request::Batch { addrs }
            }
            REQ_STATUS => Request::Status,
            REQ_MOVED_BETWEEN => Request::MovedBetween {
                w0: d.u32().ok_or(FrameError::Malformed("truncated window"))?,
                w1: d.u32().ok_or(FrameError::Malformed("truncated window"))?,
            },
            REQ_ENTROPY_SHIFT => Request::EntropyShift {
                as_index: d.u16().ok_or(FrameError::Malformed("truncated as index"))?,
                w0: d.u32().ok_or(FrameError::Malformed("truncated window"))?,
                w1: d.u32().ok_or(FrameError::Malformed("truncated window"))?,
            },
            other => return Err(FrameError::UnknownTag(other)),
        };
        if !d.is_exhausted() {
            return Err(FrameError::Malformed("trailing bytes after request"));
        }
        Ok((id, req))
    }
}

impl Response {
    /// Encodes this response as a wire payload (tag + id + body), ready
    /// for [`crate::frame::frame`].
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Pong => {
                e.u8(RESP_PONG);
                e.u64(request_id);
            }
            Response::Bool { value } => {
                e.u8(RESP_BOOL);
                e.u64(request_id);
                e.u8(u8::from(*value));
            }
            Response::Lookup { epoch, answer } => {
                e.u8(RESP_LOOKUP);
                e.u64(request_id);
                e.u64(*epoch);
                enc_lookup(&mut e, answer);
            }
            Response::Count { epoch, value } => {
                e.u8(RESP_COUNT);
                e.u64(request_id);
                e.u64(*epoch);
                e.u64(*value);
            }
            Response::Batch {
                epoch,
                missing_shards,
                answers,
                present,
                aliased,
            } => {
                e.u8(RESP_BATCH);
                e.u64(request_id);
                e.u64(*epoch);
                e.u32_list(missing_shards);
                e.u32(answers.len() as u32);
                for a in answers {
                    enc_lookup(&mut e, a);
                }
                e.u64(*present);
                e.u64(*aliased);
            }
            Response::Status {
                epoch,
                week,
                len,
                shard_count,
                missing_shards,
            } => {
                e.u8(RESP_STATUS);
                e.u64(request_id);
                e.u64(*epoch);
                e.u64(*week);
                e.u64(*len);
                e.u32(*shard_count);
                e.u32_list(missing_shards);
            }
            Response::Throttled {
                retry_after_ms,
                class,
            } => {
                e.u8(RESP_THROTTLED);
                e.u64(request_id);
                e.u32(*retry_after_ms);
                e.u8(class.as_u8());
            }
            Response::Shed { reason } => {
                e.u8(RESP_SHED);
                e.u64(request_id);
                e.u8(reason.as_u8());
            }
            Response::Error { message } => {
                e.u8(RESP_ERROR);
                e.u64(request_id);
                e.name(message);
            }
            Response::Moved {
                epoch,
                lagging,
                moves,
            } => {
                e.u8(RESP_MOVED);
                e.u64(request_id);
                e.u64(*epoch);
                e.u8(u8::from(*lagging));
                e.u32(moves.len() as u32);
                for m in moves {
                    e.u64(m.mac);
                    e.u64(m.from_net);
                    e.u64(m.to_net);
                    e.u32(m.week);
                }
            }
            Response::EntropyShift {
                epoch,
                lagging,
                shift,
            } => {
                e.u8(RESP_ENTROPY_SHIFT);
                e.u64(request_id);
                e.u64(*epoch);
                e.u8(u8::from(*lagging));
                enc_opt_week(&mut e, *shift);
            }
        }
        e.into_bytes()
    }

    /// Decodes a wire payload into `(request_id, response)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response), FrameError> {
        let mut d = Dec::new(payload);
        let tag = d.u8().ok_or(FrameError::Malformed("empty payload"))?;
        let id = d
            .u64()
            .ok_or(FrameError::Malformed("truncated request id"))?;
        let resp = match tag {
            RESP_PONG => Response::Pong,
            RESP_BOOL => Response::Bool {
                value: match d.u8().ok_or(FrameError::Malformed("truncated bool"))? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Malformed("bool out of range")),
                },
            },
            RESP_LOOKUP => {
                let epoch = d.u64().ok_or(FrameError::Malformed("truncated epoch"))?;
                let answer = dec_lookup(&mut d).ok_or(FrameError::Malformed("truncated lookup"))?;
                Response::Lookup { epoch, answer }
            }
            RESP_COUNT => Response::Count {
                epoch: d.u64().ok_or(FrameError::Malformed("truncated epoch"))?,
                value: d.u64().ok_or(FrameError::Malformed("truncated count"))?,
            },
            RESP_BATCH => {
                let epoch = d.u64().ok_or(FrameError::Malformed("truncated epoch"))?;
                let missing_shards = d
                    .u32_list()
                    .ok_or(FrameError::Malformed("truncated shard list"))?;
                let n = d
                    .u32()
                    .ok_or(FrameError::Malformed("truncated answer count"))?
                    as usize;
                if n > MAX_BATCH_ADDRS {
                    return Err(FrameError::Malformed("batch answers exceed cap"));
                }
                let mut answers = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    answers.push(
                        dec_lookup(&mut d)
                            .ok_or(FrameError::Malformed("truncated batch answer"))?,
                    );
                }
                Response::Batch {
                    epoch,
                    missing_shards,
                    answers,
                    present: d.u64().ok_or(FrameError::Malformed("truncated present"))?,
                    aliased: d.u64().ok_or(FrameError::Malformed("truncated aliased"))?,
                }
            }
            RESP_STATUS => Response::Status {
                epoch: d.u64().ok_or(FrameError::Malformed("truncated epoch"))?,
                week: d.u64().ok_or(FrameError::Malformed("truncated week"))?,
                len: d.u64().ok_or(FrameError::Malformed("truncated len"))?,
                shard_count: d
                    .u32()
                    .ok_or(FrameError::Malformed("truncated shard count"))?,
                missing_shards: d
                    .u32_list()
                    .ok_or(FrameError::Malformed("truncated shard list"))?,
            },
            RESP_THROTTLED => Response::Throttled {
                retry_after_ms: d
                    .u32()
                    .ok_or(FrameError::Malformed("truncated retry hint"))?,
                class: d
                    .u8()
                    .and_then(ClientClass::from_u8)
                    .ok_or(FrameError::Malformed("bad client class"))?,
            },
            RESP_SHED => Response::Shed {
                reason: d
                    .u8()
                    .and_then(ShedReason::from_u8)
                    .ok_or(FrameError::Malformed("bad shed reason"))?,
            },
            RESP_ERROR => Response::Error {
                message: d
                    .name()
                    .ok_or(FrameError::Malformed("truncated error message"))?,
            },
            RESP_MOVED => {
                let epoch = d.u64().ok_or(FrameError::Malformed("truncated epoch"))?;
                let lagging = match d.u8().ok_or(FrameError::Malformed("truncated flag"))? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Malformed("lagging flag out of range")),
                };
                let n = d
                    .u32()
                    .ok_or(FrameError::Malformed("truncated move count"))?
                    as usize;
                if n > MAX_MOVED_ROWS {
                    return Err(FrameError::Malformed("moves exceed row cap"));
                }
                let mut moves = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    moves.push(WireMove {
                        mac: d.u64().ok_or(FrameError::Malformed("truncated move"))?,
                        from_net: d.u64().ok_or(FrameError::Malformed("truncated move"))?,
                        to_net: d.u64().ok_or(FrameError::Malformed("truncated move"))?,
                        week: d.u32().ok_or(FrameError::Malformed("truncated move"))?,
                    });
                }
                Response::Moved {
                    epoch,
                    lagging,
                    moves,
                }
            }
            RESP_ENTROPY_SHIFT => Response::EntropyShift {
                epoch: d.u64().ok_or(FrameError::Malformed("truncated epoch"))?,
                lagging: match d.u8().ok_or(FrameError::Malformed("truncated flag"))? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Malformed("lagging flag out of range")),
                },
                shift: dec_opt_week(&mut d).ok_or(FrameError::Malformed("truncated shift"))?,
            },
            other => return Err(FrameError::UnknownTag(other)),
        };
        if !d.is_exhausted() {
            return Err(FrameError::Malformed("trailing bytes after response"));
        }
        Ok((id, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let payload = req.encode(77);
        let (id, back) = Request::decode(&payload).expect("round trip");
        assert_eq!(id, 77);
        assert_eq!(back, req);
    }

    fn round_trip_resp(resp: Response) {
        let payload = resp.encode(0xdead_beef);
        let (id, back) = Response::decode(&payload).expect("round trip");
        assert_eq!(id, 0xdead_beef);
        assert_eq!(back, resp);
    }

    #[test]
    fn every_request_variant_round_trips() {
        round_trip_req(Request::Ping);
        round_trip_req(Request::Membership {
            addr: 0x2001 << 112,
        });
        round_trip_req(Request::MembershipUnaliased { addr: 7 });
        round_trip_req(Request::Lookup { addr: u128::MAX });
        round_trip_req(Request::Density {
            prefix: Prefix::from_bits(0x2001_0db8u128 << 96, 48),
        });
        round_trip_req(Request::NewSince { week: 12 });
        round_trip_req(Request::Batch {
            addrs: vec![1, 2, 3, u128::MAX],
        });
        round_trip_req(Request::Status);
        round_trip_req(Request::MovedBetween { w0: 3, w1: 9 });
        round_trip_req(Request::EntropyShift {
            as_index: 17,
            w0: 0,
            w1: u32::MAX,
        });
    }

    #[test]
    fn every_response_variant_round_trips() {
        round_trip_resp(Response::Pong);
        round_trip_resp(Response::Bool { value: true });
        round_trip_resp(Response::Lookup {
            epoch: 3,
            answer: WireLookup {
                present: true,
                first_week: Some(5),
                alias: Some(Prefix::from_bits(0x2001u128 << 112, 32)),
                degraded: false,
            },
        });
        round_trip_resp(Response::Count { epoch: 2, value: 9 });
        round_trip_resp(Response::Batch {
            epoch: 4,
            missing_shards: vec![1, 3],
            answers: vec![
                WireLookup {
                    present: false,
                    first_week: None,
                    alias: None,
                    degraded: true,
                },
                WireLookup {
                    present: true,
                    first_week: Some(0),
                    alias: None,
                    degraded: false,
                },
            ],
            present: 1,
            aliased: 0,
        });
        round_trip_resp(Response::Status {
            epoch: 9,
            week: 4,
            len: 120,
            shard_count: 16,
            missing_shards: vec![2],
        });
        round_trip_resp(Response::Throttled {
            retry_after_ms: 250,
            class: ClientClass::Flood,
        });
        round_trip_resp(Response::Shed {
            reason: ShedReason::GlobalOverload,
        });
        round_trip_resp(Response::Error {
            message: "week out of range".to_string(),
        });
        round_trip_resp(Response::Moved {
            epoch: 12,
            lagging: true,
            moves: vec![
                WireMove {
                    mac: 0x0050_56ab_cdef,
                    from_net: 0x2001_0db8_0001_0000,
                    to_net: 0x2001_0db8_0002_0000,
                    week: 6,
                },
                WireMove {
                    mac: u64::MAX,
                    from_net: 0,
                    to_net: u64::MAX,
                    week: u32::MAX,
                },
            ],
        });
        round_trip_resp(Response::Moved {
            epoch: 0,
            lagging: false,
            moves: Vec::new(),
        });
        round_trip_resp(Response::EntropyShift {
            epoch: 12,
            lagging: false,
            shift: Some(417),
        });
        round_trip_resp(Response::EntropyShift {
            epoch: 12,
            lagging: true,
            shift: None,
        });
    }

    #[test]
    fn oversized_move_counts_are_rejected() {
        let mut e = Enc::new();
        e.u8(super::RESP_MOVED);
        e.u64(1);
        e.u64(9);
        e.u8(0);
        e.u32(MAX_MOVED_ROWS as u32 + 1);
        assert!(matches!(
            Response::decode(&e.into_bytes()),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_typed_errors() {
        let mut payload = Request::Ping.encode(1);
        payload[0] = 0x40;
        assert_eq!(Request::decode(&payload), Err(FrameError::UnknownTag(0x40)));

        let mut trailing = Request::Ping.encode(1);
        trailing.push(0);
        assert!(matches!(
            Request::decode(&trailing),
            Err(FrameError::Malformed(_))
        ));

        assert!(matches!(
            Response::decode(&[0x82]),
            Err(FrameError::Malformed(_))
        ));
    }
}
