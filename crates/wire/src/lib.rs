//! # v6wire — the hitlist service front door
//!
//! The paper's own warning — *be careful what you wish for* — applies
//! to the service as much as to the hitlist: publish a queryable IPv6
//! hitlist at scale and the first heavy users are scanners and query
//! floods. ROADMAP item 3 therefore asks for a real front door, not an
//! in-process API. This crate is that front door, built sans-io so the
//! whole thing — handshake, framing, admission, abuse defense — runs
//! deterministically in tests with no sockets.
//!
//! Layers, bottom up:
//!
//! - [`frame`] — wire format v1: the `V6WIRE1` preamble and
//!   length-prefixed FNV-checksummed frames, with an incremental
//!   decoder hardened against arbitrary bytes (never panics, never
//!   over-allocates; see the fuzz battery in `tests/fuzz_codec.rs`).
//! - [`proto`] — the typed request/response codec covering every
//!   `v6serve` query type plus batch coalescing, and the explicit
//!   `Throttled` / `Shed` / `Error` verdict frames. The byte layout is
//!   pinned by `tests/golden/wire_format_v1/`.
//! - [`transport`] — the in-repo socket stand-in: [`transport::duplex`]
//!   byte pipes plus [`transport::ChaosTransport`] injecting seeded
//!   loss, corruption, and stalls at `wire.*` fault sites.
//! - [`admit`] — per-client token buckets, a global load-shedding
//!   budget, and the behavioral classifier (steady poller / burst
//!   scraper / query flood) that adapts throttle tiers.
//! - [`conn`] / [`server`] / [`client`] — the per-connection state
//!   machine, the shared server (one admission gate + `wire.*` metrics
//!   registry), and the matching client.
//!
//! Invariants the test battery pins:
//!
//! * every decoded request gets exactly one response frame — sheds and
//!   throttles are explicit labeled frames, never silent drops;
//! * a flooding client is contained by its own throttle tier before it
//!   can drain the shared budget, so steady pollers see zero sheds;
//! * all requests decoded from one inbound chunk are answered against
//!   one snapshot epoch;
//! * degraded epochs label every affected answer (`degraded`,
//!   `missing_shards`) across the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admit;
pub mod client;
pub mod conn;
pub mod frame;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod transport;

pub use admit::{Admission, AdmissionConfig, AdmitDecision, ClientClass, ClientInfo};
pub use client::{WireClient, WireClientError};
pub use conn::{serve_request, serve_request_with, ConnOutput, ServerConn};
pub use frame::{FrameDecoder, FrameError, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION};
pub use metrics::WireMetrics;
pub use proto::{
    Request, Response, ShedReason, WireLookup, WireMove, MAX_BATCH_ADDRS, MAX_MOVED_ROWS,
};
pub use server::WireServer;
pub use transport::{duplex, ChaosTransport, PipeTransport, Transport, TransportError};
