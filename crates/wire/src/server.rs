//! The front-door server: one admission gate + metrics registry shared
//! by every connection, bound to a `v6serve` query engine.

use std::sync::Arc;

use parking_lot::Mutex;
use v6serve::QueryEngine;

use crate::admit::{Admission, AdmissionConfig, AdmitDecision, ClientClass, ClientInfo};
use crate::conn::ServerConn;
use crate::metrics::WireMetrics;

/// The shared front door over one hitlist store.
///
/// Connections ([`WireServer::open_connection`]) are cheap: they share
/// this server's admission gate and metrics, so a client's behavioral
/// class follows it across reconnects (identified by `client_id`).
pub struct WireServer {
    engine: QueryEngine,
    admission: Mutex<Admission>,
    metrics: Arc<WireMetrics>,
}

impl WireServer {
    /// A server over `engine`, with admission starting at `start_us`.
    pub fn new(engine: QueryEngine, cfg: AdmissionConfig, start_us: u64) -> Arc<Self> {
        Arc::new(WireServer {
            engine,
            admission: Mutex::new(Admission::new(cfg, start_us)),
            metrics: Arc::new(WireMetrics::new()),
        })
    }

    /// Opens a connection for the client identified by `client_id`
    /// (the stand-in for a peer address).
    pub fn open_connection(self: &Arc<Self>, client_id: u64) -> ServerConn {
        ServerConn::new(Arc::clone(self), client_id)
    }

    /// The query engine answering admitted requests.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The front-door metrics (`wire.*`).
    pub fn metrics(&self) -> &Arc<WireMetrics> {
        &self.metrics
    }

    /// One admission decision (used by connections; exposed for tests
    /// driving admission without a byte stream).
    pub fn admit(&self, client_id: u64, now_us: u64) -> AdmitDecision {
        self.admission.lock().admit(client_id, now_us)
    }

    /// The behavioral class currently assigned to a client.
    pub fn client_class(&self, client_id: u64) -> Option<ClientClass> {
        self.admission
            .lock()
            .client_info(client_id)
            .map(|i| i.class)
    }

    /// Full classifier state for a client (tests assert how fast a
    /// flooder was classified).
    pub fn client_info(&self, client_id: u64) -> Option<ClientInfo> {
        self.admission.lock().client_info(client_id)
    }
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("tracked_clients", &self.admission.lock().tracked_clients())
            .finish_non_exhaustive()
    }
}
