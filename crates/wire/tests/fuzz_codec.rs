//! Codec fuzz battery (ISSUE 8, satellite 1).
//!
//! The decoder is the service's first line against untrusted bytes, so
//! these properties are the crate's core hardening contract:
//!
//! * **No panics** — arbitrary bytes, arbitrary chunking, truncations
//!   at every offset, bit flips anywhere: the decoder returns frames or
//!   a typed [`FrameError`], never panics.
//! * **Bounded allocation** — the decoder's buffer never exceeds
//!   [`FrameDecoder::MAX_BUFFERED`] (one maximal frame); oversized
//!   length prefixes are rejected before any buffering toward them.
//! * **Round-trip identity** — every request/response variant encodes
//!   and decodes back to itself, through framing, for arbitrary field
//!   values.

use proptest::prelude::*;
use v6addr::Prefix;
use v6wire::frame::{frame, FrameDecoder, FRAME_OVERHEAD, MAX_FRAME_PAYLOAD};
use v6wire::proto::{Request, Response, ShedReason, WireLookup};
use v6wire::{ClientClass, FrameError};

/// Drives a decoder over `stream` in `chunk`-sized pieces, asserting
/// the allocation bound the whole way; returns decoded payloads until
/// the first error.
fn feed_chunked(stream: &[u8], chunk: usize) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    for piece in stream.chunks(chunk.max(1)) {
        out.extend(dec.feed(piece)?);
        assert!(
            dec.buffered() <= FrameDecoder::MAX_BUFFERED,
            "decoder buffered {} bytes (cap {})",
            dec.buffered(),
            FrameDecoder::MAX_BUFFERED
        );
    }
    Ok(out)
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_or_overallocate(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..257,
    ) {
        // Whatever the bytes are, feeding them is safe and bounded;
        // the Result is allowed to be either variant.
        let _ = feed_chunked(&bytes, chunk);
    }

    #[test]
    fn truncated_valid_streams_never_error(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        extra in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        // A valid frame followed by another valid frame, cut at EVERY
        // offset: a prefix of a valid stream is incomplete, not
        // corrupt.
        let mut stream = frame(&payload);
        stream.extend_from_slice(&frame(&extra));
        for cut in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let got = dec.feed(&stream[..cut]).expect("prefix must not error");
            prop_assert!(got.len() <= 2);
            prop_assert!(dec.buffered() <= FrameDecoder::MAX_BUFFERED);
        }
    }

    #[test]
    fn bit_flips_are_caught_not_panicked(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let clean = frame(&payload);
        let mut rotten = clean.clone();
        let pos = flip_byte % rotten.len();
        rotten[pos] ^= 1 << flip_bit;
        let mut dec = FrameDecoder::new();
        match dec.feed(&rotten) {
            // A flip in the length prefix can make the frame look
            // incomplete (fewer declared bytes than sent arrive as a
            // short frame plus garbage, or more declared bytes than
            // sent just wait) — but a COMPLETE decode of the original
            // payload means the flip went undetected.
            Ok(frames) => {
                for f in frames {
                    prop_assert_ne!(
                        f, payload.clone(),
                        "bit flip at byte {} bit {} slipped through", pos, flip_bit
                    );
                }
            }
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    FrameError::BadChecksum | FrameError::Oversized { .. }
                ));
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering(
        declared in (MAX_FRAME_PAYLOAD + 1)..=u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = declared.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        let mut dec = FrameDecoder::new();
        prop_assert_eq!(dec.feed(&bytes), Err(FrameError::Oversized { declared }));
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn request_round_trip_through_framing(
        addr in any::<u128>(),
        week in any::<u64>(),
        prefix_len in 0u8..=128,
        addrs in prop::collection::vec(any::<u128>(), 0..64),
        id in any::<u64>(),
        chunk in 1usize..64,
    ) {
        let requests = vec![
            Request::Ping,
            Request::Membership { addr },
            Request::MembershipUnaliased { addr },
            Request::Lookup { addr },
            Request::Density { prefix: Prefix::from_bits(addr, prefix_len) },
            Request::NewSince { week },
            Request::Batch { addrs },
            Request::Status,
        ];
        let mut stream = Vec::new();
        for req in &requests {
            stream.extend_from_slice(&frame(&req.encode(id)));
        }
        let payloads = feed_chunked(&stream, chunk).expect("valid stream");
        prop_assert_eq!(payloads.len(), requests.len());
        for (payload, req) in payloads.iter().zip(&requests) {
            let (got_id, got) = Request::decode(payload).expect("decodes");
            prop_assert_eq!(got_id, id);
            prop_assert_eq!(&got, req);
        }
    }

    #[test]
    fn response_round_trip_through_framing(
        epoch in any::<u64>(),
        value in any::<u64>(),
        alias_bits in any::<u128>(),
        alias_len in 0u8..=128,
        first_week in any::<u32>(),
        shards in prop::collection::vec(any::<u32>(), 0..8),
        retry in any::<u32>(),
        id in any::<u64>(),
    ) {
        let answer = WireLookup {
            present: true,
            first_week: Some(first_week),
            alias: Some(Prefix::from_bits(alias_bits, alias_len)),
            degraded: epoch.is_multiple_of(2),
        };
        let absent = WireLookup {
            present: false,
            first_week: None,
            alias: None,
            degraded: false,
        };
        let responses = vec![
            Response::Pong,
            Response::Bool { value: value.is_multiple_of(2) },
            Response::Lookup { epoch, answer },
            Response::Count { epoch, value },
            Response::Batch {
                epoch,
                missing_shards: shards.clone(),
                answers: vec![answer, absent],
                present: 1,
                aliased: 1,
            },
            Response::Status {
                epoch,
                week: value,
                len: value,
                shard_count: retry % 64,
                missing_shards: shards,
            },
            Response::Throttled { retry_after_ms: retry, class: ClientClass::Burst },
            Response::Shed { reason: ShedReason::GlobalOverload },
            Response::Error { message: format!("e{epoch}") },
        ];
        for resp in &responses {
            let framed = frame(&resp.encode(id));
            let mut dec = FrameDecoder::new();
            let payloads = dec.feed(&framed).expect("valid frame");
            prop_assert_eq!(payloads.len(), 1);
            let (got_id, got) = Response::decode(&payloads[0]).expect("decodes");
            prop_assert_eq!(got_id, id);
            prop_assert_eq!(&got, resp);
        }
    }

    #[test]
    fn arbitrary_payloads_decode_to_typed_errors(
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // A checksum-valid frame around garbage must yield a typed
        // error (or a real request, if the bytes happen to parse) —
        // never a panic, never an over-allocation.
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }

    #[test]
    fn truncated_payloads_of_real_requests_error_cleanly(
        addrs in prop::collection::vec(any::<u128>(), 1..16),
        id in any::<u64>(),
    ) {
        let full = Request::Batch { addrs }.encode(id);
        for cut in 0..full.len() {
            let res = Request::decode(&full[..cut]);
            prop_assert!(res.is_err(), "truncation at {} parsed", cut);
        }
    }
}

#[test]
fn max_buffered_is_one_frame() {
    // The documented bound really is one maximal frame.
    assert_eq!(
        FrameDecoder::MAX_BUFFERED,
        MAX_FRAME_PAYLOAD as usize + FRAME_OVERHEAD
    );
}
