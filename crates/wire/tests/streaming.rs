//! Windowed streaming-analytics queries over the wire (this PR's
//! tentpole, serve/wire layer): `MovedBetween` and `EntropyShift`
//! travel as first-class frames, answered from the server's attached
//! [`v6serve::StreamAnalytics`] — and get a labeled `Error` frame
//! (never a silent drop or a close) from a server running without
//! streaming analytics.

use std::sync::Arc;

use v6serve::{analytics_for, HitlistStore, QueryEngine, SnapshotBuilder};
use v6stream::{country_code, AsTag, PrefixAsTable, SharedResolver};
use v6wire::proto::{Request, Response};
use v6wire::transport::duplex;
use v6wire::{serve_request, AdmissionConfig, WireClient, WireServer};

fn resolver() -> SharedResolver {
    Arc::new(PrefixAsTable::new(vec![(
        0x2001_0db8u128 << 96,
        32,
        AsTag {
            index: 1,
            country: country_code(*b"DE"),
        },
    )]))
}

fn eui_addr(subnet: u64, mac: u64) -> u128 {
    let iid = v6addr::Iid::from_mac(v6addr::Mac::from_u64(mac));
    (0x2001_0db8u128 << 96) | (u128::from(subnet) << 64) | u128::from(iid.as_u64())
}

fn store_with_move() -> Arc<HitlistStore> {
    let store = Arc::new(HitlistStore::new("front", 4));
    let mut b = SnapshotBuilder::new("front", 4).with_bloom(false);
    let mac = 0x0050_56ab_cdef;
    b.add_bits(eui_addr(1, mac), 1);
    b.add_bits(eui_addr(2, mac), 5);
    for i in 0..8u128 {
        b.add_bits(
            (0x2001_0db8u128 << 96) | (3 << 64) | (0x9e37_79b9 * (i + 1)),
            1,
        );
        b.add_bits((0x2001_0db8u128 << 96) | (4 << 64) | (i + 4), 5);
    }
    store.publish(b.build()).unwrap();
    store
}

#[test]
fn windowed_queries_answer_over_the_wire() {
    let store = store_with_move();
    let analytics = analytics_for(&store, resolver());
    let engine = QueryEngine::new(Arc::clone(&store)).with_analytics(analytics);
    let server = WireServer::new(engine, AdmissionConfig::default(), 0);

    let (client_end, mut server_end) = duplex();
    let mut client = WireClient::connect(client_end, 0).unwrap();
    let mut conn = server.open_connection(7);

    client
        .send(&Request::MovedBetween { w0: 2, w1: 6 }, 0)
        .unwrap();
    conn.pump(&mut server_end, 0).unwrap();
    let resps = client.poll(0).unwrap();
    assert_eq!(resps.len(), 1);
    match &resps[0].1 {
        Response::Moved {
            epoch,
            lagging,
            moves,
        } => {
            assert_eq!(*epoch, store.snapshot().epoch());
            assert!(!lagging);
            assert_eq!(moves.len(), 1);
            assert_eq!(moves[0].mac, 0x0050_56ab_cdef);
            assert_eq!(moves[0].week, 5);
            assert_ne!(moves[0].from_net, moves[0].to_net);
        }
        other => panic!("expected Moved, got {other:?}"),
    }

    client
        .send(
            &Request::EntropyShift {
                as_index: 1,
                w0: 2,
                w1: 6,
            },
            1_000,
        )
        .unwrap();
    conn.pump(&mut server_end, 1_000).unwrap();
    let resps = client.poll(1_000).unwrap();
    assert_eq!(resps.len(), 1);
    match &resps[0].1 {
        Response::EntropyShift { lagging, shift, .. } => {
            assert!(!lagging);
            assert!(shift.is_some(), "both window sides are populated");
        }
        other => panic!("expected EntropyShift, got {other:?}"),
    }
    assert!(!conn.is_closed(), "windowed queries are ordinary traffic");
}

#[test]
fn servers_without_analytics_answer_with_labeled_errors() {
    let store = store_with_move();
    let snap = store.snapshot();
    // The pure dispatch path: no analytics → typed Error, not a panic.
    for req in [
        Request::MovedBetween { w0: 0, w1: 9 },
        Request::EntropyShift {
            as_index: 1,
            w0: 0,
            w1: 9,
        },
    ] {
        match serve_request(&snap, req) {
            Response::Error { message } => {
                assert!(message.contains("streaming analytics"), "got: {message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    // And over real wire bytes the connection stays open.
    let engine = QueryEngine::new(store);
    let server = WireServer::new(engine, AdmissionConfig::default(), 0);
    let (client_end, mut server_end) = duplex();
    let mut client = WireClient::connect(client_end, 0).unwrap();
    let mut conn = server.open_connection(9);
    client
        .send(&Request::MovedBetween { w0: 0, w1: 9 }, 0)
        .unwrap();
    conn.pump(&mut server_end, 0).unwrap();
    let resps = client.poll(0).unwrap();
    assert!(matches!(resps[0].1, Response::Error { .. }));
    assert!(!conn.is_closed());
}
