//! Golden-file test pinning wire format v1 byte-for-byte (ISSUE 8,
//! satellite 2).
//!
//! The fixture under `tests/golden/wire_format_v1/` (repo root) holds
//! two byte streams — `requests.bin` (the client preamble followed by
//! one framed instance of every request variant) and `responses.bin`
//! (the server preamble followed by one framed instance of every
//! response variant, including the `Throttled`/`Shed`/`Error` verdict
//! frames) — with fixed field values. Any change to the preamble, frame
//! layout, tags, field order, or checksum shows up as a byte diff here
//! and fails CI instead of silently breaking deployed peers.
//!
//! To regenerate after an *intentional* protocol-version bump:
//!
//! ```sh
//! V6WIRE_REGEN_GOLDEN=1 cargo test -p v6wire --test golden_wire
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use v6addr::Prefix;
use v6wire::frame::{frame, preamble, FrameDecoder, PREAMBLE_LEN};
use v6wire::proto::{Request, Response, ShedReason, WireLookup, WireMove};
use v6wire::ClientClass;

const FIXTURE_FILES: [&str; 2] = ["requests.bin", "responses.bin"];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/wire_format_v1")
}

/// Every request variant with fixed field values, in tag order.
fn fixture_requests() -> Vec<(u64, Request)> {
    let base: u128 = 0x2001_0db8 << 96;
    vec![
        (1, Request::Ping),
        (2, Request::Membership { addr: base | 0x11 }),
        (3, Request::MembershipUnaliased { addr: base | 0x22 }),
        (4, Request::Lookup { addr: base | 0x33 }),
        (
            5,
            Request::Density {
                prefix: Prefix::from_bits(base, 48),
            },
        ),
        (6, Request::NewSince { week: 7 }),
        (
            7,
            Request::Batch {
                addrs: vec![base | 1, base | 2, base | 3],
            },
        ),
        (8, Request::Status),
        (9, Request::MovedBetween { w0: 3, w1: 9 }),
        (
            10,
            Request::EntropyShift {
                as_index: 17,
                w0: 3,
                w1: 9,
            },
        ),
    ]
}

/// Every response variant with fixed field values, in tag order.
fn fixture_responses() -> Vec<(u64, Response)> {
    let base: u128 = 0x2001_0db8 << 96;
    let hit = WireLookup {
        present: true,
        first_week: Some(3),
        alias: Some(Prefix::from_bits(base, 48)),
        degraded: false,
    };
    let miss = WireLookup {
        present: false,
        first_week: None,
        alias: None,
        degraded: true,
    };
    vec![
        (1, Response::Pong),
        (2, Response::Bool { value: true }),
        (
            4,
            Response::Lookup {
                epoch: 9,
                answer: hit,
            },
        ),
        (
            5,
            Response::Count {
                epoch: 9,
                value: 1_234,
            },
        ),
        (
            7,
            Response::Batch {
                epoch: 9,
                missing_shards: vec![1, 3],
                answers: vec![hit, miss],
                present: 1,
                aliased: 1,
            },
        ),
        (
            8,
            Response::Status {
                epoch: 9,
                week: 7,
                len: 42_000,
                shard_count: 16,
                missing_shards: vec![1, 3],
            },
        ),
        (
            9,
            Response::Throttled {
                retry_after_ms: 250,
                class: ClientClass::Flood,
            },
        ),
        (
            10,
            Response::Shed {
                reason: ShedReason::GlobalOverload,
            },
        ),
        (
            11,
            Response::Error {
                message: "golden error".to_string(),
            },
        ),
        (
            12,
            Response::Moved {
                epoch: 9,
                lagging: false,
                moves: vec![WireMove {
                    mac: 0x0050_56ab_cdef,
                    from_net: 0x2001_0db8_0001_0000,
                    to_net: 0x2001_0db8_0002_0000,
                    week: 6,
                }],
            },
        ),
        (
            13,
            Response::EntropyShift {
                epoch: 9,
                lagging: true,
                shift: Some(417),
            },
        ),
    ]
}

fn build_request_stream() -> Vec<u8> {
    let mut out = preamble().to_vec();
    for (id, req) in fixture_requests() {
        out.extend_from_slice(&frame(&req.encode(id)));
    }
    out
}

fn build_response_stream() -> Vec<u8> {
    let mut out = preamble().to_vec();
    for (id, resp) in fixture_responses() {
        out.extend_from_slice(&frame(&resp.encode(id)));
    }
    out
}

#[test]
fn wire_format_matches_golden_fixture() {
    let streams = [
        ("requests.bin", build_request_stream()),
        ("responses.bin", build_response_stream()),
    ];
    let golden = golden_dir();

    if std::env::var("V6WIRE_REGEN_GOLDEN").is_ok() {
        fs::create_dir_all(&golden).unwrap();
        for (name, bytes) in &streams {
            fs::write(golden.join(name), bytes).unwrap();
        }
        panic!("golden fixture regenerated under {golden:?}; rerun without V6WIRE_REGEN_GOLDEN");
    }

    for (name, bytes) in &streams {
        let want = fs::read(golden.join(name)).unwrap_or_else(|e| {
            panic!("missing golden file {name} ({e}); regenerate with V6WIRE_REGEN_GOLDEN=1")
        });
        assert_eq!(
            bytes, &want,
            "{name} bytes diverged from wire-format-v1 golden — if the protocol change is \
             intentional, bump PROTOCOL_VERSION and regenerate"
        );
    }
    let _ = FIXTURE_FILES; // pinned name list, used by the parse test below
}

#[test]
fn golden_fixture_still_parses() {
    // Decoding the *committed* fixture (not freshly encoded bytes)
    // proves today's decoder still understands yesterday's peers.
    let golden = golden_dir();
    let req_bytes = fs::read(golden.join("requests.bin"))
        .expect("missing requests.bin; regenerate with V6WIRE_REGEN_GOLDEN=1");
    let resp_bytes = fs::read(golden.join("responses.bin"))
        .expect("missing responses.bin; regenerate with V6WIRE_REGEN_GOLDEN=1");

    for (bytes, expect_requests) in [(req_bytes, true), (resp_bytes, false)] {
        let head: [u8; PREAMBLE_LEN] = bytes[..PREAMBLE_LEN].try_into().unwrap();
        v6wire::frame::check_preamble(&head).expect("golden preamble validates");
        let mut dec = FrameDecoder::new();
        let payloads = dec
            .feed(&bytes[PREAMBLE_LEN..])
            .expect("golden frames decode");
        assert_eq!(dec.buffered(), 0, "golden stream has a partial tail");
        if expect_requests {
            let want = fixture_requests();
            assert_eq!(payloads.len(), want.len());
            for (payload, (id, req)) in payloads.iter().zip(want) {
                assert_eq!(
                    Request::decode(payload).expect("request decodes"),
                    (id, req)
                );
            }
        } else {
            let want = fixture_responses();
            assert_eq!(payloads.len(), want.len());
            for (payload, (id, resp)) in payloads.iter().zip(want) {
                assert_eq!(
                    Response::decode(payload).expect("response decodes"),
                    (id, resp)
                );
            }
        }
    }
}
