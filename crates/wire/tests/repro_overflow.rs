use std::net::Ipv6Addr;
use v6addr::Prefix;
use v6serve::SnapshotBuilder;
use v6wire::conn::serve_request;
use v6wire::frame::frame;
use v6wire::proto::{Request, MAX_BATCH_ADDRS};

#[test]
fn batch_response_fits_frame_cap() {
    let mut b = SnapshotBuilder::new("t", 1);
    let a: u128 = 0x2001_0db8u128 << 96 | 1;
    b.add_address(Ipv6Addr::from(a), 3);
    b.add_alias(Prefix::from_bits(0x2001_0db8u128 << 96, 48), 3);
    let snap = b.build();
    let addrs = vec![a; MAX_BATCH_ADDRS];
    let resp = serve_request(&snap, Request::Batch { addrs });
    let payload = resp.encode(1);
    println!("payload len = {}", payload.len());
    let _ = frame(&payload); // panics if > MAX_FRAME_PAYLOAD
}
