//! Adversarial-scenario integration tests (ISSUE 8, satellite 3):
//! abusive and well-behaved clients sharing one front door, driven over
//! real wire bytes on simulated time.
//!
//! The fairness contract under attack:
//!
//! * steady pollers keep getting answers — **zero** `Throttled`/`Shed`
//!   frames for them while a flooder hammers the same server;
//! * the flooder is classified `Flood` within a bounded number of
//!   frames and throttled from then on;
//! * every request that reaches the server yields exactly one response
//!   frame — sheds and throttles are explicit, nothing is silently
//!   dropped;
//! * degraded epochs label every affected answer across the wire.

use std::net::Ipv6Addr;
use std::sync::Arc;

use v6serve::{HitlistStore, QueryEngine, SnapshotBuilder};
use v6wire::proto::{Request, Response};
use v6wire::transport::duplex;
use v6wire::{AdmissionConfig, ClientClass, ServerConn, WireClient, WireServer};

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

fn engine(quarantined: Vec<u32>) -> QueryEngine {
    let store = HitlistStore::new("front", 4);
    let mut b = SnapshotBuilder::new("front", 4).with_bloom(false);
    if !quarantined.is_empty() {
        b = b.with_quarantined(quarantined);
    }
    for i in 0..400u32 {
        // Third hextet = shard index (low /48 bits) for 4 shards.
        b.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 4, i + 1)), i % 5);
    }
    b.add_alias("2001:db8:3::/48".parse().unwrap(), 0);
    store.publish(b.build()).unwrap();
    QueryEngine::new(Arc::new(store))
}

fn test_config() -> AdmissionConfig {
    AdmissionConfig {
        client_rate_per_sec: 400,
        client_burst: 40,
        global_rate_per_sec: 50_000,
        global_burst: 5_000,
        max_clients: 64,
        window_us: 100_000,
        flood_rate_per_sec: 2_000,
        burst_ratio: 8,
        classify_min_frames: 16,
        quiet_windows_to_demote: 20,
        idle_windows_to_evict: 600,
    }
}

/// One scripted client: a wire client plus its server-side connection,
/// sending `rate_per_sec` membership probes on simulated time.
struct Actor {
    client: WireClient<v6wire::PipeTransport>,
    conn: ServerConn,
    server_end: v6wire::PipeTransport,
    interval_us: u64,
    next_send_us: u64,
    sent: u64,
    answers: u64,
    throttled: u64,
    shed: u64,
}

impl Actor {
    fn new(server: &Arc<WireServer>, client_id: u64, rate_per_sec: u64) -> Self {
        let (client_end, server_end) = duplex();
        Actor {
            client: WireClient::connect(client_end, 0).expect("connect"),
            conn: server.open_connection(client_id),
            server_end,
            interval_us: 1_000_000 / rate_per_sec.max(1),
            next_send_us: 0,
            sent: 0,
            answers: 0,
            throttled: 0,
            shed: 0,
        }
    }

    /// Advances to `now_us`: sends due requests, pumps the server,
    /// tallies responses by kind.
    fn step(&mut self, now_us: u64) {
        while self.next_send_us <= now_us {
            let probe = Request::Membership {
                addr: (0x2001_0db8u128 << 96) | u128::from(self.sent % 400 + 1),
            };
            self.client.send(&probe, now_us).expect("send");
            self.sent += 1;
            self.next_send_us += self.interval_us;
        }
        self.conn.pump(&mut self.server_end, now_us).expect("pump");
        for (_, resp) in self.client.poll(now_us).expect("poll") {
            match resp {
                Response::Throttled { .. } => self.throttled += 1,
                Response::Shed { .. } => self.shed += 1,
                _ => self.answers += 1,
            }
        }
    }

    fn responses(&self) -> u64 {
        self.answers + self.throttled + self.shed
    }
}

#[test]
fn steady_pollers_survive_a_query_flood_untouched() {
    let server = WireServer::new(engine(Vec::new()), test_config(), 0);
    // Three steady pollers at 100 req/s, one flooder at 20k req/s.
    let mut pollers: Vec<Actor> = (0..3).map(|i| Actor::new(&server, 10 + i, 100)).collect();
    let mut flooder = Actor::new(&server, 666, 20_000);

    // Two simulated seconds in 1 ms ticks.
    for tick in 0..2_000u64 {
        let now = tick * 1_000;
        flooder.step(now);
        for p in &mut pollers {
            p.step(now);
        }
    }
    let drain = 2_000_000;
    flooder.step(drain);
    for p in &mut pollers {
        p.step(drain);
    }

    // Steady pollers: every request answered, zero throttles, zero
    // sheds — the flood never touched them.
    for (i, p) in pollers.iter().enumerate() {
        assert!(p.sent >= 200, "poller {i} sent {}", p.sent);
        assert_eq!(p.responses(), p.sent, "poller {i} lost responses");
        assert_eq!(p.throttled, 0, "poller {i} was throttled");
        assert_eq!(p.shed, 0, "poller {i} was shed");
    }

    // The flooder: classified within 256 frames, overwhelmingly
    // throttled, and every one of its requests still got an explicit
    // response frame.
    let info = server.client_info(666).expect("flooder tracked");
    assert_eq!(info.class, ClientClass::Flood);
    let classified_at = info.classified_at_frame.expect("flooder classified");
    assert!(
        classified_at <= 256,
        "classified only at frame {classified_at}"
    );
    assert_eq!(flooder.responses(), flooder.sent, "silent drops");
    assert!(
        flooder.throttled > flooder.sent * 9 / 10,
        "flood not contained: {} throttled of {}",
        flooder.throttled,
        flooder.sent
    );

    // Metrics tell the same story.
    let snap = server.metrics().registry().snapshot();
    assert_eq!(
        snap.counter("wire.admit.throttled"),
        Some(flooder.throttled)
    );
    assert!(snap.counter("wire.admit.throttled.flood").unwrap() > 0);
    assert_eq!(snap.counter("wire.admit.shed"), Some(0));
    assert_eq!(
        snap.counter("wire.admit.admitted"),
        Some(pollers.iter().map(|p| p.answers).sum::<u64>() + flooder.answers)
    );
    // Admitted traffic landed in the per-class latency histograms.
    assert!(server.metrics().latency_count(ClientClass::Steady) > 0);
    assert!(server.metrics().p99_ns(ClientClass::Steady) > 0);
}

#[test]
fn burst_scraper_is_classified_and_tiered() {
    let server = WireServer::new(engine(Vec::new()), test_config(), 0);
    let mut scraper = Actor::new(&server, 42, 100);
    // Quiet background, then dense bursts: 1 window of 150 requests
    // every 8 windows (mean ≈ 19/window, peak 150 ⇒ ratio ≈ 8).
    let mut now = 0u64;
    for _cycle in 0..12u64 {
        // Burst: 150 requests packed into 10 ms.
        for i in 0..150u64 {
            let t = now + i * 66;
            scraper
                .client
                .send(
                    &Request::Membership {
                        addr: (0x2001_0db8u128 << 96) | u128::from(i + 1),
                    },
                    t,
                )
                .expect("send");
            scraper.sent += 1;
            scraper.conn.pump(&mut scraper.server_end, t).expect("pump");
            for (_, resp) in scraper.client.poll(t).expect("poll") {
                match resp {
                    Response::Throttled { .. } => scraper.throttled += 1,
                    Response::Shed { .. } => scraper.shed += 1,
                    _ => scraper.answers += 1,
                }
            }
        }
        // Then 7 quiet windows.
        now += 8 * 100_000;
    }
    scraper.next_send_us = u64::MAX; // stop the step() auto-sender
    scraper.step(now);

    let info = server.client_info(42).expect("scraper tracked");
    assert!(
        info.class >= ClientClass::Burst,
        "scraper stayed {:?}",
        info.class
    );
    assert!(scraper.throttled > 0, "burst tier never engaged");
    assert_eq!(scraper.responses(), scraper.sent, "silent drops");
}

#[test]
fn degraded_epochs_are_labeled_across_the_wire() {
    // Shard 2 quarantined: every answer touching it must say so.
    let server = WireServer::new(engine(vec![2]), test_config(), 0);
    let mut conn = server.open_connection(7);
    let (client_end, mut server_end) = duplex();
    let mut client = WireClient::connect(client_end, 0).expect("connect");

    let in_missing = addr("2001:db8:2::3"); // shard 2, present
    let healthy = addr("2001:db8:1::2"); // shard 1, present
    client
        .send(
            &Request::Lookup {
                addr: u128::from(in_missing),
            },
            0,
        )
        .unwrap();
    client
        .send(
            &Request::Lookup {
                addr: u128::from(healthy),
            },
            0,
        )
        .unwrap();
    client
        .send(
            &Request::Batch {
                addrs: vec![u128::from(in_missing), u128::from(healthy)],
            },
            0,
        )
        .unwrap();
    client.send(&Request::Status, 0).unwrap();
    conn.pump(&mut server_end, 0).expect("pump");
    let responses = client.poll(0).expect("poll");
    assert_eq!(responses.len(), 4);

    match &responses[0].1 {
        Response::Lookup { answer, .. } => {
            assert!(answer.present);
            assert!(answer.degraded, "quarantined-shard lookup not labeled");
        }
        other => panic!("unexpected {other:?}"),
    }
    match &responses[1].1 {
        Response::Lookup { answer, .. } => {
            assert!(answer.present);
            assert!(!answer.degraded, "healthy-shard lookup mislabeled");
        }
        other => panic!("unexpected {other:?}"),
    }
    match &responses[2].1 {
        Response::Batch {
            missing_shards,
            answers,
            ..
        } => {
            assert_eq!(missing_shards, &vec![2]);
            assert!(answers[0].degraded);
            assert!(!answers[1].degraded);
        }
        other => panic!("unexpected {other:?}"),
    }
    match &responses[3].1 {
        Response::Status { missing_shards, .. } => {
            assert_eq!(missing_shards, &vec![2]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn pings_survive_throttling_and_chunk_shares_one_epoch() {
    let server = WireServer::new(
        engine(Vec::new()),
        AdmissionConfig {
            client_rate_per_sec: 1,
            client_burst: 2,
            ..test_config()
        },
        0,
    );
    let mut conn = server.open_connection(1);
    let (client_end, mut server_end) = duplex();
    let mut client = WireClient::connect(client_end, 0).expect("connect");

    // Exhaust the 2-token bucket, then interleave pings: the third
    // lookup is throttled, the pings still answer.
    for _ in 0..3 {
        client
            .send(
                &Request::Lookup {
                    addr: 0x2001 << 112,
                },
                0,
            )
            .unwrap();
        client.send(&Request::Ping, 0).unwrap();
    }
    conn.pump(&mut server_end, 0).expect("pump");
    let responses = client.poll(0).expect("poll");
    assert_eq!(responses.len(), 6);
    let pongs = responses
        .iter()
        .filter(|(_, r)| matches!(r, Response::Pong))
        .count();
    assert_eq!(pongs, 3, "pings must bypass admission");
    let throttles = responses
        .iter()
        .filter(|(_, r)| matches!(r, Response::Throttled { .. }))
        .count();
    assert_eq!(throttles, 1, "third lookup must hit the empty bucket");
    let mut epochs: Vec<u64> = responses
        .iter()
        .filter_map(|(_, r)| match r {
            Response::Lookup { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .collect();
    assert_eq!(epochs.len(), 2, "two lookups admitted");
    epochs.dedup();
    assert_eq!(epochs.len(), 1, "one chunk must resolve one epoch");
}
