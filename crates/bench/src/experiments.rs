//! One generator per paper table/figure.
//!
//! Every function takes the completed [`Experiment`] and returns
//! `(human-readable text, paper-vs-measured records)`. Absolute numbers
//! differ from the paper by the world scale factor; the records assert
//! the *shape* — orderings, ratios, directions — that the paper reports.

use v6addr::pattern::AddressClass;
use v6hitlist::analysis::compare::table1 as compute_table1;
use v6hitlist::analysis::entropy_dist::{figure1, figure4};
use v6hitlist::analysis::lifetime::{address_lifetimes, iid_lifetimes};
use v6hitlist::analysis::patterns::figure5;
use v6hitlist::analysis::tracking::{exemplars, TrackClass};
use v6hitlist::report::{fmt_count, render_series, ExperimentRecord};
use v6hitlist::{Experiment, Release48};
use v6netsim::Country;

type Output = (String, Vec<ExperimentRecord>);

fn rec(
    exp: &str,
    metric: &str,
    paper: impl Into<String>,
    measured: impl Into<String>,
    ok: bool,
    note: &str,
) -> ExperimentRecord {
    ExperimentRecord::new(exp, metric, paper, measured, ok, note)
}

/// Table 1: dataset comparison.
pub fn table1(e: &Experiment) -> Output {
    let t = compute_table1(&e.world, &e.ntp, &[&e.hitlist.dataset, &e.caida.dataset]);
    let ntp = &t.rows[0];
    let hl = &t.rows[1];
    let ca = &t.rows[2];
    let addr_ratio_hl = ntp.addresses as f64 / hl.addresses.max(1) as f64;
    let addr_ratio_ca = ntp.addresses as f64 / ca.addresses.max(1) as f64;
    let mut records = vec![
        rec(
            "Table 1",
            "NTP addresses / Hitlist addresses",
            "7.9B / 21.4M ≈ 370x",
            format!(
                "{} / {} ≈ {:.0}x",
                fmt_count(ntp.addresses),
                fmt_count(hl.addresses),
                addr_ratio_hl
            ),
            addr_ratio_hl > 10.0,
            "passive corpus dwarfs active hitlist",
        ),
        rec(
            "Table 1",
            "NTP addresses / CAIDA addresses",
            "681x",
            format!("{addr_ratio_ca:.0}x"),
            addr_ratio_ca > 10.0,
            "",
        ),
        rec(
            "Table 1",
            "ASN counts (NTP < Hitlist, NTP < CAIDA)",
            "9,006 < 18,184; 9,006 < 13,770",
            format!("{} vs {} vs {}", ntp.asns, hl.asns, ca.asns),
            ntp.asns < hl.asns && ntp.asns < ca.asns,
            "traceroute sees transit ASes the pool never does",
        ),
        rec(
            "Table 1",
            "avg addrs per /48 (NTP > Hitlist > CAIDA)",
            "1,098 > 50 > 1",
            format!(
                "{:.1} > {:.1} > {:.1}",
                ntp.avg_addrs_per_48, hl.avg_addrs_per_48, ca.avg_addrs_per_48
            ),
            ntp.avg_addrs_per_48 > hl.avg_addrs_per_48
                && hl.avg_addrs_per_48 >= ca.avg_addrs_per_48,
            "client churn packs /48s",
        ),
        rec(
            "Table 1",
            "NTP ∩ Hitlist is a sliver of Hitlist",
            "1.3% of Hitlist",
            format!(
                "{:.1}% of Hitlist",
                100.0 * hl.common_addresses.unwrap_or(0) as f64 / hl.addresses.max(1) as f64
            ),
            hl.common_addresses.unwrap_or(0) < hl.addresses / 2,
            "datasets are complementary",
        ),
    ];
    // §3: country mix of the corpus.
    let mut by_country: std::collections::HashMap<Country, u64> = std::collections::HashMap::new();
    for o in &e.corpus.observations {
        *by_country
            .entry(e.world.ases[o.as_index as usize].info.country)
            .or_insert(0) += 1;
    }
    let total: u64 = by_country.values().sum();
    let mut top: Vec<(Country, u64)> = by_country.into_iter().collect();
    top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let top5: u64 = top.iter().take(5).map(|&(_, n)| n).sum();
    let top5_share = top5 as f64 / total.max(1) as f64;
    records.push(rec(
        "§3",
        "top-5 client countries' share of corpus",
        "IN+CN+US+BR+ID = 76%",
        format!(
            "{} = {:.0}%",
            top.iter()
                .take(5)
                .map(|(c, _)| c.as_str().to_string())
                .collect::<Vec<_>>()
                .join("+"),
            top5_share * 100.0
        ),
        (0.5..0.95).contains(&top5_share),
        "",
    ));
    let mut text = String::from("== Table 1: dataset comparison ==\n");
    text.push_str(&t.render());
    (text, records)
}

/// Figure 1: IID entropy CDFs per dataset.
pub fn fig1(e: &Experiment) -> Output {
    let f = figure1(&e.ntp, &[&e.hitlist.dataset, &e.caida.dataset]);
    let median = |name: &str| -> f64 {
        f.datasets
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, c)| c.median())
            .unwrap_or(f64::NAN)
    };
    let (m_ntp, m_hl, m_ca) = (
        median("NTP Pool"),
        median("IPv6 Hitlist"),
        median("CAIDA Routed /48"),
    );
    let records = vec![
        rec(
            "Figure 1",
            "median IID entropy ordering NTP > Hitlist > CAIDA",
            "≈0.8 > ≈0.7 > ≈0",
            format!("{m_ntp:.2} > {m_hl:.2} > {m_ca:.2}"),
            m_ntp > m_hl && m_hl > m_ca,
            "clients vs mixed vs manual infrastructure",
        ),
        rec(
            "Figure 1",
            "CAIDA is almost entirely low-entropy",
            "≈100% below 0.25",
            format!(
                "{:.0}% below 0.25",
                100.0
                    * f.datasets
                        .iter()
                        .find(|(n, _)| n == "CAIDA Routed /48")
                        .map(|(_, c)| c.fraction_at_or_below(0.25))
                        .unwrap_or(0.0)
            ),
            f.datasets
                .iter()
                .find(|(n, _)| n == "CAIDA Routed /48")
                .map(|(_, c)| c.fraction_at_or_below(0.25) > 0.8)
                .unwrap_or(false),
            "",
        ),
    ];
    let mut text = String::from("== Figure 1: IID entropy CDFs ==\n");
    let plot_series: Vec<(&str, Vec<(f64, f64)>)> = f
        .datasets
        .iter()
        .map(|(name, cdf)| (name.as_str(), cdf.series(0.0, 1.0, 61)))
        .collect();
    text.push_str(&v6hitlist::report::ascii_cdf_plot(
        "CDF of normalized IID entropy",
        &plot_series,
        60,
        16,
    ));
    for (name, cdf) in f.datasets.iter().chain(f.intersections.iter()) {
        text.push_str(&render_series(
            &format!("{name} (n={})", cdf.len()),
            &cdf.series(0.0, 1.0, 21),
        ));
    }
    (text, records)
}

/// Figure 2: address and IID lifetimes.
pub fn fig2(e: &Experiment) -> Output {
    let lt = address_lifetimes(&e.ntp);
    let il = iid_lifetimes(&e.ntp);
    let week = 7.0 * 86_400.0;
    let frac_week = |class: v6addr::EntropyClass| -> f64 {
        il.by_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, cdf)| cdf.fraction_above(week - 1.0))
            .unwrap_or(0.0)
    };
    let low_w = frac_week(v6addr::EntropyClass::Low);
    let high_w = frac_week(v6addr::EntropyClass::High);
    let records = vec![
        rec(
            "Figure 2a",
            "addresses observed only once",
            ">60%",
            format!("{:.0}%", lt.seen_once * 100.0),
            lt.seen_once > 0.4,
            "ephemeral privacy addresses dominate",
        ),
        rec(
            "Figure 2a",
            "addresses observed ≥ 1 week",
            "1.2%",
            format!("{:.1}%", lt.week_or_longer * 100.0),
            lt.week_or_longer < 0.25 && lt.week_or_longer > 0.0,
            "",
        ),
        rec(
            "Figure 2a",
            "addresses observed ≥ 6 months",
            "0.03%",
            format!("{:.2}%", lt.six_months_or_longer * 100.0),
            lt.six_months_or_longer < lt.week_or_longer,
            "",
        ),
        rec(
            "Figure 2b",
            "low-entropy IIDs persist ≥1 week more than high-entropy",
            "10% vs ≤5%",
            format!("{:.0}% vs {:.0}%", low_w * 100.0, high_w * 100.0),
            low_w > high_w,
            "manual/EUI-64 IIDs are sticky",
        ),
    ];
    let mut text = String::from("== Figure 2a: address lifetime CCDF (days) ==\n");
    let days: Vec<(f64, f64)> = [0.0, 1.0, 7.0, 30.0, 90.0, 180.0]
        .iter()
        .map(|&d| (d, lt.ccdf.fraction_above(d * 86_400.0 - 1.0)))
        .collect();
    text.push_str(&render_series("P(lifetime ≥ x days)", &days));
    text.push_str("\n== Figure 2b: IID lifetime CDF by entropy class ==\n");
    for (class, cdf) in &il.by_class {
        let series: Vec<(f64, f64)> = [0.0, 1.0, 7.0, 30.0, 90.0, 180.0]
            .iter()
            .map(|&d| (d, cdf.fraction_at_or_below(d * 86_400.0)))
            .collect();
        text.push_str(&render_series(
            &format!("{} (n={})", class.label(), cdf.len()),
            &series,
        ));
    }
    (text, records)
}

/// Figure 3 + §4.2 responsiveness: backscanning.
pub fn fig3(e: &Experiment) -> Output {
    let b = &e.backscan;
    let cr = b.client_response_rate();
    let rr = b.random_response_rate();
    let miss_high = b.miss_entropy.fraction_above(0.75);
    let hit_high = b.hit_entropy.fraction_above(0.75);
    let records = vec![
        rec(
            "Figure 3 / §4.2",
            "NTP clients responsive to backscan",
            "≈2/3",
            format!("{:.0}%", cr * 100.0),
            (0.35..0.95).contains(&cr),
            "passively learned addresses are scannable",
        ),
        rec(
            "Figure 3 / §4.2",
            "random same-/64 targets responsive",
            "3.5%",
            format!("{:.1}%", rr * 100.0),
            rr < cr / 3.0,
            "random hits are aliases, not luck",
        ),
        rec(
            "Figure 3",
            "unresponsive clients skew higher-entropy than responsive",
            "≈70% vs ≈50% above 0.75",
            format!("{:.0}% vs {:.0}%", miss_high * 100.0, hit_high * 100.0),
            miss_high >= hit_high,
            "ephemeral/firewalled clients vs stable responders",
        ),
    ];
    let mut text = String::from("== Figure 3: backscan IID entropy CDFs ==\n");
    let plot: Vec<(&str, Vec<(f64, f64)>)> = [
        ("NTP hit", &b.hit_entropy),
        ("NTP miss", &b.miss_entropy),
        ("Random", &b.random_entropy),
    ]
    .iter()
    .map(|(n, c)| (*n, c.series(0.0, 1.0, 61)))
    .collect();
    text.push_str(&v6hitlist::report::ascii_cdf_plot(
        "CDF of backscanned-client IID entropy",
        &plot,
        60,
        16,
    ));
    for (name, cdf) in [
        ("NTP hit", &b.hit_entropy),
        ("NTP miss", &b.miss_entropy),
        ("Random", &b.random_entropy),
    ] {
        text.push_str(&render_series(
            &format!("{name} (n={})", cdf.len()),
            &cdf.series(0.0, 1.0, 21),
        ));
    }
    text.push_str(&format!(
        "clients probed: {}  responsive: {} ({:.1}%)\nrandom probed: {}  responsive: {} ({:.2}%)\n",
        fmt_count(b.clients_probed),
        fmt_count(b.clients_responsive),
        cr * 100.0,
        fmt_count(b.random_probed),
        fmt_count(b.random_responsive),
        rr * 100.0
    ));
    (text, records)
}

/// Figure 4: top-5 AS entropy CDFs (full study and one day).
pub fn fig4(e: &Experiment) -> Output {
    let end = e.corpus.window.as_secs() as u32;
    let full = figure4(&e.world, &e.corpus, 0, end, 5);
    let day = 157u32; // 1 July 2022 in study days
    let one_day = figure4(&e.world, &e.corpus, day * 86_400, (day + 1) * 86_400, 5);
    let jio = full.rows.iter().find(|r| r.name == "Reliance Jio");
    let tsel = full
        .rows
        .iter()
        .find(|r| r.name == "Telekomunikasi Selular");
    let others_median: Vec<f64> = full
        .rows
        .iter()
        .filter(|r| r.name != "Reliance Jio" && r.name != "Telekomunikasi Selular")
        .map(|r| r.median_entropy)
        .collect();
    let max_other = others_median.iter().cloned().fold(0.0f64, f64::max);
    let mut records = Vec::new();
    if let Some(j) = jio {
        records.push(rec(
            "Figure 4a",
            "Reliance Jio median entropy below peers (low-4-byte pattern)",
            "≈1/3 of Jio below 0.6",
            format!(
                "median {:.2} vs max peer {:.2}",
                j.median_entropy, max_other
            ),
            j.median_entropy < max_other,
            "two coexisting addressing patterns",
        ));
    }
    if let Some(t) = tsel {
        records.push(rec(
            "Figure 4a",
            "Telkomsel skews low-entropy",
            "much lower median",
            format!(
                "median {:.2}, low fraction {:.0}%",
                t.median_entropy,
                t.low_fraction * 100.0
            ),
            t.median_entropy < 0.75,
            "",
        ));
    }
    records.push(rec(
        "Figure 4",
        "top-5 ASes are mobile/eyeball client networks",
        "T-Mobile, ChinaNet, China Mobile, Jio, Telkomsel",
        full.rows
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>()
            .join(", "),
        !full.rows.is_empty(),
        "",
    ));
    let mut text = String::from("== Figure 4a: top-5 AS entropy CDFs (full study) ==\n");
    for (name, cdf) in &full.cdfs {
        text.push_str(&render_series(
            &format!("{name} (n={})", cdf.len()),
            &cdf.series(0.0, 1.0, 21),
        ));
    }
    text.push_str("\n== Figure 4b: top-5 AS entropy CDFs (study day 157) ==\n");
    for (name, cdf) in &one_day.cdfs {
        text.push_str(&render_series(
            &format!("{name} (n={})", cdf.len()),
            &cdf.series(0.0, 1.0, 21),
        ));
    }
    (text, records)
}

/// Figure 5: seven address classes, NTP vs Hitlist, one day.
pub fn fig5(e: &Experiment) -> Output {
    let day_slice = e.one_day_slice(157);
    let f = figure5(
        &e.world,
        &[&day_slice, &e.hitlist.dataset],
        &e.config.ipv4_accept,
    );
    let ntp = &f.breakdowns[0];
    let hl = &f.breakdowns[1];
    let ntp_high = ntp.fraction(AddressClass::HighEntropy);
    let ntp_med = ntp.fraction(AddressClass::MediumEntropy);
    let lb_ratio =
        hl.fraction(AddressClass::LowByte) / ntp.fraction(AddressClass::LowByte).max(1e-9);
    let records = vec![
        rec(
            "Figure 5",
            "NTP one-day slice is mostly high entropy",
            "≈2/3 high + 21% medium",
            format!(
                "{:.0}% high + {:.0}% medium",
                ntp_high * 100.0,
                ntp_med * 100.0
            ),
            ntp_high > 0.4,
            "",
        ),
        rec(
            "Figure 5",
            "Hitlist low-byte share ≫ NTP low-byte share",
            "≈33x",
            format!("{lb_ratio:.0}x"),
            lb_ratio > 3.0,
            "hitlists over-represent operator-assigned addresses",
        ),
        rec(
            "Figure 5",
            "Hitlist carries more IPv4-mapped than NTP",
            "3% vs 0.00002%",
            format!(
                "{:.2}% vs {:.4}%",
                hl.fraction(AddressClass::Ipv4Mapped) * 100.0,
                ntp.fraction(AddressClass::Ipv4Mapped) * 100.0
            ),
            hl.fraction(AddressClass::Ipv4Mapped) >= ntp.fraction(AddressClass::Ipv4Mapped),
            "",
        ),
    ];
    let mut text = String::from("== Figure 5: address classes (study day 157) ==\n");
    text.push_str(&f.render());
    (text, records)
}

/// Table 2 + §5.1: EUI-64 prevalence and manufacturers.
pub fn table2(e: &Experiment) -> Output {
    let t = &e.tracking;
    let frac = t.stats.fraction();
    let unlisted_share = t
        .manufacturers
        .first()
        .filter(|m| m.manufacturer == "Unlisted")
        .map(|m| m.macs as f64 / t.stats.unique_macs.max(1) as f64)
        .unwrap_or(0.0);
    let records = vec![
        rec(
            "§5.1",
            "EUI-64 share of corpus",
            "3%",
            format!("{:.1}%", frac * 100.0),
            (0.005..0.25).contains(&frac),
            "",
        ),
        rec(
            "§5.1",
            "observed EUI-64 ≫ expected-if-random (N/2^16)",
            "238M vs <121k",
            format!(
                "{} vs {:.0}",
                fmt_count(t.stats.eui64_addresses),
                t.stats.expected_random
            ),
            t.stats.eui64_addresses as f64 > 20.0 * t.stats.expected_random.max(1.0),
            "the EUI-64 population is real",
        ),
        rec(
            "Table 2",
            "\"Unlisted\" is the top manufacturer",
            "73.9% of MACs",
            format!("{:.0}% of MACs", unlisted_share * 100.0),
            t.manufacturers
                .first()
                .map(|m| m.manufacturer == "Unlisted")
                .unwrap_or(false),
            "unregistered OUI space dominates",
        ),
    ];
    let mut text = String::from("== Table 2: EUI-64 embedded-MAC manufacturers ==\n");
    text.push_str(&format!(
        "corpus addresses: {}   EUI-64: {} ({:.2}%)   unique MACs: {}\n\n",
        fmt_count(t.stats.corpus_addresses),
        fmt_count(t.stats.eui64_addresses),
        frac * 100.0,
        fmt_count(t.stats.unique_macs)
    ));
    for m in t.manufacturers.iter().take(10) {
        text.push_str(&format!(
            "{:<48} {:>10}\n",
            m.manufacturer,
            fmt_count(m.macs)
        ));
    }
    (text, records)
}

/// Figure 6: EUI-64 IID lifetimes and /64 spread.
pub fn fig6(e: &Experiment) -> Output {
    let t = &e.tracking;
    let multi_frac = t.multi_prefix_macs as f64 / t.stats.unique_macs.max(1) as f64;
    let all_iids = iid_lifetimes(&e.ntp);
    let all_once: f64 = {
        let zero = all_iids.iids.iter().filter(|i| i.lifetime() == 0).count();
        zero as f64 / all_iids.iids.len().max(1) as f64
    };
    let eui_once = t.lifetime_cdf.fraction_at_or_below(0.0);
    let records = vec![
        rec(
            "Figure 6a",
            "EUI-64 IIDs less likely to be one-off than IIDs overall",
            "≈55% vs 60–70%",
            format!("{:.0}% vs {:.0}%", eui_once * 100.0, all_once * 100.0),
            eui_once < all_once,
            "EUI-64 persists across prefixes",
        ),
        rec(
            "Figure 6b / §5.2",
            "MACs appearing in ≥2 /64s",
            "8.7%",
            format!("{:.1}%", multi_frac * 100.0),
            multi_frac > 0.02,
            "the trackable population",
        ),
    ];
    let mut text = String::from("== Figure 6a: EUI-64 IID lifetime CDF (days) ==\n");
    let series: Vec<(f64, f64)> = [0.0, 1.0, 7.0, 30.0, 90.0, 180.0]
        .iter()
        .map(|&d| (d, t.lifetime_cdf.fraction_at_or_below(d * 86_400.0)))
        .collect();
    text.push_str(&render_series("P(lifetime ≤ x days)", &series));
    text.push_str("\n== Figure 6b: CCDF of /64s per EUI-64 IID ==\n");
    let series: Vec<(f64, f64)> = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0]
        .iter()
        .map(|&k| (k, t.prefix_count_cdf.fraction_above(k - 0.5)))
        .collect();
    text.push_str(&render_series("P(#/64s ≥ x)", &series));
    (text, records)
}

/// Figure 7 + §5.2: tracking taxonomy and exemplars.
pub fn fig7(e: &Experiment) -> Output {
    let t = &e.tracking;
    let total = t.multi_prefix_macs.max(1) as f64;
    let share = |c: TrackClass| -> f64 {
        t.class_counts
            .iter()
            .find(|&&(k, _)| k == c)
            .map(|&(_, n)| n as f64 / total)
            .unwrap_or(0.0)
    };
    let records = vec![
        rec(
            "§5.2",
            "mostly-static is the dominant class",
            "86%",
            format!("{:.0}%", share(TrackClass::MostlyStatic) * 100.0),
            share(TrackClass::MostlyStatic)
                >= share(TrackClass::UserMovement).max(share(TrackClass::MacReuse)),
            "",
        ),
        rec(
            "§5.2",
            "prefix reassignment is the top movement explanation",
            "8%",
            format!("{:.0}%", share(TrackClass::PrefixReassignment) * 100.0),
            share(TrackClass::PrefixReassignment) > share(TrackClass::MacReuse),
            "ISP rotation policy, not user motion",
        ),
        rec(
            "§5.2",
            "MAC reuse is rare",
            "0.01%",
            format!("{:.2}%", share(TrackClass::MacReuse) * 100.0),
            share(TrackClass::MacReuse) < 0.10,
            "",
        ),
        rec(
            "§5.2",
            "user movement exists but is a small fraction",
            "0.44%",
            format!("{:.2}%", share(TrackClass::UserMovement) * 100.0),
            share(TrackClass::UserMovement) > 0.0 && share(TrackClass::UserMovement) < 0.15,
            "small percentage, large absolute exposure",
        ),
    ];
    let mut text = String::from("== §5.2: tracking classification of multi-/64 MACs ==\n");
    for &(class, n) in &t.class_counts {
        text.push_str(&format!(
            "{:<28} {:>8} ({:.2}%)\n",
            class.label(),
            fmt_count(n),
            n as f64 / total * 100.0
        ));
    }
    text.push_str("\n== Figure 7: exemplar tracking timelines ==\n");
    for ex in exemplars(&e.world, &e.tracking) {
        text.push_str(&format!("-- {} ({:?}) --\n", ex.mac, ex.class));
        for (day, prefix_idx, as_name) in ex.timeline.iter().take(18) {
            text.push_str(&format!("  day {day:>3}  /64 #{prefix_idx:<4} {as_name}\n"));
        }
        if ex.timeline.len() > 18 {
            text.push_str(&format!("  … {} more samples\n", ex.timeline.len() - 18));
        }
    }
    (text, records)
}

/// §4.2: alias discovery cross-checks.
pub fn aliases(e: &Experiment) -> Output {
    let f = &e.alias_findings;
    let total = (f.known_to_hitlist + f.new_aliased).max(1);
    let records = vec![
        rec(
            "§4.2",
            "backscan finds aliased /64s unknown to the Hitlist",
            "46,512 new (2% of discoveries)",
            format!(
                "{} new of {} ({:.0}%)",
                fmt_count(f.new_aliased),
                fmt_count(total),
                f.new_aliased as f64 / total as f64 * 100.0
            ),
            f.new_aliased > 0,
            "NTP-driven alias discovery is complementary",
        ),
        rec(
            "§4.2",
            "NTP clients inside aliased /64s invisible to the Hitlist",
            "3,841,751 NTP vs 23 Hitlist",
            format!(
                "{} NTP vs {} Hitlist",
                fmt_count(f.ntp_clients_in_aliased),
                fmt_count(f.hitlist_clients_in_aliased)
            ),
            f.ntp_clients_in_aliased > f.hitlist_clients_in_aliased,
            "active measurement cannot tell hosts from aliases there",
        ),
        rec(
            "§4.2",
            "aliased NTP clients concentrated in few ASes",
            "36 ASes",
            format!("{} ASes", f.client_ases),
            f.client_ases < 60,
            "",
        ),
    ];
    let text = format!(
        "== §4.2: aliased networks ==\nbackscan-inferred aliased /64s: {}\n  known to Hitlist alias list: {}\n  new: {}\nNTP clients in aliased /64s: {} (from {} ASes)\nHitlist addresses in those /64s: {}\n",
        fmt_count(total),
        fmt_count(f.known_to_hitlist),
        fmt_count(f.new_aliased),
        fmt_count(f.ntp_clients_in_aliased),
        f.client_ases,
        fmt_count(f.hitlist_clients_in_aliased),
    );
    (text, records)
}

/// §5.3: the geolocation attack.
pub fn geoloc(e: &Experiment) -> Output {
    let g = &e.geolocation;
    let hist = g.country_histogram(&e.world);
    let total = g.geolocated.len().max(1) as f64;
    let de_share = hist
        .iter()
        .find(|(c, _)| *c == Country::new("DE"))
        .map(|&(_, n)| n as f64 / total)
        .unwrap_or(0.0);
    let avm = g.vendor_share(&e.world, "AVM GmbH");
    let median_err = g.validate(&e.world);
    let records = vec![
        rec(
            "§5.3",
            "devices geolocated via EUI-64→BSSID join",
            "225,354",
            fmt_count(g.geolocated.len() as u64),
            !g.geolocated.is_empty(),
            "scaled world",
        ),
        rec(
            "§5.3",
            "Germany dominates geolocations",
            "75%",
            format!("{:.0}%", de_share * 100.0),
            hist.first()
                .map(|(c, _)| *c == Country::new("DE"))
                .unwrap_or(false),
            "AVM EUI-64 WAN addresses + dense wardriving coverage",
        ),
        rec(
            "§5.3",
            "AVM share of geolocated devices",
            "80%",
            format!("{:.0}%", avm * 100.0),
            avm > 0.3,
            "",
        ),
        rec(
            "§5.3",
            "geolocation is street-level accurate (vs ground truth)",
            "validated against a US ISP",
            median_err
                .map(|e| format!("median error {e:.1} km"))
                .unwrap_or_else(|| "n/a".into()),
            median_err.map(|e| e < 50.0).unwrap_or(false),
            "simulator ground truth",
        ),
    ];
    let mut text = String::from("== §5.3: EUI-64 geolocation attack ==\n");
    text.push_str(&format!(
        "input MACs: {}   OUIs with inferred offsets: {}   geolocated: {}\n",
        fmt_count(g.input_macs),
        g.offsets.len(),
        fmt_count(g.geolocated.len() as u64)
    ));
    text.push_str("top countries:\n");
    for (c, n) in hist.iter().take(5) {
        text.push_str(&format!(
            "  {c}  {:>8} ({:.0}%)\n",
            fmt_count(*n),
            *n as f64 / total * 100.0
        ));
    }
    // Error distribution vs ground truth (simulation-only luxury).
    let err = g.error_cdf(&e.world);
    if !err.is_empty() {
        text.push_str("geolocation error vs ground truth (km):\n");
        for q in [0.25, 0.5, 0.75, 0.95] {
            text.push_str(&format!(
                "  p{:02.0}: {:>8.1}\n",
                q * 100.0,
                err.quantile(q).unwrap_or(f64::NAN)
            ));
        }
    }
    (text, records)
}

/// §3/§6: the ethical /48 release.
pub fn release(e: &Experiment) -> Output {
    let r = Release48::from_addr_set("NTP Pool corpus", &e.ntp.addr_set());
    let records = vec![rec(
        "§3 / §6",
        "public release is /48-truncated (privacy invariant)",
        "dataset released at /48 only",
        format!(
            "{} /48s from {} addresses, invariant {}",
            fmt_count(r.len() as u64),
            fmt_count(r.source_addresses),
            if r.verify_privacy_invariant() {
                "holds"
            } else {
                "VIOLATED"
            }
        ),
        r.verify_privacy_invariant(),
        "",
    )];
    let text = format!(
        "== §3/§6: /48-truncated release ==\n{} active /48s (from {} addresses); first 5:\n{}",
        fmt_count(r.len() as u64),
        fmt_count(r.source_addresses),
        r.prefixes
            .iter()
            .take(5)
            .map(|p| format!("  {p}\n"))
            .collect::<String>()
    );
    (text, records)
}

/// Extensions beyond the paper's figures: the §4.1 ASdb composition,
/// rotation-policy inference, TGA training-data evaluation, and outage
/// detection — each an application or claim the paper raises in prose.
pub fn extensions(e: &Experiment) -> Output {
    use v6hitlist::analysis::asdb::subtype_breakdown;
    use v6hitlist::analysis::outage::{detect_outages, OutageDetectorConfig};
    use v6hitlist::analysis::rotation::{infer_rotation_periods, render as render_rotation};
    use v6hitlist::analysis::tga_eval::{compare_training_corpora, render as render_tga};
    use v6netsim::SimTime;

    let mut text = String::new();
    let mut records = Vec::new();

    // §4.1: ASdb "Phone Provider" composition.
    let ntp_types = subtype_breakdown(&e.world, &e.ntp);
    let hl_types = subtype_breakdown(&e.world, &e.hitlist.dataset);
    let ntp_phone = ntp_types.fraction("Phone Provider");
    let hl_phone = hl_types.fraction("Phone Provider");
    text.push_str("== §4.1: ASdb subtype composition ==\n");
    text.push_str(&ntp_types.render());
    text.push_str(&hl_types.render());
    records.push(rec(
        "§4.1",
        "Phone-Provider share: NTP corpus ≫ Hitlist",
        "14% vs 2%",
        format!("{:.0}% vs {:.0}%", ntp_phone * 100.0, hl_phone * 100.0),
        ntp_phone > hl_phone,
        "the passive corpus is mobile-client-rich",
    ));

    // Extension: rotation-policy inference from EUI-64 tracks.
    let rot = infer_rotation_periods(&e.world, &e.tracking, 8);
    text.push_str("\n== Extension: inferred prefix-rotation policies ==\n");
    text.push_str(&render_rotation(&rot));
    let daily_ok = rot
        .iter()
        .filter(|r| r.truth_days == Some(1.0))
        .filter(|r| r.is_accurate())
        .count();
    let daily_total = rot.iter().filter(|r| r.truth_days == Some(1.0)).count();
    records.push(rec(
        "Ext (Follow the Scent)",
        "daily prefix rotation inferred from EUI-64 tracks",
        "rotation periods recoverable passively",
        format!("{daily_ok}/{daily_total} daily-rotating ASes within 2x"),
        daily_total == 0 || daily_ok * 2 >= daily_total,
        "",
    ));

    // Extension: TGA training-data value.
    let t_eval = SimTime(e.corpus.window.as_secs() + 86_400);
    let evals = compare_training_corpora(&e.world, &[&e.hitlist.dataset, &e.ntp], 4_096, 2, t_eval);
    text.push_str("\n== Extension: TGA training-corpus evaluation ==\n");
    text.push_str(&render_tga(&evals));
    records.push(rec(
        "Ext (Target Acquired?)",
        "hitlist-trained TGA hit rate > NTP-corpus-trained (both families)",
        "TGAs biased toward training data (§1)",
        format!(
            "pattern {:.1}% vs {:.1}%; range {:.1}% vs {:.1}%",
            evals[0].hit_rate() * 100.0,
            evals[2].hit_rate() * 100.0,
            evals[1].hit_rate() * 100.0,
            evals[3].hit_rate() * 100.0
        ),
        evals[0].hit_rate() >= evals[2].hit_rate(),
        "random ephemeral seeds do not generalize",
    ));

    // Extension: capture-recapture population estimation.
    {
        use v6hitlist::analysis::population::{estimate_eui64_population, true_eui64_population};
        let month = 30 * 86_400u32;
        let est = estimate_eui64_population(&e.corpus, (0, month), (3 * month, 4 * month));
        let truth = true_eui64_population(&e.world);
        text.push_str(&format!(
            "\n== Extension: EUI-64 population (capture-recapture) ==\nn1={} n2={} recaptured={} estimate={:.0} truth={}\n",
            est.first_capture, est.second_capture, est.recaptured, est.estimate, truth
        ));
        let ok = est.recaptured > 0
            && est.estimate > truth as f64 * 0.5
            && est.estimate < truth as f64 * 2.0;
        records.push(rec(
            "Ext (completeness)",
            "Chapman estimate of EUI-64 device population vs ground truth",
            "hitlist completeness is measurable in simulation",
            format!("{:.0} vs {}", est.estimate, truth),
            ok,
            "stable identifiers make recapture meaningful; addresses don't",
        ));
    }

    // Extension: crowdsourced collection comparison (§2.2).
    {
        use v6hitlist::collect::crowdsource::{collect_crowdsource, CrowdsourceConfig};
        let cs = collect_crowdsource(&e.world, &CrowdsourceConfig::default());
        let cs_cdf = v6hitlist::analysis::entropy_dist::entropy_cdf(&cs);
        text.push_str(&format!(
            "\n== Extension: crowdsourced panel (§2.2) ==\n{} addresses (NTP corpus: {}), median entropy {:.2}\n",
            cs.len(),
            e.ntp.len(),
            cs_cdf.median().unwrap_or(0.0)
        ));
        records.push(rec(
            "§2.2",
            "crowdsourcing sees clients but at tiny scale",
            "\"small numbers of IPv6 client addresses\" [24, 33]",
            format!("{} vs {} NTP", cs.len(), fmt_count(e.ntp.len() as u64)),
            cs.len() * 100 < e.ntp.len() && cs_cdf.median().unwrap_or(0.0) > 0.5,
            "",
        ));
    }

    // Extension: outage detection against the injected ground truth.
    let found = detect_outages(&e.world, &e.corpus, &OutageDetectorConfig::default());
    text.push_str("\n== Extension: outage detection ==\n");
    for o in &found {
        text.push_str(&format!(
            "  {}: days {}..{} (baseline {} queries/day)\n",
            o.as_name,
            o.start_day,
            o.start_day + o.duration_days,
            o.baseline
        ));
    }
    let hit = found
        .iter()
        .any(|o| o.as_name == "ChinaNet" && o.start_day.abs_diff(120) <= 1);
    records.push(rec(
        "Ext (outage detection)",
        "injected 3-day ChinaNet outage (day 120) detected",
        "passive corpora double as outage sensors (§1)",
        format!(
            "{} outages flagged, ChinaNet@120 {}",
            found.len(),
            if hit { "found" } else { "MISSED" }
        ),
        hit && found.len() <= 4,
        "",
    ));

    (text, records)
}

/// Runs every generator in paper order.
pub fn all(e: &Experiment) -> Vec<(&'static str, Output)> {
    vec![
        ("table1", table1(e)),
        ("fig1", fig1(e)),
        ("fig2", fig2(e)),
        ("fig3", fig3(e)),
        ("fig4", fig4(e)),
        ("fig5", fig5(e)),
        ("table2", table2(e)),
        ("fig6", fig6(e)),
        ("fig7", fig7(e)),
        ("aliases", aliases(e)),
        ("geoloc", geoloc(e)),
        ("release", release(e)),
        ("extensions", extensions(e)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6hitlist::ExperimentConfig;

    #[test]
    fn all_generators_run_on_tiny_experiment() {
        let e = Experiment::run(ExperimentConfig::tiny(7));
        let outputs = all(&e);
        assert_eq!(outputs.len(), 13);
        for (name, (text, records)) in &outputs {
            assert!(!text.is_empty(), "{name} produced no text");
            assert!(!records.is_empty(), "{name} produced no records");
        }
    }
}
