//! Observability demo: runs a tiny experiment with tracing forced on and
//! prints the span tree plus the process-global metrics exposition.
//!
//! This is the smoke test for the `v6obs` layer end-to-end: spans open
//! across the DAG stages and collection kernels, merge across worker
//! threads into one tree, and the registry accumulates the data-derived
//! counters. Exits non-zero (assert) if either side comes back empty.
//!
//! Env knobs: `V6HL_SCALE` (default `tiny` here, unlike the other
//! bench binaries), `V6HL_SEED`, `V6_THREADS` (default 2), `V6_TRACE`
//! (forced on regardless).

use v6bench::{config_for, seed_from_env, Scale};
use v6hitlist::Experiment;

fn main() {
    // Tracing on no matter what the environment says: this binary exists
    // to show the trace tree.
    v6obs::set_enabled(true);

    let scale = match std::env::var("V6HL_SCALE").as_deref() {
        Ok("default") => Scale::Default,
        Ok("paper") => Scale::Paper,
        _ => Scale::Tiny,
    };
    let seed = seed_from_env();
    let threads = std::env::var("V6_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);

    eprintln!(
        "[obs] running experiment (scale={}, seed={seed}, threads={threads}) with tracing on …",
        scale.name()
    );
    let e = Experiment::run_with_threads(config_for(scale, seed), threads);
    eprintln!(
        "[obs] done: {} NTP observations, {} unique addresses",
        e.corpus.len(),
        e.ntp.len()
    );

    let trace = v6obs::take_report();
    assert!(!trace.is_empty(), "tracing was on but no spans recorded");
    println!("== trace tree (merged across {threads} threads) ==");
    print!("{}", trace.render());

    let text = v6obs::render_text();
    assert!(
        text.contains("collect.observations"),
        "global registry missing collect.* counters:\n{text}"
    );
    println!("== metrics exposition ==");
    print!("{text}");
    println!(
        "OK: {} roots in the trace, {} exposition lines",
        trace.roots.len(),
        text.lines().count()
    );
}
