//! Regenerates the §5.2 tracking classification (same data as fig7).
fn main() {
    let e = v6bench::run_experiment();
    v6bench::print_experiment(v6bench::experiments::fig7(&e));
}
