//! Parallel-pipeline bench: threads=1 vs threads=N wall clock per stage.
//!
//! Runs the full experiment twice — sequentially and with `V6_THREADS`
//! workers (default: every available core, minimum 2) — asserts the
//! artifact digests are identical and that the pre-sized corpus buffer
//! never reallocated, then writes the per-stage timing comparison,
//! adaptive-cutoff decisions, and metrics registry to
//! `BENCH_pipeline.json`.
//!
//! Env knobs: `V6HL_SCALE`, `V6HL_SEED` (the usual), `V6_THREADS` (the
//! parallel run's worker count).

use v6bench::{
    config_for, seed_from_env, CutoffRecord, MetricsDump, PipelineBench, Scale, StageRecord,
};
use v6hitlist::Experiment;

/// Data-derived counter prefixes that must advance identically in the
/// sequential and parallel run (the observability determinism contract).
const INVARIANT_PREFIXES: &[&str] = &["collect.", "scan.", "chaos."];

fn invariant_counters(snap: &v6obs::MetricsSnapshot) -> Vec<(String, u64)> {
    snap.counters
        .iter()
        .filter(|(name, _)| INVARIANT_PREFIXES.iter().any(|p| name.starts_with(p)))
        .cloned()
        .collect()
}

fn deltas(later: &[(String, u64)], earlier: &[(String, u64)]) -> Vec<(String, u64)> {
    later
        .iter()
        .map(|(name, v)| {
            let before = earlier
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0);
            (name.clone(), v - before)
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Default to every available core (the point is to measure real
    // parallelism, not a fixed token count); at least 2 so the parallel
    // run is always a parallel run.
    let threads = std::env::var("V6_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or_else(|| cores.max(2));

    eprintln!(
        "[pipeline] scale={} seed={seed}: sequential run …",
        scale.name()
    );
    let before_seq = invariant_counters(&v6obs::global().snapshot());
    let t0 = std::time::Instant::now();
    let seq = Experiment::run_with_threads(config_for(scale, seed), 1);
    let seq_total = t0.elapsed();
    eprintln!(
        "[pipeline] sequential: {:.2}s; parallel run ({threads} threads) …",
        seq_total.as_secs_f64()
    );
    let before_par = invariant_counters(&v6obs::global().snapshot());
    let t0 = std::time::Instant::now();
    let par = Experiment::run_with_threads(config_for(scale, seed), threads);
    let par_total = t0.elapsed();
    let after_par = invariant_counters(&v6obs::global().snapshot());

    // Data-derived metrics must be thread-count invariant: the parallel
    // run must advance every collect./scan./chaos. counter by exactly the
    // same amount as the sequential run did.
    let seq_deltas = deltas(&before_par, &before_seq);
    let par_deltas = deltas(&after_par, &before_par);
    assert_eq!(
        seq_deltas, par_deltas,
        "data-derived counters diverged between 1 and {threads} threads"
    );

    // The determinism contract, enforced end-to-end.
    let digest = seq.artifact_digest();
    assert_eq!(
        digest,
        par.artifact_digest(),
        "artifacts diverged between 1 and {threads} threads"
    );
    // Satellite check: collection pre-sizing held, no reallocation.
    for (label, e) in [("seq", &seq), ("par", &par)] {
        assert!(
            e.corpus.len() as u64 <= e.corpus.expected_queries,
            "{label}: query-volume estimate too low"
        );
        assert_eq!(
            e.corpus.observations.capacity(),
            e.corpus.initial_capacity,
            "{label}: corpus buffer reallocated"
        );
    }

    let stages: Vec<StageRecord> = seq
        .timings
        .iter()
        .map(|s| StageRecord {
            name: s.name.to_string(),
            threads1_ms: s.wall.as_secs_f64() * 1e3,
            threadsn_ms: par
                .timings
                .iter()
                .find(|p| p.name == s.name)
                .map(|p| p.wall.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN),
        })
        .collect();
    let metrics = MetricsDump::from_global();
    let cutoffs = CutoffRecord::from_dump(&metrics);
    let bench = PipelineBench {
        scale: scale.name().to_string(),
        seed,
        threads,
        cores,
        digest: format!("{digest:016x}"),
        total_threads1_ms: seq_total.as_secs_f64() * 1e3,
        total_threadsn_ms: par_total.as_secs_f64() * 1e3,
        speedup: seq_total.as_secs_f64() / par_total.as_secs_f64().max(1e-9),
        stages,
        cutoffs,
        corpus_observations: seq.corpus.len() as u64,
        corpus_preallocated: true,
        metrics,
    };

    let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    // Round-trip what we just wrote: the file must be well-formed.
    let back: PipelineBench =
        serde_json::from_str(&std::fs::read_to_string("BENCH_pipeline.json").expect("read back"))
            .expect("BENCH_pipeline.json is not valid JSON");
    assert_eq!(back, bench, "BENCH_pipeline.json round-trip mismatch");

    println!(
        "pipeline bench: digest {:016x} identical at 1 and {threads} threads",
        digest
    );
    println!(
        "  total: {:.0} ms (1 thread) vs {:.0} ms ({threads} threads), speedup {:.2}x",
        bench.total_threads1_ms, bench.total_threadsn_ms, bench.speedup
    );
    for s in &bench.stages {
        println!(
            "  {:>14}: {:>8.1} ms -> {:>8.1} ms",
            s.name, s.threads1_ms, s.threadsn_ms
        );
    }
    for c in &bench.cutoffs {
        println!(
            "  cutoff {:>14}: {} inline, {} parallel",
            c.site, c.inline, c.parallel
        );
    }
    println!(
        "  metrics: {} counters invariant across thread counts (registry embedded)",
        seq_deltas.len()
    );
    println!("wrote BENCH_pipeline.json");
}
