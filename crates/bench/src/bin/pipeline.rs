//! Parallel-pipeline bench: threads=1 vs threads=N wall clock per stage.
//!
//! Runs the full experiment twice — sequentially and with `V6_THREADS`
//! workers (default 4) — asserts the artifact digests are identical and
//! that the pre-sized corpus buffer never reallocated, then writes the
//! per-stage timing comparison to `BENCH_pipeline.json`.
//!
//! Env knobs: `V6HL_SCALE`, `V6HL_SEED` (the usual), `V6_THREADS` (the
//! parallel run's worker count).

use v6bench::{config_for, seed_from_env, PipelineBench, Scale, StageRecord};
use v6hitlist::Experiment;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let threads = std::env::var("V6_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);

    eprintln!(
        "[pipeline] scale={} seed={seed}: sequential run …",
        scale.name()
    );
    let t0 = std::time::Instant::now();
    let seq = Experiment::run_with_threads(config_for(scale, seed), 1);
    let seq_total = t0.elapsed();
    eprintln!(
        "[pipeline] sequential: {:.2}s; parallel run ({threads} threads) …",
        seq_total.as_secs_f64()
    );
    let t0 = std::time::Instant::now();
    let par = Experiment::run_with_threads(config_for(scale, seed), threads);
    let par_total = t0.elapsed();

    // The determinism contract, enforced end-to-end.
    let digest = seq.artifact_digest();
    assert_eq!(
        digest,
        par.artifact_digest(),
        "artifacts diverged between 1 and {threads} threads"
    );
    // Satellite check: collection pre-sizing held, no reallocation.
    for (label, e) in [("seq", &seq), ("par", &par)] {
        assert!(
            e.corpus.len() as u64 <= e.corpus.expected_queries,
            "{label}: query-volume estimate too low"
        );
        assert_eq!(
            e.corpus.observations.capacity(),
            e.corpus.initial_capacity,
            "{label}: corpus buffer reallocated"
        );
    }

    let stages: Vec<StageRecord> = seq
        .timings
        .iter()
        .map(|s| StageRecord {
            name: s.name.to_string(),
            threads1_ms: s.wall.as_secs_f64() * 1e3,
            threadsn_ms: par
                .timings
                .iter()
                .find(|p| p.name == s.name)
                .map(|p| p.wall.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN),
        })
        .collect();
    let bench = PipelineBench {
        scale: scale.name().to_string(),
        seed,
        threads,
        digest: format!("{digest:016x}"),
        total_threads1_ms: seq_total.as_secs_f64() * 1e3,
        total_threadsn_ms: par_total.as_secs_f64() * 1e3,
        speedup: seq_total.as_secs_f64() / par_total.as_secs_f64().max(1e-9),
        stages,
        corpus_observations: seq.corpus.len() as u64,
        corpus_preallocated: true,
    };

    let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    // Round-trip what we just wrote: the file must be well-formed.
    let back: PipelineBench =
        serde_json::from_str(&std::fs::read_to_string("BENCH_pipeline.json").expect("read back"))
            .expect("BENCH_pipeline.json is not valid JSON");
    assert_eq!(back, bench, "BENCH_pipeline.json round-trip mismatch");

    println!(
        "pipeline bench: digest {:016x} identical at 1 and {threads} threads",
        digest
    );
    println!(
        "  total: {:.0} ms (1 thread) vs {:.0} ms ({threads} threads), speedup {:.2}x",
        bench.total_threads1_ms, bench.total_threadsn_ms, bench.speedup
    );
    for s in &bench.stages {
        println!(
            "  {:>14}: {:>8.1} ms -> {:>8.1} ms",
            s.name, s.threads1_ms, s.threadsn_ms
        );
    }
    println!("wrote BENCH_pipeline.json");
}
