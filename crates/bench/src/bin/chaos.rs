//! Chaos harness: the fault-injection invariants, runnable from CI.
//!
//! Three modes, selected by `V6_CHAOS_MODE`:
//!
//! * `transient` (default) — runs the pipeline fault-free, then under a
//!   transient-only fault plan at 1 and `V6_THREADS` workers, and
//!   asserts all three artifact digests are byte-identical. Prints one
//!   `CHAOS_OK …` line on success.
//! * `permanent` — runs the pipeline under a plan with permanent
//!   faults at 1 and `V6_THREADS` workers, asserts the loss reports
//!   agree, and prints the report (`LOST <unit> (<reason>)` lines) to
//!   stdout so CI can diff it against a golden file.
//! * `recovery` — drives a persistent [`v6serve::HitlistStore`]
//!   through a scripted publication run with write-path faults (torn
//!   writes, partial flushes, bit rot, torn checkpoints) injected from
//!   the seeded plan, kill-and-recovers after every failed publish and
//!   at fixed intervals (to surface silent bit rot), and asserts every
//!   recovery lands on a previously published content checksum. Prints
//!   one deterministic `RECOVER …` line per recovery and a final
//!   `RECOVERY_OK …` summary to stdout so CI can diff the block
//!   against a golden file.
//! * `wire` — drives a query workload through the [`v6wire`] front
//!   door over transports that lose, corrupt, and stall chunks per the
//!   seeded plan (fault sites `wire.c2s.g<N>.*` / `wire.s2c.g<N>.*`).
//!   The client reconnects and re-sends unanswered requests until
//!   every response matches the direct snapshot answer; the run
//!   asserts full convergence and that corruption is caught as typed
//!   protocol errors, then prints one `CHAOS_OK mode=wire …` line.
//! * `cluster` — drives a 5-node [`v6cluster::Cluster`] through six
//!   weekly publish waves with node-granularity chaos at
//!   `cluster.<node>.<seq>` sites (loss, stalls, and `Panic`s that
//!   kill the sending node), plus a scripted kill and a network
//!   partition with hedged reads under both. After healing, the run
//!   converges and asserts the invariant: all R replicas of every
//!   partition reach byte-identical content checksums, and no read
//!   answered below the committed epoch was labeled fresh. Stdout
//!   (`READ`/`EVENT`/`CONVERGED`/`CHAOS_OK` lines) is byte-
//!   deterministic per seed; CI diffs it against golden fixtures.
//! * `stream` — replays a deterministic sliding-window epoch sequence
//!   into a [`v6stream::StreamDriver`] whose deliveries fault at
//!   `stream.delta.<epoch>` sites (drops and duplicated retries per
//!   the seeded plan). Dropped deltas surface as gaps at the next
//!   delivery; the run resyncs from the materialized corpus, and at
//!   the end asserts every operator checksum equals a batch rebuild
//!   — the equivalence invariant under faulty delivery. Stdout
//!   (`STREAM`/`CHAOS_OK` lines) is byte-deterministic per seed; CI
//!   diffs it against golden fixtures at two seeds.
//!
//! Env knobs: `V6HL_SCALE`, `V6HL_SEED` (the usual), `V6_THREADS`,
//! `V6_CHAOS_SEED` (fault-plan seed; defaults 7 transient / 11
//! permanent / 5 recovery / 31 wire / 41 cluster / 13 stream),
//! `V6_CHAOS_MODE`.

use std::collections::HashSet;
use std::sync::Arc;

use v6bench::{config_for, seed_from_env, Scale};
use v6chaos::{FaultPlan, FaultSpec};
use v6hitlist::Experiment;
use v6serve::{HitlistStore, PublishError, SnapshotBuilder, StoreConfig};

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let threads = std::env::var("V6_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);
    let mode = std::env::var("V6_CHAOS_MODE").unwrap_or_else(|_| "transient".into());

    match mode.as_str() {
        "transient" => {
            // The same rates the chaos equivalence tests pin down; the
            // seed (and with it the whole fault schedule) comes from
            // V6_CHAOS_SEED.
            let plan = FaultPlan::from_env(7, FaultSpec::transient(0.35));
            eprintln!(
                "[chaos] scale={} seed={seed} chaos_seed={}: fault-free baseline …",
                scale.name(),
                plan.seed()
            );
            let digest =
                Experiment::run_with_threads(config_for(scale, seed), threads).artifact_digest();
            for t in [1usize, threads] {
                eprintln!("[chaos] transient run at {t} thread(s) …");
                let run = Experiment::run_chaos(config_for(scale, seed), t, &plan);
                assert!(
                    run.converged(),
                    "transient-only plan lost work at {t} threads:\n{}",
                    run.loss
                );
                assert_eq!(
                    run.digest(),
                    Some(digest),
                    "transient chaos diverged from the fault-free digest at {t} threads"
                );
            }
            println!(
                "CHAOS_OK mode=transient chaos_seed={} threads=1,{threads} digest={digest:016x}",
                plan.seed()
            );
        }
        "permanent" => {
            let plan = FaultPlan::from_env(11, FaultSpec::with_permanent(0.25, 0.5));
            eprintln!(
                "[chaos] scale={} seed={seed} chaos_seed={}: permanent-fault runs …",
                scale.name(),
                plan.seed()
            );
            let r1 = Experiment::run_chaos(config_for(scale, seed), 1, &plan);
            let rn = Experiment::run_chaos(config_for(scale, seed), threads, &plan);
            assert_eq!(r1.loss, rn.loss, "loss report depends on the thread count");
            assert!(
                !r1.loss.is_empty(),
                "chaos_seed={} injects no permanent faults; pick another seed",
                plan.seed()
            );
            // The report to stdout, nothing else: CI diffs this block
            // against the golden loss file for the pinned seed.
            print!("{}", r1.loss);
            eprintln!(
                "[chaos] {} unit(s) lost, identically at 1 and {threads} threads",
                r1.loss.len()
            );
        }
        "recovery" => {
            // Write-path faults only, no stalls: the run must be fast
            // and its stdout byte-deterministic for the golden diff.
            let plan = Arc::new(FaultPlan::from_env(
                5,
                FaultSpec {
                    stall_rate: 0.0,
                    stall_ms: 0,
                    ..FaultSpec::with_permanent(0.45, 0.0)
                },
            ));
            eprintln!(
                "[chaos] seed={seed} chaos_seed={}: store kill-and-recover run …",
                plan.seed()
            );
            run_recovery(seed, plan);
        }
        "wire" => {
            // Aggressive mixed faults: loss, corruption, and short
            // stalls on both directions of every connection. Fresh
            // fault sites per reconnect generation keep permanent
            // sites from pinning a request forever.
            let plan = FaultPlan::from_env(
                31,
                FaultSpec {
                    stall_ms: 2,
                    ..FaultSpec::with_permanent(0.35, 0.3)
                },
            );
            eprintln!(
                "[chaos] seed={seed} chaos_seed={}: faulty-wire reconnect/retry run …",
                plan.seed()
            );
            run_wire(seed, plan);
        }
        "cluster" => {
            // Node-granularity chaos: a faulty chunk site drops or
            // stalls the chunk — or kills the sending node outright
            // (half of faulty sites panic). Rates stay low because a
            // single Panic costs a whole node a crash/recover cycle.
            let plan = FaultPlan::from_env(
                41,
                FaultSpec {
                    stall_ms: 1,
                    ..FaultSpec::with_permanent(0.08, 0.4)
                },
            );
            eprintln!(
                "[chaos] chaos_seed={}: cluster kill/partition/convergence run …",
                plan.seed()
            );
            run_cluster(plan);
        }
        "stream" => {
            // Drops and duplicated retries only — the two transport
            // behaviors a delta stream must survive. Stalls carry no
            // wall-clock cost here (a stall is modeled as a retried,
            // deduplicated re-delivery).
            let plan = FaultPlan::from_env(
                13,
                FaultSpec {
                    stall_rate: 0.25,
                    stall_ms: 1,
                    ..FaultSpec::with_permanent(0.3, 0.5)
                },
            );
            eprintln!(
                "[chaos] chaos_seed={}: faulty-delivery stream operator run …",
                plan.seed()
            );
            run_stream(plan);
        }
        other => {
            eprintln!(
                "[chaos] unknown V6_CHAOS_MODE {other:?} \
                 (use transient|permanent|recovery|wire|cluster|stream)"
            );
            std::process::exit(2);
        }
    }
}

/// How many cumulative publication steps the recovery run drives.
const RECOVERY_STEPS: u32 = 24;

/// Shard count for the recovery-run store (power of two).
const RECOVERY_SHARDS: usize = 4;

/// Cumulative deterministic snapshot: three seeded addresses per week,
/// weeks `0..=step`. Content depends only on `seed` and `step`, so the
/// checksums in the `RECOVER` lines are reproducible.
fn recovery_snapshot(seed: u64, step: u32) -> v6serve::Snapshot {
    let mut b = SnapshotBuilder::new("chaos-recovery", RECOVERY_SHARDS);
    for w in 0..=step {
        for i in 0..3u64 {
            let h = v6netsim::rng::hash64(seed ^ (u64::from(w) << 8 | i), b"chaos-recovery-addr");
            b.add_bits((0x2001_0db8u128 << 96) | u128::from(h & 0xffff_ffff), w);
        }
    }
    b.build()
}

/// Kills the store (the caller already dropped it with the injected
/// damage still on disk), recovers, asserts the crash invariant —
/// the recovered checksum equals some previously published epoch —
/// and prints the deterministic `RECOVER` line.
fn recover_store(
    cfg: &StoreConfig,
    plan: &Arc<FaultPlan>,
    published: &HashSet<u64>,
    step: u32,
    cause: &str,
) -> HitlistStore {
    let (store, report) =
        HitlistStore::recover_with(cfg.clone(), plan.clone()).expect("recovery must never fail");
    let checksum = store.snapshot().content_checksum();
    assert!(
        published.contains(&checksum),
        "step {step}: recovered checksum {checksum:#018x} was never published"
    );
    println!(
        "RECOVER step={step} cause={cause} epoch={} checksum={checksum:016x} replayed={} \
         truncated={} quarantined={} checkpoint={}",
        report.recovered_epoch,
        report.replayed,
        report.truncated_bytes,
        report.quarantined,
        report
            .checkpoint_epoch
            .map_or("-".into(), |e| e.to_string()),
    );
    store
}

/// Requests the wire chaos run must converge on.
const WIRE_REQUESTS: usize = 48;

/// Reconnect generations before the wire run gives up (far above what
/// any seed needs; fresh fault sites per generation guarantee progress
/// in expectation, and a generation is just an in-memory duplex).
const WIRE_MAX_GENERATIONS: u64 = 512;

/// The faulty-transport reconnect/retry loop behind
/// `V6_CHAOS_MODE=wire`: every wire answer must equal the direct
/// snapshot answer, no matter what the transport does to the bytes.
fn run_wire(seed: u64, plan: FaultPlan) {
    use v6wire::{serve_request, AdmissionConfig, ChaosTransport, Request, WireClient, WireServer};

    // A seeded snapshot served in-process.
    let store = Arc::new(HitlistStore::new("chaos-wire", RECOVERY_SHARDS));
    let mut b = SnapshotBuilder::new("chaos-wire", RECOVERY_SHARDS);
    let mut probes = Vec::new();
    for i in 0..256u64 {
        let h = v6netsim::rng::hash64(seed ^ i, b"chaos-wire-addr");
        let bits = (0x2001_0db8u128 << 96) | u128::from(h);
        b.add_bits(bits, (i % 5) as u32);
        probes.push(bits);
    }
    store.publish(b.build()).expect("publish");
    let snap = store.snapshot();
    let server = WireServer::new(
        v6serve::QueryEngine::new(store),
        AdmissionConfig::default(),
        0,
    );

    // The workload, with every expected answer computed directly.
    let requests: Vec<Request> = (0..WIRE_REQUESTS)
        .map(|i| match i % 4 {
            0 => Request::Lookup {
                addr: probes[i * 5 % probes.len()],
            },
            1 => Request::Membership {
                addr: probes[i * 3 % probes.len()] ^ u128::from(i as u64 % 2),
            },
            2 => Request::NewSince { week: i as u64 % 6 },
            _ => Request::Status,
        })
        .collect();
    let expected: Vec<_> = requests
        .iter()
        .map(|r| serve_request(&snap, r.clone()))
        .collect();

    let mut pending: Vec<usize> = (0..requests.len()).collect();
    let mut generations = 0u64;
    let mut resent = 0u64;
    while !pending.is_empty() {
        assert!(
            generations < WIRE_MAX_GENERATIONS,
            "wire run failed to converge: {} request(s) unanswered after {generations} \
             reconnects",
            pending.len()
        );
        // Fresh connection, fresh fault sites on both directions.
        let (client_end, server_end) = v6wire::duplex();
        let faulty_client =
            ChaosTransport::new(client_end, plan.clone(), format!("c2s.g{generations}"));
        let mut faulty_server =
            ChaosTransport::new(server_end, plan.clone(), format!("s2c.g{generations}"));
        let mut conn = server.open_connection(1_000 + generations);
        let mut client = WireClient::connect(faulty_client, 0).expect("connect");
        let mut by_id = std::collections::HashMap::new();
        // One request per round: a corrupted chunk poisons the whole
        // connection (all undecoded frames with it), so pipelining the
        // backlog in one burst would forfeit every in-flight request to
        // the first flipped bit. Interleaving bounds the blast radius
        // of each fault to the current generation's remainder. The
        // extra drain rounds at the end let stalled chunks release.
        let mut queue: Vec<usize> = pending.clone();
        queue.reverse();
        let rounds = queue.len() as u64 + 8;
        'rounds: for round in 0..rounds {
            let now = round * 1_000;
            if let Some(idx) = queue.pop() {
                match client.send(&requests[idx], now) {
                    Ok(id) => {
                        by_id.insert(id, idx);
                        resent += 1;
                    }
                    Err(_) => break, // transport closed: reconnect
                }
            }
            if conn.pump(&mut faulty_server, now).is_err() {
                break;
            }
            match client.poll(now) {
                Ok(responses) => {
                    for (id, resp) in responses {
                        let Some(idx) = by_id.remove(&id) else {
                            continue;
                        };
                        assert_eq!(
                            resp, expected[idx],
                            "wire answer diverged from the direct snapshot answer \
                             for request {idx}"
                        );
                        pending.retain(|&p| p != idx);
                    }
                    if pending.is_empty() {
                        break 'rounds;
                    }
                }
                Err(_) => break, // corruption or close detected: reconnect
            }
        }
        generations += 1;
    }

    let metrics = server.metrics().registry().snapshot();
    let protocol_errors = metrics.counter("wire.conn.protocol_errors").unwrap_or(0);
    println!(
        "CHAOS_OK mode=wire chaos_seed={} requests={WIRE_REQUESTS} verified={WIRE_REQUESTS} \
         reconnects={generations} sent={resent} protocol_errors={protocol_errors}",
        plan.seed(),
    );
    eprintln!(
        "[chaos] wire converged after {generations} generation(s); every answer matched the \
         direct snapshot answer"
    );
}

/// Weekly publish waves the cluster chaos run drives.
const CLUSTER_WEEKS: u64 = 6;

/// New addresses per partition per week.
const CLUSTER_ADDRS_PER_WEEK: u64 = 4;

/// A deterministic address that routes to partition `pid`: seeded
/// candidates are rejection-sampled against [`v6cluster::partition_of`]
/// (the variable bits sit inside the top /48, so sampling converges in
/// a handful of draws).
fn cluster_addr(seed: u64, pid: u32, partitions: u32, tag: u64) -> u128 {
    for j in 0u64..4096 {
        let h = v6netsim::rng::hash64(seed ^ tag ^ (j << 52), b"cluster-addr");
        let bits = (0x2001u128 << 112) | (u128::from(h) << 40) | u128::from(tag & 0xff_ffff);
        if v6cluster::partition_of(bits, partitions) == pid {
            return bits;
        }
    }
    unreachable!("rejection sampling must land within 4096 draws")
}

/// The cumulative content of partition `pid` as of `week`.
fn cluster_week_entries(seed: u64, pid: u32, partitions: u32, week: u64) -> Vec<(u128, u32)> {
    let mut entries = Vec::new();
    for w in 1..=week {
        for i in 0..CLUSTER_ADDRS_PER_WEEK {
            let tag = (u64::from(pid) << 40) | (w << 8) | i;
            entries.push((cluster_addr(seed, pid, partitions, tag), w as u32));
        }
    }
    entries
}

/// One hedged-read sweep: a known week-1 address per partition plus
/// one never-published probe. Prints a deterministic `READ` line each.
fn cluster_read_phase(cluster: &mut v6cluster::Cluster, seed: u64, partitions: u32, label: &str) {
    for pid in 0..partitions {
        let tag = (u64::from(pid) << 40) | (1 << 8);
        let out = cluster.read(cluster_addr(seed, pid, partitions, tag));
        println!(
            "READ phase={label} p{pid} status={} present={} epoch={} committed={} probes={}",
            out.status, out.present, out.epoch, out.committed_epoch, out.probes
        );
    }
    let absent = cluster.read(cluster_addr(seed, 0, partitions, 0xab5e17 << 32));
    println!(
        "READ phase={label} p0 status={} present={} (absent probe)",
        absent.status, absent.present
    );
}

/// The kill/partition/convergence run behind `V6_CHAOS_MODE=cluster`.
fn run_cluster(plan: FaultPlan) {
    use v6cluster::{Cluster, ClusterConfig, ReadStatus};

    let chaos_seed = plan.seed();
    let cfg = ClusterConfig::new(5, 3, chaos_seed);
    let partitions = cfg.partitions;
    let mut cluster = Cluster::with_chaos(cfg, Arc::new(plan)).expect("cluster scratch dirs");

    for week in 1..=CLUSTER_WEEKS {
        for pid in 0..partitions {
            // Deferred publishes (every replica down) self-heal: the
            // content is cumulative, so next week's wave carries it.
            let _ = cluster.publish(
                pid,
                week,
                cluster_week_entries(chaos_seed, pid, partitions, week),
                vec![],
            );
        }
        for _ in 0..3 {
            cluster.pump_round();
        }
        match week {
            2 => {
                // A scripted kill on top of whatever chaos decides.
                cluster.kill("n1");
                cluster.pump_round();
            }
            3 => {
                // Cut n3/n4 off from the majority (and the client).
                let groups: std::collections::BTreeMap<String, u8> =
                    [("n0", 0u8), ("n1", 0), ("n2", 0), ("n3", 1), ("n4", 1)]
                        .into_iter()
                        .map(|(n, g)| (n.to_string(), g))
                        .collect();
                cluster.set_partition(&groups);
                cluster_read_phase(&mut cluster, chaos_seed, partitions, "partitioned");
            }
            5 => {
                cluster.heal();
                cluster_read_phase(&mut cluster, chaos_seed, partitions, "healed");
            }
            _ => {}
        }
    }

    let report = cluster.converge(256);
    for event in cluster.events() {
        println!("EVENT {event}");
    }
    print!("{report}");

    let audit = cluster.read_audit();
    let count = |status: ReadStatus| audit.iter().filter(|r| r.status == status).count();
    let kills = cluster
        .events()
        .iter()
        .filter(|e| e.contains(": KILL "))
        .count();
    let restarts = cluster
        .events()
        .iter()
        .filter(|e| e.contains(": RESTART "))
        .count();
    assert!(report.converged, "cluster failed to converge:\n{report}");
    assert_eq!(
        cluster.unlabeled_stale_reads(),
        0,
        "a stale answer was labeled fresh"
    );
    println!(
        "CHAOS_OK mode=cluster chaos_seed={chaos_seed} reads={} fresh={} degraded={} \
         unavailable={} unlabeled_stale=0 kills={kills} restarts={restarts} converge_rounds={}",
        audit.len(),
        count(ReadStatus::Fresh),
        count(ReadStatus::Degraded),
        count(ReadStatus::Unavailable),
        report.rounds
    );
    eprintln!(
        "[chaos] cluster converged after {} round(s); {kills} kill(s), {restarts} restart(s), \
         every replica byte-identical",
        report.rounds
    );
}

/// Epoch publications the stream chaos run replays.
const STREAM_EPOCHS: u64 = 32;

/// New addresses per epoch; each lives for [`STREAM_WINDOW`] epochs,
/// so every delta carries both adds and removals.
const STREAM_ADDRS_PER_EPOCH: u64 = 6;
const STREAM_WINDOW: u64 = 10;

/// A deterministic stream address: seeded into one of three routed
/// /32s (or unrouted space), mixing EUI-64 and opaque IIDs so every
/// operator has behavior on the content.
fn stream_chaos_addr(tag: u64) -> u128 {
    let h = v6netsim::rng::hash64(tag, b"stream-chaos-addr");
    let prefix: u128 = [0x2a00_0001, 0x2a00_0002, 0x2a00_0003, 0x3fff_0001][(h % 4) as usize];
    let subnet = u128::from((h >> 8) % 4);
    let iid = if h.is_multiple_of(3) {
        let mac = v6addr::Mac::from_u64(0x0050_5600_0000 | ((h >> 32) % 64));
        u128::from(v6addr::Iid::from_mac(mac).as_u64())
    } else {
        u128::from(h | 1)
    };
    (prefix << 96) | (subnet << 64) | iid
}

/// The materialized corpus at `epoch`: the sliding window of addresses
/// introduced in epochs `(epoch - STREAM_WINDOW, epoch]`, tagged with
/// their introduction week, sorted and deduped.
fn stream_corpus(epoch: u64) -> Vec<(u128, u32)> {
    let mut entries: Vec<(u128, u32)> = (epoch.saturating_sub(STREAM_WINDOW - 1).max(1)..=epoch)
        .flat_map(|w| {
            (0..STREAM_ADDRS_PER_EPOCH).map(move |i| (stream_chaos_addr((w << 16) | i), w as u32))
        })
        .collect();
    entries.sort_unstable();
    entries.dedup_by_key(|&mut (bits, _)| bits);
    entries
}

/// The faulty-delivery operator run behind `V6_CHAOS_MODE=stream`:
/// the equivalence invariant must hold at the end no matter which
/// deltas the transport dropped or re-delivered.
fn run_stream(plan: FaultPlan) {
    use v6stream::{fold_content, Analytics, AsTag, Offer, PrefixAsTable, SharedResolver};

    let chaos_seed = plan.seed();
    let resolver: SharedResolver = Arc::new(PrefixAsTable::new(
        [(1u16, *b"DE"), (2, *b"DE"), (3, *b"JP")]
            .into_iter()
            .map(|(index, country)| {
                (
                    (0x2a00_0000u128 + u128::from(index)) << 96,
                    32,
                    AsTag {
                        index,
                        country: u16::from_be_bytes(country),
                    },
                )
            })
            .collect(),
    ));
    let mut driver = v6stream::StreamDriver::new(resolver.clone()).with_chaos(Arc::new(plan));

    let mut state = v6store::EpochState::default();
    let (mut applied, mut dropped, mut gaps, mut resyncs) = (0u64, 0u64, 0u64, 0u64);
    for epoch in 1..=STREAM_EPOCHS {
        let entries = stream_corpus(epoch);
        let checksum = entries
            .iter()
            .fold(0u64, |acc, &(bits, week)| fold_content(acc, bits, week));
        let delta = v6store::replica::delta_between(
            &state,
            &v6store::EpochView {
                epoch,
                week: epoch,
                content_checksum: checksum,
                missing_shards: &[],
                entries: &entries,
                aliases: &[],
            },
        );
        v6store::replica::apply(&mut state, &delta);

        let offer = driver.feed(&delta);
        let outcome = match offer {
            Offer::Applied(n) => {
                applied += 1;
                format!("applied({n})")
            }
            Offer::Dropped => {
                dropped += 1;
                "dropped".into()
            }
            Offer::Gap | Offer::Lagging => {
                gaps += 1;
                resyncs += 1;
                driver.resync(epoch, epoch, &entries);
                "gap->resync".into()
            }
            Offer::Duplicate => "duplicate".into(),
        };
        println!(
            "STREAM epoch={epoch} corpus={} outcome={outcome} driver_epoch={} checksum={:016x}",
            entries.len(),
            driver.epoch(),
            driver.content_checksum(),
        );
    }

    // A dropped final delta leaves the driver honestly behind; one
    // authoritative resync models the periodic reconciliation any
    // deployment runs. Never silent: the lag was visible above.
    let final_entries = stream_corpus(STREAM_EPOCHS);
    if driver.epoch() != STREAM_EPOCHS {
        resyncs += 1;
        driver.resync(STREAM_EPOCHS, STREAM_EPOCHS, &final_entries);
        println!("STREAM final resync epoch={STREAM_EPOCHS}");
    }
    assert!(!driver.is_lagging(), "driver still lagging after resync");

    // The equivalence invariant, under faulty delivery.
    let batch = Analytics::from_entries(resolver, &final_entries);
    for ((name, streamed), (_, batched)) in driver
        .analytics()
        .checksums()
        .iter()
        .zip(batch.checksums().iter())
    {
        assert_eq!(
            streamed, batched,
            "operator {name} diverged from the batch rebuild"
        );
    }
    println!(
        "CHAOS_OK mode=stream chaos_seed={chaos_seed} epochs={STREAM_EPOCHS} applied={applied} \
         dropped={dropped} gaps={gaps} resyncs={resyncs} operators=4 equivalent=true \
         checksum={:016x}",
        driver.content_checksum(),
    );
    eprintln!(
        "[chaos] stream survived {dropped} dropped delta(s) and {gaps} gap(s); every operator \
         checksum equals the batch rebuild"
    );
}

/// The kill-and-recover loop behind `V6_CHAOS_MODE=recovery`.
fn run_recovery(seed: u64, plan: Arc<FaultPlan>) {
    let dir = v6store::scratch_dir("chaos-recovery");
    let cfg = StoreConfig::new(&dir).checkpoint_every(4).with_fsync(false);
    let mut store =
        HitlistStore::persistent_with("chaos-recovery", RECOVERY_SHARDS, cfg.clone(), plan.clone())
            .expect("create durable store");

    let mut published: HashSet<u64> = HashSet::new();
    published.insert(store.snapshot().content_checksum()); // epoch 0: empty
    let (mut publishes, mut failures, mut recoveries) = (0u64, 0u64, 0u64);

    for step in 1..=RECOVERY_STEPS {
        let snap = recovery_snapshot(seed, step);
        let checksum = snap.content_checksum();
        match store.publish(snap) {
            Ok(_) => {
                publishes += 1;
                published.insert(checksum);
            }
            Err(PublishError::Persistence(err)) => {
                failures += 1;
                let cause = if err.contains("torn write") {
                    "torn-write"
                } else if err.contains("partial flush") {
                    "partial-flush"
                } else {
                    "io"
                };
                // Crash with the damage on disk, then recover.
                recoveries += 1;
                drop(store);
                store = recover_store(&cfg, &plan, &published, step, cause);
                // Retry until this step's content lands. Every failed
                // attempt burns an epoch (and self-heals its torn
                // bytes), so the loop always terminates.
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    assert!(attempts <= 64, "step {step}: 64 failed publish attempts");
                    match store.publish(recovery_snapshot(seed, step)) {
                        Ok(_) => {
                            publishes += 1;
                            published.insert(checksum);
                            break;
                        }
                        Err(PublishError::Persistence(_)) => failures += 1,
                        Err(other) => panic!("step {step}: unexpected publish error: {other}"),
                    }
                }
            }
            Err(other) => panic!("step {step}: unexpected publish error: {other}"),
        }
        // Periodic forced kill: silent bit rot never fails a publish,
        // so only an unprompted crash-and-recover can surface it.
        if step % 7 == 0 {
            recoveries += 1;
            drop(store);
            store = recover_store(&cfg, &plan, &published, step, "kill");
        }
    }

    let final_checksum = store.snapshot().content_checksum();
    println!(
        "RECOVERY_OK chaos_seed={} steps={RECOVERY_STEPS} publishes={publishes} \
         failures={failures} recoveries={recoveries} epoch={} checksum={final_checksum:016x}",
        plan.seed(),
        store.epoch(),
    );
    eprintln!(
        "[chaos] {recoveries} recoveries over {RECOVERY_STEPS} steps, \
         {failures} injected publish failures, all landed on published epochs"
    );
    std::fs::remove_dir_all(&dir).ok();
}
