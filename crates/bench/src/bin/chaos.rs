//! Chaos harness: the fault-injection invariants, runnable from CI.
//!
//! Two modes, selected by `V6_CHAOS_MODE`:
//!
//! * `transient` (default) — runs the pipeline fault-free, then under a
//!   transient-only fault plan at 1 and `V6_THREADS` workers, and
//!   asserts all three artifact digests are byte-identical. Prints one
//!   `CHAOS_OK …` line on success.
//! * `permanent` — runs the pipeline under a plan with permanent
//!   faults at 1 and `V6_THREADS` workers, asserts the loss reports
//!   agree, and prints the report (`LOST <unit> (<reason>)` lines) to
//!   stdout so CI can diff it against a golden file.
//!
//! Env knobs: `V6HL_SCALE`, `V6HL_SEED` (the usual), `V6_THREADS`,
//! `V6_CHAOS_SEED` (fault-plan seed; defaults 7 transient / 11
//! permanent), `V6_CHAOS_MODE`.

use v6bench::{config_for, seed_from_env, Scale};
use v6chaos::{FaultPlan, FaultSpec};
use v6hitlist::Experiment;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let threads = std::env::var("V6_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);
    let mode = std::env::var("V6_CHAOS_MODE").unwrap_or_else(|_| "transient".into());

    match mode.as_str() {
        "transient" => {
            // The same rates the chaos equivalence tests pin down; the
            // seed (and with it the whole fault schedule) comes from
            // V6_CHAOS_SEED.
            let plan = FaultPlan::from_env(7, FaultSpec::transient(0.35));
            eprintln!(
                "[chaos] scale={} seed={seed} chaos_seed={}: fault-free baseline …",
                scale.name(),
                plan.seed()
            );
            let digest =
                Experiment::run_with_threads(config_for(scale, seed), threads).artifact_digest();
            for t in [1usize, threads] {
                eprintln!("[chaos] transient run at {t} thread(s) …");
                let run = Experiment::run_chaos(config_for(scale, seed), t, &plan);
                assert!(
                    run.converged(),
                    "transient-only plan lost work at {t} threads:\n{}",
                    run.loss
                );
                assert_eq!(
                    run.digest(),
                    Some(digest),
                    "transient chaos diverged from the fault-free digest at {t} threads"
                );
            }
            println!(
                "CHAOS_OK mode=transient chaos_seed={} threads=1,{threads} digest={digest:016x}",
                plan.seed()
            );
        }
        "permanent" => {
            let plan = FaultPlan::from_env(11, FaultSpec::with_permanent(0.25, 0.5));
            eprintln!(
                "[chaos] scale={} seed={seed} chaos_seed={}: permanent-fault runs …",
                scale.name(),
                plan.seed()
            );
            let r1 = Experiment::run_chaos(config_for(scale, seed), 1, &plan);
            let rn = Experiment::run_chaos(config_for(scale, seed), threads, &plan);
            assert_eq!(r1.loss, rn.loss, "loss report depends on the thread count");
            assert!(
                !r1.loss.is_empty(),
                "chaos_seed={} injects no permanent faults; pick another seed",
                plan.seed()
            );
            // The report to stdout, nothing else: CI diffs this block
            // against the golden loss file for the pinned seed.
            print!("{}", r1.loss);
            eprintln!(
                "[chaos] {} unit(s) lost, identically at 1 and {threads} threads",
                r1.loss.len()
            );
        }
        other => {
            eprintln!("[chaos] unknown V6_CHAOS_MODE {other:?} (use transient|permanent)");
            std::process::exit(2);
        }
    }
}
