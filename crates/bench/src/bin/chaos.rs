//! Chaos harness: the fault-injection invariants, runnable from CI.
//!
//! Three modes, selected by `V6_CHAOS_MODE`:
//!
//! * `transient` (default) — runs the pipeline fault-free, then under a
//!   transient-only fault plan at 1 and `V6_THREADS` workers, and
//!   asserts all three artifact digests are byte-identical. Prints one
//!   `CHAOS_OK …` line on success.
//! * `permanent` — runs the pipeline under a plan with permanent
//!   faults at 1 and `V6_THREADS` workers, asserts the loss reports
//!   agree, and prints the report (`LOST <unit> (<reason>)` lines) to
//!   stdout so CI can diff it against a golden file.
//! * `recovery` — drives a persistent [`v6serve::HitlistStore`]
//!   through a scripted publication run with write-path faults (torn
//!   writes, partial flushes, bit rot, torn checkpoints) injected from
//!   the seeded plan, kill-and-recovers after every failed publish and
//!   at fixed intervals (to surface silent bit rot), and asserts every
//!   recovery lands on a previously published content checksum. Prints
//!   one deterministic `RECOVER …` line per recovery and a final
//!   `RECOVERY_OK …` summary to stdout so CI can diff the block
//!   against a golden file.
//!
//! Env knobs: `V6HL_SCALE`, `V6HL_SEED` (the usual), `V6_THREADS`,
//! `V6_CHAOS_SEED` (fault-plan seed; defaults 7 transient / 11
//! permanent / 5 recovery), `V6_CHAOS_MODE`.

use std::collections::HashSet;
use std::sync::Arc;

use v6bench::{config_for, seed_from_env, Scale};
use v6chaos::{FaultPlan, FaultSpec};
use v6hitlist::Experiment;
use v6serve::{HitlistStore, PublishError, SnapshotBuilder, StoreConfig};

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let threads = std::env::var("V6_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);
    let mode = std::env::var("V6_CHAOS_MODE").unwrap_or_else(|_| "transient".into());

    match mode.as_str() {
        "transient" => {
            // The same rates the chaos equivalence tests pin down; the
            // seed (and with it the whole fault schedule) comes from
            // V6_CHAOS_SEED.
            let plan = FaultPlan::from_env(7, FaultSpec::transient(0.35));
            eprintln!(
                "[chaos] scale={} seed={seed} chaos_seed={}: fault-free baseline …",
                scale.name(),
                plan.seed()
            );
            let digest =
                Experiment::run_with_threads(config_for(scale, seed), threads).artifact_digest();
            for t in [1usize, threads] {
                eprintln!("[chaos] transient run at {t} thread(s) …");
                let run = Experiment::run_chaos(config_for(scale, seed), t, &plan);
                assert!(
                    run.converged(),
                    "transient-only plan lost work at {t} threads:\n{}",
                    run.loss
                );
                assert_eq!(
                    run.digest(),
                    Some(digest),
                    "transient chaos diverged from the fault-free digest at {t} threads"
                );
            }
            println!(
                "CHAOS_OK mode=transient chaos_seed={} threads=1,{threads} digest={digest:016x}",
                plan.seed()
            );
        }
        "permanent" => {
            let plan = FaultPlan::from_env(11, FaultSpec::with_permanent(0.25, 0.5));
            eprintln!(
                "[chaos] scale={} seed={seed} chaos_seed={}: permanent-fault runs …",
                scale.name(),
                plan.seed()
            );
            let r1 = Experiment::run_chaos(config_for(scale, seed), 1, &plan);
            let rn = Experiment::run_chaos(config_for(scale, seed), threads, &plan);
            assert_eq!(r1.loss, rn.loss, "loss report depends on the thread count");
            assert!(
                !r1.loss.is_empty(),
                "chaos_seed={} injects no permanent faults; pick another seed",
                plan.seed()
            );
            // The report to stdout, nothing else: CI diffs this block
            // against the golden loss file for the pinned seed.
            print!("{}", r1.loss);
            eprintln!(
                "[chaos] {} unit(s) lost, identically at 1 and {threads} threads",
                r1.loss.len()
            );
        }
        "recovery" => {
            // Write-path faults only, no stalls: the run must be fast
            // and its stdout byte-deterministic for the golden diff.
            let plan = Arc::new(FaultPlan::from_env(
                5,
                FaultSpec {
                    stall_rate: 0.0,
                    stall_ms: 0,
                    ..FaultSpec::with_permanent(0.45, 0.0)
                },
            ));
            eprintln!(
                "[chaos] seed={seed} chaos_seed={}: store kill-and-recover run …",
                plan.seed()
            );
            run_recovery(seed, plan);
        }
        other => {
            eprintln!("[chaos] unknown V6_CHAOS_MODE {other:?} (use transient|permanent|recovery)");
            std::process::exit(2);
        }
    }
}

/// How many cumulative publication steps the recovery run drives.
const RECOVERY_STEPS: u32 = 24;

/// Shard count for the recovery-run store (power of two).
const RECOVERY_SHARDS: usize = 4;

/// Cumulative deterministic snapshot: three seeded addresses per week,
/// weeks `0..=step`. Content depends only on `seed` and `step`, so the
/// checksums in the `RECOVER` lines are reproducible.
fn recovery_snapshot(seed: u64, step: u32) -> v6serve::Snapshot {
    let mut b = SnapshotBuilder::new("chaos-recovery", RECOVERY_SHARDS);
    for w in 0..=step {
        for i in 0..3u64 {
            let h = v6netsim::rng::hash64(seed ^ (u64::from(w) << 8 | i), b"chaos-recovery-addr");
            b.add_bits((0x2001_0db8u128 << 96) | u128::from(h & 0xffff_ffff), w);
        }
    }
    b.build()
}

/// Kills the store (the caller already dropped it with the injected
/// damage still on disk), recovers, asserts the crash invariant —
/// the recovered checksum equals some previously published epoch —
/// and prints the deterministic `RECOVER` line.
fn recover_store(
    cfg: &StoreConfig,
    plan: &Arc<FaultPlan>,
    published: &HashSet<u64>,
    step: u32,
    cause: &str,
) -> HitlistStore {
    let (store, report) =
        HitlistStore::recover_with(cfg.clone(), plan.clone()).expect("recovery must never fail");
    let checksum = store.snapshot().content_checksum();
    assert!(
        published.contains(&checksum),
        "step {step}: recovered checksum {checksum:#018x} was never published"
    );
    println!(
        "RECOVER step={step} cause={cause} epoch={} checksum={checksum:016x} replayed={} \
         truncated={} quarantined={} checkpoint={}",
        report.recovered_epoch,
        report.replayed,
        report.truncated_bytes,
        report.quarantined,
        report
            .checkpoint_epoch
            .map_or("-".into(), |e| e.to_string()),
    );
    store
}

/// The kill-and-recover loop behind `V6_CHAOS_MODE=recovery`.
fn run_recovery(seed: u64, plan: Arc<FaultPlan>) {
    let dir = v6store::scratch_dir("chaos-recovery");
    let cfg = StoreConfig::new(&dir).checkpoint_every(4).with_fsync(false);
    let mut store =
        HitlistStore::persistent_with("chaos-recovery", RECOVERY_SHARDS, cfg.clone(), plan.clone())
            .expect("create durable store");

    let mut published: HashSet<u64> = HashSet::new();
    published.insert(store.snapshot().content_checksum()); // epoch 0: empty
    let (mut publishes, mut failures, mut recoveries) = (0u64, 0u64, 0u64);

    for step in 1..=RECOVERY_STEPS {
        let snap = recovery_snapshot(seed, step);
        let checksum = snap.content_checksum();
        match store.publish(snap) {
            Ok(_) => {
                publishes += 1;
                published.insert(checksum);
            }
            Err(PublishError::Persistence(err)) => {
                failures += 1;
                let cause = if err.contains("torn write") {
                    "torn-write"
                } else if err.contains("partial flush") {
                    "partial-flush"
                } else {
                    "io"
                };
                // Crash with the damage on disk, then recover.
                recoveries += 1;
                drop(store);
                store = recover_store(&cfg, &plan, &published, step, cause);
                // Retry until this step's content lands. Every failed
                // attempt burns an epoch (and self-heals its torn
                // bytes), so the loop always terminates.
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    assert!(attempts <= 64, "step {step}: 64 failed publish attempts");
                    match store.publish(recovery_snapshot(seed, step)) {
                        Ok(_) => {
                            publishes += 1;
                            published.insert(checksum);
                            break;
                        }
                        Err(PublishError::Persistence(_)) => failures += 1,
                        Err(other) => panic!("step {step}: unexpected publish error: {other}"),
                    }
                }
            }
            Err(other) => panic!("step {step}: unexpected publish error: {other}"),
        }
        // Periodic forced kill: silent bit rot never fails a publish,
        // so only an unprompted crash-and-recover can surface it.
        if step % 7 == 0 {
            recoveries += 1;
            drop(store);
            store = recover_store(&cfg, &plan, &published, step, "kill");
        }
    }

    let final_checksum = store.snapshot().content_checksum();
    println!(
        "RECOVERY_OK chaos_seed={} steps={RECOVERY_STEPS} publishes={publishes} \
         failures={failures} recoveries={recoveries} epoch={} checksum={final_checksum:016x}",
        plan.seed(),
        store.epoch(),
    );
    eprintln!(
        "[chaos] {recoveries} recoveries over {RECOVERY_STEPS} steps, \
         {failures} injected publish failures, all landed on published epochs"
    );
    std::fs::remove_dir_all(&dir).ok();
}
