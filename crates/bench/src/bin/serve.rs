//! Load harness for the `v6serve` query subsystem.
//!
//! Builds a hitlist from a tiny-world campaign, ingests all but the
//! final week into a [`v6serve::HitlistStore`], then replays millions of
//! seeded queries from N client threads while a publisher thread pushes
//! the held-back final week as a fresh epoch mid-run. Prints throughput
//! and latency percentiles, and asserts the concurrency contract: the
//! publish overlapped the run, never blocked readers for long, and no
//! known-present address was ever reported absent.
//!
//! After the load run the harness times durability: the same weekly
//! sequence published to an in-memory store vs. a write-ahead-logged
//! one, plus a cold [`v6serve::HitlistStore::recover`] after dropping
//! the writer mid-flight. Then it drives the `v6wire` front door with
//! an adversarial client mix — steady pollers sharing the server with
//! a query-flooder and a burst scraper on simulated time — and asserts
//! the fairness contract (steady pollers unthrottled with bounded p99,
//! abusers classified and contained by explicit `Throttled`/`Shed`
//! frames). All three sets of numbers land in `BENCH_serve.json`.
//!
//! Env knobs: `V6HL_SEED` (default 2022), `V6SERVE_QUERIES` (default
//! 1_000_000), `V6SERVE_THREADS` (default 4), `V6SERVE_SHARDS`
//! (default 8).

use std::sync::Arc;
use std::time::{Duration, Instant};

use v6bench::{MetricsDump, PersistenceBench, ServeBench, WireBench, WireMixRecord};
use v6hitlist::collect::active::collect_hitlist;
use v6hitlist::HitlistService;
use v6netsim::{World, WorldConfig};
use v6scan::HitlistCampaignConfig;
use v6serve::{
    loadgen, HitlistStore, Ingestor, LoadSpec, PublicationUpdate, QueryEngine, SnapshotBuilder,
    StoreConfig,
};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Publishes the campaign's weekly sequence to an in-memory store and
/// to a durable one (fsync on — that *is* the measured cost), then
/// times a cold recovery of the durable store after a simulated crash.
fn persistence_bench(service: &HitlistService, shards: usize) -> PersistenceBench {
    let mut weeks: Vec<(u32, Vec<std::net::Ipv6Addr>)> = service
        .snapshots
        .iter()
        .map(|w| (w.week as u32, w.new_responsive.clone()))
        .collect();
    // Tiny campaigns only yield a couple of weeks; pad with synthetic
    // ones so the log and the cold recovery cover a real epoch chain.
    let mut next_week = weeks.last().map_or(0, |(w, _)| w + 1);
    while weeks.len() < 8 {
        let addrs: Vec<std::net::Ipv6Addr> = (0..512u128)
            .map(|i| {
                std::net::Ipv6Addr::from(
                    (0x2001_0db8u128 << 96) | (u128::from(next_week) << 40) | i,
                )
            })
            .collect();
        weeks.push((next_week, addrs));
        next_week += 1;
    }
    let build_through = |upto: usize| {
        let mut b = SnapshotBuilder::new("persist-bench", shards);
        for (week, addrs) in &weeks[..=upto] {
            b.add_week(*week, addrs);
        }
        b.build()
    };
    let epochs = weeks.len() as u64;

    // Identical pre-built sequences, so the timed loops measure publish
    // cost only, not snapshot construction.
    let seq_mem: Vec<_> = (0..weeks.len()).map(build_through).collect();
    let seq_dur: Vec<_> = (0..weeks.len()).map(build_through).collect();
    let published_addrs: u64 = seq_dur.iter().map(|s| s.len()).sum();

    let mem = HitlistStore::new("persist-bench", shards);
    let t0 = Instant::now();
    for snap in seq_mem {
        mem.publish(snap).expect("in-memory publish");
    }
    let memory_publish_ms = t0.elapsed().as_secs_f64() * 1e3;

    let dir = v6store::scratch_dir("bench-serve-persist");
    let cfg = StoreConfig::new(&dir).checkpoint_every(0);
    let store =
        HitlistStore::persistent("persist-bench", shards, cfg.clone()).expect("durable store");
    let t0 = Instant::now();
    for snap in seq_dur {
        store.publish(snap).expect("durable publish");
    }
    let durable_publish_ms = t0.elapsed().as_secs_f64() * 1e3;
    let final_checksum = store.snapshot().content_checksum();
    let writer_metrics = MetricsDump::from_snapshot(&store.metrics().registry().snapshot());
    let log_bytes = std::fs::metadata(dir.join(v6store::LOG_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    drop(store); // crash: no shutdown step, just the log on disk

    let t0 = Instant::now();
    let (recovered, report) = HitlistStore::recover(cfg).expect("cold recovery");
    let cold_recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        recovered.snapshot().content_checksum(),
        final_checksum,
        "cold recovery diverged from the last published state"
    );
    assert_eq!(report.truncated_bytes, 0, "clean log must not truncate");
    let recovery_metrics = MetricsDump::from_snapshot(&recovered.metrics().registry().snapshot());
    std::fs::remove_dir_all(&dir).ok();

    PersistenceBench {
        epochs,
        memory_publish_ms,
        durable_publish_ms,
        log_bytes,
        cold_recovery_ms,
        recovered_epoch: report.recovered_epoch,
        replayed: report.replayed,
        addrs_per_sec: published_addrs as f64 / (durable_publish_ms / 1e3).max(1e-9),
        writer_metrics,
        recovery_metrics,
    }
}

/// One scripted wire client driven on simulated time: a
/// [`v6wire::WireClient`] over an in-memory duplex pipe plus its
/// server-side connection.
struct WireActor {
    client: v6wire::WireClient<v6wire::PipeTransport>,
    conn: v6wire::ServerConn,
    server_end: v6wire::PipeTransport,
    interval_us: u64,
    /// `Some((period, active))`: send only during the first `active`
    /// microseconds of each `period` (a burst scraper's duty cycle).
    duty: Option<(u64, u64)>,
    next_send_us: u64,
    probe: u128,
    sent: u64,
    answered: u64,
    throttled: u64,
    shed: u64,
}

impl WireActor {
    fn new(
        server: &Arc<v6wire::WireServer>,
        client_id: u64,
        rate_per_sec: u64,
        probe: u128,
    ) -> Self {
        let (client_end, server_end) = v6wire::duplex();
        WireActor {
            client: v6wire::WireClient::connect(client_end, 0).expect("wire connect"),
            conn: server.open_connection(client_id),
            server_end,
            interval_us: 1_000_000 / rate_per_sec.max(1),
            duty: None,
            next_send_us: 0,
            probe,
            sent: 0,
            answered: 0,
            throttled: 0,
            shed: 0,
        }
    }

    fn with_duty(mut self, period_us: u64, active_us: u64) -> Self {
        self.duty = Some((period_us, active_us));
        self
    }

    /// Advances to `now_us`: sends due requests, pumps the server,
    /// tallies responses by verdict.
    fn step(&mut self, now_us: u64) {
        while self.next_send_us <= now_us {
            let due = self.next_send_us;
            self.next_send_us += self.interval_us;
            if let Some((period, active)) = self.duty {
                if due % period >= active {
                    continue; // quiet part of the duty cycle
                }
            }
            self.client
                .send(
                    &v6wire::Request::Membership {
                        addr: self.probe ^ u128::from(self.sent),
                    },
                    now_us,
                )
                .expect("wire send");
            self.sent += 1;
        }
        self.conn
            .pump(&mut self.server_end, now_us)
            .expect("wire pump");
        for (_, resp) in self.client.poll(now_us).expect("wire poll") {
            match resp {
                v6wire::Response::Throttled { .. } => self.throttled += 1,
                v6wire::Response::Shed { .. } => self.shed += 1,
                _ => self.answered += 1,
            }
        }
    }

    fn record(actors: &[&WireActor], label: &str, p99_ns: u64) -> WireMixRecord {
        WireMixRecord {
            label: label.to_string(),
            clients: actors.len(),
            sent: actors.iter().map(|a| a.sent).sum(),
            answered: actors.iter().map(|a| a.answered).sum(),
            throttled: actors.iter().map(|a| a.throttled).sum(),
            shed: actors.iter().map(|a| a.shed).sum(),
            p99_ns,
        }
    }
}

/// The adversarial front-door run: steady pollers under a query flood
/// and a burst scraper, against a no-flood baseline of the same
/// pollers. Asserts the fairness contract (zero sheds/throttles for
/// the steady population, bounded p99 degradation, flood classified
/// and contained) and returns the `BENCH_serve.json` rows.
fn wire_bench(store: &Arc<HitlistStore>) -> WireBench {
    use v6wire::ClientClass;

    let probe = store
        .snapshot()
        .shards()
        .iter()
        .flat_map(|s| s.iter_bits().next())
        .next()
        .unwrap_or(0x2001_0db8u128 << 96);
    let ticks = 2_000u64; // two simulated seconds, 1 ms steps
    let steady_rate = 100;

    // Baseline: the steady pollers alone.
    let baseline_server = v6wire::WireServer::new(
        QueryEngine::new(store.clone()),
        v6wire::AdmissionConfig::default(),
        0,
    );
    let mut baseline: Vec<WireActor> = (0..3)
        .map(|i| WireActor::new(&baseline_server, 10 + i, steady_rate, probe))
        .collect();
    for tick in 0..=ticks {
        let now = tick * 1_000;
        for a in &mut baseline {
            a.step(now);
        }
    }
    let baseline_steady_p99_ns = baseline_server.metrics().p99_ns(ClientClass::Steady);

    // Adversarial mix: the same pollers plus a 20k req/s flooder and a
    // burst scraper (dense 100 ms bursts at 1.5k req/s every 800 ms).
    let server = v6wire::WireServer::new(
        QueryEngine::new(store.clone()),
        v6wire::AdmissionConfig::default(),
        0,
    );
    let mut pollers: Vec<WireActor> = (0..3)
        .map(|i| WireActor::new(&server, 10 + i, steady_rate, probe))
        .collect();
    let mut flooder = WireActor::new(&server, 666, 20_000, probe);
    let mut scraper = WireActor::new(&server, 42, 1_500, probe).with_duty(800_000, 100_000);
    for tick in 0..=ticks {
        let now = tick * 1_000;
        flooder.step(now);
        scraper.step(now);
        for a in &mut pollers {
            a.step(now);
        }
    }

    // The fairness contract, enforced.
    for (i, p) in pollers.iter().enumerate() {
        assert_eq!(
            p.answered, p.sent,
            "steady poller {i} lost answers under the flood"
        );
        assert_eq!(p.throttled, 0, "steady poller {i} was throttled");
        assert_eq!(p.shed, 0, "steady poller {i} was shed");
    }
    assert_eq!(
        flooder.answered + flooder.throttled + flooder.shed,
        flooder.sent,
        "flooder saw silent drops"
    );
    let info = server.client_info(666).expect("flooder tracked");
    assert_eq!(info.class, ClientClass::Flood, "flooder never classified");
    let flood_classified_at_frame = info
        .classified_at_frame
        .expect("flood classification frame");
    let adversarial_steady_p99_ns = server.metrics().p99_ns(ClientClass::Steady);
    // Degradation budget: 2x the no-flood baseline, with a floor that
    // keeps the gate meaningful when both numbers are sub-microsecond.
    let budget = (2 * baseline_steady_p99_ns).max(200_000);
    assert!(
        adversarial_steady_p99_ns <= budget,
        "steady p99 degraded past budget under flood: {adversarial_steady_p99_ns}ns \
         vs baseline {baseline_steady_p99_ns}ns"
    );

    let adversarial = vec![
        WireActor::record(
            &pollers.iter().collect::<Vec<_>>(),
            "steady",
            adversarial_steady_p99_ns,
        ),
        WireActor::record(
            &[&scraper],
            "burst",
            server.metrics().p99_ns(ClientClass::Burst),
        ),
        WireActor::record(
            &[&flooder],
            "flood",
            server.metrics().p99_ns(ClientClass::Flood),
        ),
    ];
    WireBench {
        baseline_steady_p99_ns,
        adversarial_steady_p99_ns,
        admitted: server.metrics().admitted(),
        throttled: server.metrics().throttled(),
        shed: server.metrics().shed(),
        flood_classified_at_frame,
        adversarial,
        metrics: MetricsDump::from_snapshot(&server.metrics().registry().snapshot()),
    }
}

/// A short healthy-cluster run for `BENCH_serve.json`: three weekly
/// publish waves across every partition, one follower killed mid-run
/// (crash recovery restart), a hedged-read sweep, and a convergence
/// pass that must end with byte-identical replicas.
fn cluster_bench(seed: u64) -> v6bench::ClusterBench {
    use v6cluster::{partition_of, Cluster, ClusterConfig, PublishOutcome, ReadStatus};

    let cfg = ClusterConfig::new(3, 2, seed);
    let partitions = cfg.partitions;
    let nodes = cfg.nodes;
    let replication = cfg.replication;
    let mut cluster = Cluster::new(cfg).expect("cluster scratch dirs");

    // Rejection-sample an address that routes to `pid` (the variable
    // bits sit inside the top /48, so this converges in a few draws).
    let addr = |pid: u32, tag: u64| -> u128 {
        for j in 0u64..4096 {
            let h = v6netsim::rng::hash64(seed ^ tag ^ (j << 52), b"cluster-bench-addr");
            let bits = (0x2001u128 << 112) | (u128::from(h) << 40) | u128::from(tag & 0xffff);
            if partition_of(bits, partitions) == pid {
                return bits;
            }
        }
        unreachable!("rejection sampling must land within 4096 draws")
    };

    let mut epochs_published = 0u64;
    let mut entries_committed = 0u64;
    let publish_t0 = Instant::now();
    for week in 1..=3u64 {
        for pid in 0..partitions {
            let entries: Vec<(u128, u32)> = (1..=week)
                .flat_map(|w| (0..4u64).map(move |i| (w, i)))
                .map(|(w, i)| (addr(pid, (u64::from(pid) << 20) | (w << 8) | i), w as u32))
                .collect();
            let count = entries.len() as u64;
            if let PublishOutcome::Committed { .. } = cluster.publish(pid, week, entries, vec![]) {
                epochs_published += 1;
                entries_committed += count;
            }
        }
        for _ in 0..2 {
            cluster.pump_round();
        }
        if week == 2 {
            cluster.kill("n2");
            cluster.pump_round();
        }
    }
    let publish_secs = publish_t0.elapsed().as_secs_f64();
    for pid in 0..partitions {
        let _ = cluster.read(addr(pid, (u64::from(pid) << 20) | (1 << 8)));
    }
    let report = cluster.converge(128);
    assert!(report.converged, "bench cluster failed to converge");
    assert_eq!(
        cluster.unlabeled_stale_reads(),
        0,
        "a stale answer was labeled fresh"
    );

    let audit = cluster.read_audit();
    let count = |s: ReadStatus| audit.iter().filter(|r| r.status == s).count() as u64;
    let event_count = |marker: &str| {
        cluster
            .events()
            .iter()
            .filter(|e| e.contains(marker))
            .count() as u64
    };
    v6bench::ClusterBench {
        nodes,
        replication,
        partitions,
        epochs_published,
        reads: audit.len() as u64,
        reads_fresh: count(ReadStatus::Fresh),
        reads_degraded: count(ReadStatus::Degraded),
        reads_unavailable: count(ReadStatus::Unavailable),
        unlabeled_stale_reads: cluster.unlabeled_stale_reads() as u64,
        kills: event_count(": KILL "),
        restarts: event_count(": RESTART "),
        converged: report.converged,
        converge_rounds: report.rounds,
        combined_checksum: format!("{:#018x}", report.combined_checksum),
        addrs_per_sec: entries_committed as f64 / publish_secs.max(1e-9),
        metrics: MetricsDump::from_snapshot(&cluster.metrics()),
    }
}

/// Corpus sizes the streaming comparison runs at (16x end to end, so
/// linear batch growth and flat incremental cost are unmistakable).
const STREAM_SCALES: [usize; 3] = [1 << 13, 1 << 15, 1 << 17];

/// Changes in the measured delta at every scale: 1024 adds, 512 week
/// changes, 512 removals.
const STREAM_DELTA_ADDS: usize = 1024;
const STREAM_DELTA_CHURN: usize = 512;

/// A deterministic corpus address: spread over two routed /32s plus
/// unrouted space, several subnets, a mix of EUI-64 and opaque IIDs —
/// the shape every `v6stream` operator has behavior on.
fn stream_addr(i: usize) -> u128 {
    let prefix: u128 = [0x2a00_0001, 0x2a00_0002, 0x3fff_0001][i % 3];
    let subnet = (i % 5) as u128;
    let iid: u128 = if i.is_multiple_of(4) {
        let mac = v6addr::Mac::from_u64(0x0050_5600_0000 | (i as u64 / 7));
        u128::from(v6addr::Iid::from_mac(mac).as_u64())
    } else {
        u128::from((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    };
    (prefix << 96) | (subnet << 64) | iid
}

/// The incremental-vs-batch comparison behind the `"stream"` block:
/// one fixed-size delta folded into live operators over corpora of
/// growing size, against a batch rebuild of the same operators. The
/// equivalence invariant is re-asserted at every scale.
fn stream_bench() -> v6bench::StreamBench {
    use v6store::replica::{self};
    use v6store::{EpochState, EpochView};
    use v6stream::{fold_content, Analytics, AsTag, Offer, PrefixAsTable, SharedResolver};

    let resolver: SharedResolver = Arc::new(PrefixAsTable::new(vec![
        (
            0x2a00_0001u128 << 96,
            32,
            AsTag {
                index: 1,
                country: u16::from_be_bytes(*b"DE"),
            },
        ),
        (
            0x2a00_0002u128 << 96,
            32,
            AsTag {
                index: 2,
                country: u16::from_be_bytes(*b"JP"),
            },
        ),
    ]));
    let view = |epoch: u64, entries: &[(u128, u32)]| -> (u64, u64) {
        let checksum = entries
            .iter()
            .fold(0u64, |acc, &(bits, week)| fold_content(acc, bits, week));
        (epoch, checksum)
    };

    let mut scales = Vec::new();
    for &n in &STREAM_SCALES {
        // Base corpus: n addresses, weeks 0..8, sorted and deduped the
        // way an epoch publication carries them.
        let mut base: Vec<(u128, u32)> = (0..n).map(|i| (stream_addr(i), (i % 8) as u32)).collect();
        base.sort_unstable();
        base.dedup_by_key(|&mut (bits, _)| bits);
        // Final corpus: the same fixed delta at every scale — adds in a
        // disjoint tag space, week changes and removals on indices that
        // exist at the smallest scale.
        let mut final_entries = base.clone();
        for i in 0..STREAM_DELTA_CHURN {
            final_entries[i * 4].1 = 9; // week change
        }
        let removed: Vec<u128> = (0..STREAM_DELTA_CHURN).map(|i| base[i * 4 + 1].0).collect();
        final_entries.retain(|(bits, _)| !removed.contains(bits));
        for i in 0..STREAM_DELTA_ADDS {
            final_entries.push((stream_addr(usize::MAX / 2 + i), 9));
        }
        final_entries.sort_unstable();
        final_entries.dedup_by_key(|&mut (bits, _)| bits);

        let mut state = EpochState::default();
        let (e1, c1) = view(1, &base);
        let d1 = replica::delta_between(
            &state,
            &EpochView {
                epoch: e1,
                week: 8,
                content_checksum: c1,
                missing_shards: &[],
                entries: &base,
                aliases: &[],
            },
        );
        replica::apply(&mut state, &d1);
        let (e2, c2) = view(2, &final_entries);
        let d2 = replica::delta_between(
            &state,
            &EpochView {
                epoch: e2,
                week: 9,
                content_checksum: c2,
                missing_shards: &[],
                entries: &final_entries,
                aliases: &[],
            },
        );
        let delta_size = d2.removed.len() + d2.added.len();

        // Best-of-3 incremental: fresh driver, untimed warm-up to the
        // base epoch, then the timed fold of the measured delta.
        let mut incremental_ms = f64::MAX;
        let mut driver = v6stream::StreamDriver::new(resolver.clone());
        for _ in 0..3 {
            let mut d = v6stream::StreamDriver::new(resolver.clone());
            assert!(matches!(d.feed(&d1), Offer::Applied(_)));
            let t0 = Instant::now();
            let offer = d.feed(&d2);
            incremental_ms = incremental_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(offer, Offer::Applied(delta_size));
            driver = d;
        }

        // Best-of-3 batch rebuild over the full final corpus.
        let mut batch_ms = f64::MAX;
        let mut batch = Analytics::from_entries(resolver.clone(), &final_entries);
        for _ in 0..3 {
            let t0 = Instant::now();
            batch = Analytics::from_entries(resolver.clone(), &final_entries);
            batch_ms = batch_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }

        let checksums_equal = driver.analytics().checksums() == batch.checksums();
        assert!(
            checksums_equal,
            "streaming diverged from batch at corpus size {n}"
        );
        scales.push(v6bench::StreamScaleRecord {
            corpus: final_entries.len(),
            delta: delta_size,
            incremental_ms,
            batch_ms,
            speedup: batch_ms / incremental_ms.max(1e-9),
            checksums_equal,
        });
    }

    let first = &scales[0];
    let last = &scales[scales.len() - 1];
    // Generous flatness budget (the corpus grew 16x; timer noise on a
    // loaded 1-core runner must not fail the build).
    let flat = last.incremental_ms <= first.incremental_ms * 8.0 + 0.5;
    let batch_growth = last.batch_ms / first.batch_ms.max(1e-9);
    v6bench::StreamBench {
        scales,
        flat,
        batch_growth,
        metrics: MetricsDump::from_global(),
    }
}

fn main() {
    let seed = v6bench::seed_from_env();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Floor keeps the mid-run-publish assertions meaningful: far fewer
    // queries and the publisher may land after the run already ended.
    let queries = env_u64("V6SERVE_QUERIES", 1_000_000).max(10_000);
    let threads = env_u64("V6SERVE_THREADS", 4).max(1) as usize;
    let shards = env_u64("V6SERVE_SHARDS", 8).next_power_of_two() as usize;

    eprintln!("[serve] building tiny world + 3-week campaign (seed={seed}) …");
    let world = World::build(WorldConfig::tiny(), seed);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("IPv6 Hitlist Service", &hl.campaign);
    eprintln!(
        "[serve] campaign: {} weeks, {} responsive, {} aliased prefixes",
        service.snapshots.len(),
        service.total_responsive(),
        service.aliased.len()
    );

    // Hold back the final week; it becomes the mid-run publication.
    let mut initial = service.clone();
    let held_back = if initial.snapshots.len() >= 2 {
        initial.snapshots.pop()
    } else {
        None
    };

    // The tiny campaign publishes a few hundred addresses spread one
    // per /64 — nothing like the paper's corpus, where server farms
    // and EUI-64 planes pack many IIDs under few /64s (the shape the
    // compressed tier exists for). Fold a clustered bulk week into the
    // initial content so the store (and its `serve.store.bytes.*`
    // gauges) is exercised at a realistic density: 4096 /64s under
    // distinct /48s, 64 structured IIDs each.
    if let Some(first) = initial.snapshots.first_mut() {
        for net in 0..4096u128 {
            for iid in 0..64u128 {
                first.new_responsive.push(std::net::Ipv6Addr::from(
                    (0x2001_0db8u128 << 96) | (net << 80) | ((net % 7) << 64) | (iid << 4) | 1,
                ));
            }
        }
        eprintln!(
            "[serve] overlaid clustered bulk week: 4096 /64s x 64 IIDs ({} addresses total)",
            first.new_responsive.len()
        );
    }

    // Ingest the initial weeks through the concurrent pipeline.
    let store = Arc::new(HitlistStore::new(&service.name, shards));
    let ingest = Ingestor::default().spawn(store.clone());
    ingest
        .submit(PublicationUpdate::Service(initial))
        .expect("ingest pipeline alive");
    let stats = ingest.finish();
    eprintln!(
        "[serve] ingested {} updates / {} unique addresses across {} epochs ({} dups coalesced)",
        stats.updates, stats.unique_addresses, stats.epochs_published, stats.duplicates
    );

    // Pre-build the next epoch so the publisher's only mid-run work is
    // validate + swap (the part the harness is exercising).
    let base = store.snapshot();
    let mut builder = SnapshotBuilder::new(base.name(), shards);
    builder.merge_snapshot(&base);
    match &held_back {
        Some(week) => builder.add_week(week.week as u32, &week.new_responsive),
        None => {
            // Single-week campaign: synthesize a small follow-up week so
            // the mid-run publish still happens.
            let next = base.week() as u32 + 1;
            for i in 0..1024u128 {
                builder.add_bits((0x2001_0db8u128 << 96) | (i << 40) | i, next);
            }
        }
    }
    let next_snapshot = builder.build();

    let spec = LoadSpec {
        queries,
        threads,
        seed,
        ..Default::default()
    };
    eprintln!(
        "[serve] replaying {queries} queries across {threads} threads against {shards} shards …"
    );

    // Publisher: wait until the load is warm (a quarter of the target
    // queries served), then publish the new weekly epoch while the
    // clients keep reading.
    let publisher = {
        let store = store.clone();
        let threshold = store.metrics().queries_total() + queries / 4;
        std::thread::spawn(move || {
            while store.metrics().queries_total() < threshold {
                std::thread::sleep(Duration::from_micros(200));
            }
            store
                .publish(next_snapshot)
                .expect("mid-run publish must succeed")
        })
    };

    let engine = QueryEngine::new(store.clone());
    let report = loadgen::run(&engine, &spec);
    let receipt = publisher.join().expect("publisher thread panicked");

    println!("== v6serve load report ==");
    println!("{report}");
    println!(
        "publish: epoch {} ({} addresses), validate {:?}, swap {:?}",
        receipt.epoch, receipt.addresses, receipt.validate, receipt.swap
    );
    print!("{}", store.metrics().render_text());

    // The concurrency contract, enforced:
    assert!(
        report.queries >= queries,
        "undershot the query target: {} < {queries}",
        report.queries
    );
    assert_eq!(
        report.verification_failures, 0,
        "a known-present address was reported absent during the run"
    );
    assert!(
        report.last_epoch > report.first_epoch,
        "the weekly publish did not land during the run"
    );
    assert!(
        report.queries_after_publish > 0,
        "no query observed the new epoch; publish did not overlap the load"
    );
    assert!(
        receipt.swap < Duration::from_millis(100),
        "epoch swap blocked too long: {:?}",
        receipt.swap
    );
    let final_snap = store.snapshot();
    assert!(final_snap.verify_integrity(), "final snapshot corrupted");
    assert_eq!(final_snap.epoch(), receipt.epoch);

    // Durability cost: persistence-on vs. -off publish + cold recovery.
    eprintln!("[serve] timing persistence-on/off publish + cold recovery …");
    let persistence = persistence_bench(&service, shards);
    println!(
        "persistence: {} epochs, publish {:.2} ms in-memory vs {:.2} ms durable \
         ({} log bytes, {:.0} addrs/s), cold recovery {:.2} ms ({} replayed, epoch {})",
        persistence.epochs,
        persistence.memory_publish_ms,
        persistence.durable_publish_ms,
        persistence.log_bytes,
        persistence.addrs_per_sec,
        persistence.cold_recovery_ms,
        persistence.replayed,
        persistence.recovered_epoch,
    );

    // Adversarial front-door run over the same store.
    eprintln!("[serve] driving the wire front door: steady pollers vs flood + burst scraper …");
    let wire = wire_bench(&store);
    println!(
        "wire: steady p99 {} ns baseline -> {} ns under flood; {} admitted, {} throttled, \
         {} shed; flood classified at frame {}",
        wire.baseline_steady_p99_ns,
        wire.adversarial_steady_p99_ns,
        wire.admitted,
        wire.throttled,
        wire.shed,
        wire.flood_classified_at_frame,
    );
    for row in &wire.adversarial {
        println!(
            "wire[{}]: {} clients, {} sent, {} answered, {} throttled, {} shed, p99 {} ns",
            row.label, row.clients, row.sent, row.answered, row.throttled, row.shed, row.p99_ns
        );
    }

    // A short multi-node run over the same publish/replicate machinery.
    eprintln!("[serve] running the 3-node cluster: publish, kill, hedged reads, converge …");
    let cluster = cluster_bench(seed);
    println!(
        "cluster: {} nodes R={} over {} partitions, {} epochs committed, reads {} \
         ({} fresh / {} degraded / {} unavailable), {} kill(s) / {} restart(s), \
         converged in {} round(s), combined {}",
        cluster.nodes,
        cluster.replication,
        cluster.partitions,
        cluster.epochs_published,
        cluster.reads,
        cluster.reads_fresh,
        cluster.reads_degraded,
        cluster.reads_unavailable,
        cluster.kills,
        cluster.restarts,
        cluster.converge_rounds,
        cluster.combined_checksum,
    );
    println!(
        "cluster throughput: {:.0} addrs/s committed",
        cluster.addrs_per_sec
    );

    // Incremental vs. batch analytics over growing corpora.
    eprintln!("[serve] timing incremental stream operators vs batch rebuild at 3 scales …");
    let stream = stream_bench();
    for row in &stream.scales {
        println!(
            "stream[{}]: delta {} -> incremental {:.3} ms vs batch {:.3} ms (speedup {:.1}x, \
             checksums_equal {})",
            row.corpus,
            row.delta,
            row.incremental_ms,
            row.batch_ms,
            row.speedup,
            row.checksums_equal,
        );
    }
    println!(
        "stream: incremental flat={} across 16x corpus growth, batch grew {:.1}x",
        stream.flat, stream.batch_growth
    );

    // Machine-readable artifact: run parameters + the store's registry
    // (query counters and latency histograms) + durability timings.
    let bench = ServeBench {
        seed,
        queries,
        threads,
        shards,
        cores,
        metrics: MetricsDump::from_snapshot(&store.metrics().registry().snapshot()),
        persistence,
        wire,
        cluster,
        stream,
    };
    assert!(
        bench
            .metrics
            .counter("serve.query.batch_addresses")
            .is_some(),
        "store registry missing serve.query.* counters"
    );
    // The compressed tier's footprint, as published by the store:
    // raw = what Vec<u128>+Vec<u32> columns would cost, compressed =
    // what the prefix-compressed runs actually hold.
    let gauge = |name: &str| -> i64 {
        bench
            .metrics
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("store registry missing {name} gauge"))
            .value
    };
    let raw_bytes = gauge("serve.store.bytes.raw");
    let compressed_bytes = gauge("serve.store.bytes.compressed");
    assert!(raw_bytes > 0, "published store reports no raw bytes");
    println!(
        "store bytes: raw {} -> compressed {} (ratio {:.3})",
        raw_bytes,
        compressed_bytes,
        compressed_bytes as f64 / raw_bytes as f64
    );
    let json = serde_json::to_string_pretty(&bench).expect("serialize serve bench");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    let back: ServeBench =
        serde_json::from_str(&std::fs::read_to_string("BENCH_serve.json").expect("read back"))
            .expect("BENCH_serve.json is not valid JSON");
    assert_eq!(back, bench, "BENCH_serve.json round-trip mismatch");
    println!("wrote BENCH_serve.json");
    println!(
        "OK: publish overlapped the run ({} ops on epoch {}), swap {:?}, reads stayed consistent",
        report.queries_after_publish, report.last_epoch, receipt.swap
    );
}
