//! Load harness for the `v6serve` query subsystem.
//!
//! Builds a hitlist from a tiny-world campaign, ingests all but the
//! final week into a [`v6serve::HitlistStore`], then replays millions of
//! seeded queries from N client threads while a publisher thread pushes
//! the held-back final week as a fresh epoch mid-run. Prints throughput
//! and latency percentiles, and asserts the concurrency contract: the
//! publish overlapped the run, never blocked readers for long, and no
//! known-present address was ever reported absent.
//!
//! Env knobs: `V6HL_SEED` (default 2022), `V6SERVE_QUERIES` (default
//! 1_000_000), `V6SERVE_THREADS` (default 4), `V6SERVE_SHARDS`
//! (default 8).

use std::sync::Arc;
use std::time::Duration;

use v6bench::{MetricsDump, ServeBench};
use v6hitlist::collect::active::collect_hitlist;
use v6hitlist::HitlistService;
use v6netsim::{World, WorldConfig};
use v6scan::HitlistCampaignConfig;
use v6serve::{
    loadgen, HitlistStore, Ingestor, LoadSpec, PublicationUpdate, QueryEngine, SnapshotBuilder,
};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = v6bench::seed_from_env();
    // Floor keeps the mid-run-publish assertions meaningful: far fewer
    // queries and the publisher may land after the run already ended.
    let queries = env_u64("V6SERVE_QUERIES", 1_000_000).max(10_000);
    let threads = env_u64("V6SERVE_THREADS", 4).max(1) as usize;
    let shards = env_u64("V6SERVE_SHARDS", 8).next_power_of_two() as usize;

    eprintln!("[serve] building tiny world + 3-week campaign (seed={seed}) …");
    let world = World::build(WorldConfig::tiny(), seed);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("IPv6 Hitlist Service", &hl.campaign);
    eprintln!(
        "[serve] campaign: {} weeks, {} responsive, {} aliased prefixes",
        service.snapshots.len(),
        service.total_responsive(),
        service.aliased.len()
    );

    // Hold back the final week; it becomes the mid-run publication.
    let mut initial = service.clone();
    let held_back = if initial.snapshots.len() >= 2 {
        initial.snapshots.pop()
    } else {
        None
    };

    // Ingest the initial weeks through the concurrent pipeline.
    let store = Arc::new(HitlistStore::new(&service.name, shards));
    let ingest = Ingestor::default().spawn(store.clone());
    ingest
        .submit(PublicationUpdate::Service(initial))
        .expect("ingest pipeline alive");
    let stats = ingest.finish();
    eprintln!(
        "[serve] ingested {} updates / {} unique addresses across {} epochs ({} dups coalesced)",
        stats.updates, stats.unique_addresses, stats.epochs_published, stats.duplicates
    );

    // Pre-build the next epoch so the publisher's only mid-run work is
    // validate + swap (the part the harness is exercising).
    let base = store.snapshot();
    let mut builder = SnapshotBuilder::new(base.name(), shards);
    builder.merge_snapshot(&base);
    match &held_back {
        Some(week) => builder.add_week(week.week as u32, &week.new_responsive),
        None => {
            // Single-week campaign: synthesize a small follow-up week so
            // the mid-run publish still happens.
            let next = base.week() as u32 + 1;
            for i in 0..1024u128 {
                builder.add_bits((0x2001_0db8u128 << 96) | (i << 40) | i, next);
            }
        }
    }
    let next_snapshot = builder.build();

    let spec = LoadSpec {
        queries,
        threads,
        seed,
        ..Default::default()
    };
    eprintln!(
        "[serve] replaying {queries} queries across {threads} threads against {shards} shards …"
    );

    // Publisher: wait until the load is warm (a quarter of the target
    // queries served), then publish the new weekly epoch while the
    // clients keep reading.
    let publisher = {
        let store = store.clone();
        let threshold = store.metrics().queries_total() + queries / 4;
        std::thread::spawn(move || {
            while store.metrics().queries_total() < threshold {
                std::thread::sleep(Duration::from_micros(200));
            }
            store
                .publish(next_snapshot)
                .expect("mid-run publish must succeed")
        })
    };

    let engine = QueryEngine::new(store.clone());
    let report = loadgen::run(&engine, &spec);
    let receipt = publisher.join().expect("publisher thread panicked");

    println!("== v6serve load report ==");
    println!("{report}");
    println!(
        "publish: epoch {} ({} addresses), validate {:?}, swap {:?}",
        receipt.epoch, receipt.addresses, receipt.validate, receipt.swap
    );
    println!("{}", store.metrics().report());

    // The concurrency contract, enforced:
    assert!(
        report.queries >= queries,
        "undershot the query target: {} < {queries}",
        report.queries
    );
    assert_eq!(
        report.verification_failures, 0,
        "a known-present address was reported absent during the run"
    );
    assert!(
        report.last_epoch > report.first_epoch,
        "the weekly publish did not land during the run"
    );
    assert!(
        report.queries_after_publish > 0,
        "no query observed the new epoch; publish did not overlap the load"
    );
    assert!(
        receipt.swap < Duration::from_millis(100),
        "epoch swap blocked too long: {:?}",
        receipt.swap
    );
    let final_snap = store.snapshot();
    assert!(final_snap.verify_integrity(), "final snapshot corrupted");
    assert_eq!(final_snap.epoch(), receipt.epoch);

    // Machine-readable artifact: run parameters + the store's registry
    // (query counters and latency histograms).
    let bench = ServeBench {
        seed,
        queries,
        threads,
        shards,
        metrics: MetricsDump::from_snapshot(&store.metrics().registry().snapshot()),
    };
    assert!(
        bench
            .metrics
            .counter("serve.query.batch_addresses")
            .is_some(),
        "store registry missing serve.query.* counters"
    );
    let json = serde_json::to_string_pretty(&bench).expect("serialize serve bench");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    let back: ServeBench =
        serde_json::from_str(&std::fs::read_to_string("BENCH_serve.json").expect("read back"))
            .expect("BENCH_serve.json is not valid JSON");
    assert_eq!(back, bench, "BENCH_serve.json round-trip mismatch");
    println!("wrote BENCH_serve.json");
    println!(
        "OK: publish overlapped the run ({} ops on epoch {}), swap {:?}, reads stayed consistent",
        report.queries_after_publish, report.last_epoch, receipt.swap
    );
}
