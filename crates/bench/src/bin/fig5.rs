//! Regenerates the paper's `fig5` result. See `v6bench` docs for env knobs.
fn main() {
    let e = v6bench::run_experiment();
    v6bench::print_experiment(v6bench::experiments::fig5(&e));
}
