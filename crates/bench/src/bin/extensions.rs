//! Regenerates the extension experiments (§4.1 ASdb composition,
//! rotation inference, TGA evaluation, outage detection).
fn main() {
    let e = v6bench::run_experiment();
    v6bench::print_experiment(v6bench::experiments::extensions(&e));
}
