//! # v6bench — the benchmark and reproduction harness
//!
//! One binary per table/figure of *IPv6 Hitlists at Scale* (SIGCOMM
//! 2023), each printing the regenerated result next to the paper's
//! published numbers, plus `run_all`, which executes every experiment
//! and rewrites `EXPERIMENTS.md`.
//!
//! Scale and seed come from the environment:
//!
//! * `V6HL_SCALE` — `tiny` | `default` (default) | `paper`
//! * `V6HL_SEED` — u64 master seed (default 2022)
//!
//! Run with `--release`; the default scale completes in seconds, `paper`
//! in minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use serde::{Deserialize, Serialize};
use v6hitlist::{Experiment, ExperimentConfig};
use v6netsim::WorldConfig;
use v6scan::{CaidaCampaignConfig, HitlistCampaignConfig};

/// One counter from a metrics dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name (e.g. `collect.observations`).
    pub name: String,
    /// Final counter value.
    pub value: u64,
}

/// One gauge from a metrics dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name (e.g. `par.dag.ready_peak`).
    pub name: String,
    /// Final gauge value.
    pub value: i64,
}

/// One latency histogram's summary from a metrics dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name (e.g. `par.dag.stage_latency`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
    /// Median (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile (bucket upper bound), nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile (bucket upper bound), nanoseconds.
    pub p99_ns: u64,
}

/// A serializable [`v6obs::MetricsSnapshot`], embedded in the
/// `BENCH_*.json` artifacts.
///
/// The vendored `serde_json` has no dynamic `Value` type, so the
/// snapshot is mirrored into these typed entries instead. Counter values
/// are data-derived and reproducible; histogram fields are timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsDump {
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All histogram summaries, sorted by name.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsDump {
    /// Mirrors a registry snapshot into the serializable form.
    pub fn from_snapshot(snap: &v6obs::MetricsSnapshot) -> MetricsDump {
        MetricsDump {
            counters: snap
                .counters
                .iter()
                .map(|(name, value)| CounterEntry {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|(name, value)| GaugeEntry {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|(name, h)| HistogramEntry {
                    name: name.clone(),
                    count: h.count,
                    sum_ns: h.sum_ns,
                    max_ns: h.max_ns,
                    p50_ns: h.p50_ns,
                    p90_ns: h.p90_ns,
                    p99_ns: h.p99_ns,
                })
                .collect(),
        }
    }

    /// The process-global registry's current state.
    pub fn from_global() -> MetricsDump {
        MetricsDump::from_snapshot(&v6obs::global().snapshot())
    }

    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// One pipeline stage's wall time at both thread counts, as recorded in
/// `BENCH_pipeline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Stage name ("world", "corpus", "hitlist", …).
    pub name: String,
    /// Wall milliseconds with 1 thread.
    pub threads1_ms: f64,
    /// Wall milliseconds with N threads.
    pub threadsn_ms: f64,
}

/// One labeled call site's adaptive-cutoff decisions, mirrored from the
/// `par.cutoff.<site>.{inline,parallel}` counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutoffRecord {
    /// The `Cost::labeled` site ("collect.shard", "scan.zmap6", "sort", …).
    pub site: String,
    /// Calls that stayed sequential-inline (work below the cutoff).
    pub inline: u64,
    /// Calls that committed to the parallel path.
    pub parallel: u64,
}

impl CutoffRecord {
    /// Extracts every cutoff site from a metrics dump, sorted by site.
    pub fn from_dump(dump: &MetricsDump) -> Vec<CutoffRecord> {
        let mut by_site: Vec<CutoffRecord> = Vec::new();
        for entry in &dump.counters {
            let Some(rest) = entry.name.strip_prefix("par.cutoff.") else {
                continue;
            };
            let Some((site, decision)) = rest.rsplit_once('.') else {
                continue;
            };
            let record = match by_site.iter_mut().find(|r| r.site == site) {
                Some(r) => r,
                None => {
                    by_site.push(CutoffRecord {
                        site: site.to_string(),
                        inline: 0,
                        parallel: 0,
                    });
                    by_site.last_mut().expect("just pushed")
                }
            };
            match decision {
                "inline" => record.inline = entry.value,
                "parallel" => record.parallel = entry.value,
                _ => {}
            }
        }
        by_site.sort_by(|a, b| a.site.cmp(&b.site));
        by_site
    }
}

/// The machine-readable output of the `pipeline` bench binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineBench {
    /// Scale the bench ran at.
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// The parallel run's thread count (defaults to every available
    /// core; `V6_THREADS` overrides).
    pub threads: usize,
    /// Hardware threads available to the process when the bench ran —
    /// the context for reading `speedup` (a 1-core box can't exceed ~1).
    pub cores: usize,
    /// `Experiment::artifact_digest` as hex — identical for both runs by
    /// construction (the bench asserts it before writing this file).
    pub digest: String,
    /// End-to-end wall milliseconds with 1 thread.
    pub total_threads1_ms: f64,
    /// End-to-end wall milliseconds with N threads.
    pub total_threadsn_ms: f64,
    /// `total_threads1_ms / total_threadsn_ms`.
    pub speedup: f64,
    /// Per-stage breakdown.
    pub stages: Vec<StageRecord>,
    /// Adaptive-cutoff decisions per labeled call site, over both runs
    /// (the sequential run records none — it never consults the cutoff).
    pub cutoffs: Vec<CutoffRecord>,
    /// Raw NTP observations collected.
    pub corpus_observations: u64,
    /// True iff the pre-sized corpus buffer never reallocated.
    pub corpus_preallocated: bool,
    /// Process-global registry state after both runs (counters cover the
    /// sequential *and* parallel run combined).
    pub metrics: MetricsDump,
}

/// Durability timings from the `serve` bench: the same publication
/// sequence driven against an in-memory store and a write-ahead-logged
/// one, followed by a timed cold recovery of the durable store after a
/// simulated crash (the writer is dropped with no shutdown step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistenceBench {
    /// Epochs published in each timed sequence.
    pub epochs: u64,
    /// Wall milliseconds publishing the sequence in-memory only.
    pub memory_publish_ms: f64,
    /// Wall milliseconds publishing the same sequence with the epoch
    /// log enabled (frame append + fsync ahead of every swap).
    pub durable_publish_ms: f64,
    /// Bytes the epoch log held when the writer "crashed".
    pub log_bytes: u64,
    /// Wall milliseconds for the cold `HitlistStore::recover`.
    pub cold_recovery_ms: f64,
    /// Epoch the recovery landed on (the bench asserts it matches the
    /// last published epoch and checksum).
    pub recovered_epoch: u64,
    /// Delta frames replayed from the log during recovery.
    pub replayed: u64,
    /// Derived throughput: addresses carried across the durable publish
    /// sequence per wall second (`Σ snapshot sizes / durable seconds`).
    pub addrs_per_sec: f64,
    /// The writer store's registry after the durable sequence
    /// (`store.log.*` counters plus the append-latency histogram).
    pub writer_metrics: MetricsDump,
    /// The recovered store's registry (`store.recover.*` counters plus
    /// the recovery-latency histogram).
    pub recovery_metrics: MetricsDump,
}

/// One client population's wire-level outcome under the adversarial
/// front-door mix, as recorded in `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireMixRecord {
    /// Population label ("steady", "burst", "flood").
    pub label: String,
    /// Concurrent clients in this population.
    pub clients: usize,
    /// Requests sent across the population.
    pub sent: u64,
    /// Requests answered with real responses.
    pub answered: u64,
    /// Requests answered with explicit `Throttled` frames.
    pub throttled: u64,
    /// Requests answered with explicit `Shed` frames.
    pub shed: u64,
    /// Server-side p99 service latency for this behavioral class,
    /// nanoseconds (log2-bucket upper bound; admitted requests only).
    pub p99_ns: u64,
}

/// The adversarial front-door run from the `serve` bench: steady
/// pollers, a burst scraper, and a query-flooder sharing one
/// [`v6wire::WireServer`] on simulated time, against a no-flood
/// baseline of the same pollers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBench {
    /// Steady-poller p99 service latency with no abusive traffic,
    /// nanoseconds.
    pub baseline_steady_p99_ns: u64,
    /// Steady-poller p99 service latency under the adversarial mix,
    /// nanoseconds (the bench asserts it stays within the degradation
    /// budget of the baseline).
    pub adversarial_steady_p99_ns: u64,
    /// Requests admitted during the adversarial run.
    pub admitted: u64,
    /// Requests throttled during the adversarial run (all explicit
    /// `Throttled` frames, never silent drops).
    pub throttled: u64,
    /// Requests shed during the adversarial run (explicit `Shed`
    /// frames).
    pub shed: u64,
    /// Frame index at which the flooder was classified.
    pub flood_classified_at_frame: u64,
    /// Per-population outcomes under the adversarial mix.
    pub adversarial: Vec<WireMixRecord>,
    /// The wire server's registry after the adversarial run
    /// (`wire.conn.*` / `wire.admit.*` / `wire.shed.*` counters plus
    /// per-class latency histograms).
    pub metrics: MetricsDump,
}

/// The multi-node cluster run from the `serve` bench: a small
/// [`v6cluster::Cluster`] driven through publishes, a node kill, a
/// network partition, hedged reads under both, and a final
/// convergence pass.
///
/// [`v6cluster::Cluster`]: ../v6cluster/struct.Cluster.html
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterBench {
    /// Simulated nodes.
    pub nodes: usize,
    /// Replication factor R.
    pub replication: usize,
    /// Partitions the /48 space folds into.
    pub partitions: u32,
    /// Epochs committed across all partitions.
    pub epochs_published: u64,
    /// Hedged reads issued.
    pub reads: u64,
    /// Reads answered fresh (committed epoch, quorum reachable).
    pub reads_fresh: u64,
    /// Reads answered but labeled degraded (stale or under-quorum).
    pub reads_degraded: u64,
    /// Reads nothing answered before the deadline.
    pub reads_unavailable: u64,
    /// The audited invariant: stale answers labeled fresh. Must be 0.
    pub unlabeled_stale_reads: u64,
    /// Node kills during the run (driver- or chaos-initiated).
    pub kills: u64,
    /// Node restarts through crash recovery.
    pub restarts: u64,
    /// True when the final convergence pass reached byte-identical
    /// replicas everywhere.
    pub converged: bool,
    /// Rounds the convergence pass ran.
    pub converge_rounds: u64,
    /// Derived throughput: address entries committed through the
    /// publish/replicate waves per wall second.
    pub addrs_per_sec: f64,
    /// The convergence report's combined checksum (hex).
    pub combined_checksum: String,
    /// Merged per-node + fabric registries (`<node>.cluster.*`,
    /// `fabric.cluster.net.*`).
    pub metrics: MetricsDump,
}

/// One corpus scale of the streaming-analytics comparison: the cost of
/// folding one fixed-size delta into live [`v6stream`] operators vs.
/// rebuilding the same operators from the materialized corpus.
///
/// [`v6stream`]: ../v6stream/index.html
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamScaleRecord {
    /// Addresses in the materialized corpus at the measured epoch.
    pub corpus: usize,
    /// Entries (adds + removes + week changes) in the measured delta —
    /// held constant across scales so incremental cost isolates corpus
    /// size.
    pub delta: usize,
    /// Best-of-N wall milliseconds feeding the delta through a live
    /// [`v6stream::StreamDriver`].
    ///
    /// [`v6stream::StreamDriver`]: ../v6stream/struct.StreamDriver.html
    pub incremental_ms: f64,
    /// Best-of-N wall milliseconds for the batch rebuild
    /// (`Analytics::from_entries` over the full corpus).
    pub batch_ms: f64,
    /// `batch_ms / incremental_ms`.
    pub speedup: f64,
    /// True when the incremental operators' checksums equaled the
    /// batch rebuild's after the delta — the equivalence invariant,
    /// re-asserted inside the bench.
    pub checksums_equal: bool,
}

/// The streaming-analytics run from the `serve` bench: the same
/// fixed-size delta folded into operators over corpora of growing
/// size, pinning the perf claim that per-epoch incremental update
/// stays ~flat while batch re-analysis grows linearly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamBench {
    /// Per-scale comparisons, smallest corpus first.
    pub scales: Vec<StreamScaleRecord>,
    /// True when incremental cost at the largest corpus stayed within
    /// the flatness budget of the smallest (while the corpus itself
    /// grew by the full scale ratio).
    pub flat: bool,
    /// `batch_ms(largest) / batch_ms(smallest)` — the linear-growth
    /// contrast to `flat`.
    pub batch_growth: f64,
    /// The process-global `stream.op.*` counters after the run.
    pub metrics: MetricsDump,
}

/// The machine-readable output of the `serve` bench binary: run
/// parameters plus the store's registry state (counters and latency
/// histograms) after the load run, and the durability timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBench {
    /// Master seed.
    pub seed: u64,
    /// Queries replayed.
    pub queries: u64,
    /// Client threads.
    pub threads: usize,
    /// Store shard count.
    pub shards: usize,
    /// Hardware threads available to the process when the bench ran —
    /// the context for reading the throughput numbers, mirroring
    /// `BENCH_pipeline.json`.
    pub cores: usize,
    /// The store's private registry after the run.
    pub metrics: MetricsDump,
    /// Persistence-on vs. -off publish cost and cold-recovery timing.
    pub persistence: PersistenceBench,
    /// The adversarial front-door run over the same store.
    pub wire: WireBench,
    /// The multi-node cluster run: replication, faults, hedged reads,
    /// convergence.
    pub cluster: ClusterBench,
    /// Incremental vs. batch analytics over growing corpora.
    pub stream: StreamBench,
}

/// One kernel measured sequentially and in parallel at one input size,
/// as recorded in `BENCH_kernels.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel name ("par_map", "par_sort", "kway_merge").
    pub kernel: String,
    /// Input size (items for maps, elements for sorts/merges).
    pub size: usize,
    /// Best-of-N wall milliseconds with 1 thread.
    pub seq_ms: f64,
    /// Best-of-N wall milliseconds with `threads` workers.
    pub par_ms: f64,
    /// `seq_ms / par_ms`.
    pub speedup: f64,
}

/// One membership-lookup structure measured over a fixed probe mix, as
/// recorded in `BENCH_kernels.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipRecord {
    /// Structure probed ("sorted_vec", "compressed_run", "bloom_compressed").
    pub structure: String,
    /// Addresses the structure holds.
    pub addresses: usize,
    /// Probes issued (half present, half absent).
    pub probes: usize,
    /// Mean nanoseconds per probe (best of N rounds).
    pub ns_per_probe: f64,
    /// Heap bytes the structure occupies.
    pub bytes: usize,
}

/// The machine-readable output of the `kernels` bench: sequential vs.
/// parallel timings for the `v6par` kernels at several input sizes (so
/// kernel-level regressions are visible separately from pipeline-level
/// ones), plus the membership-lookup comparison across the address-store
/// representations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelsBench {
    /// Worker count used for the parallel timings.
    pub threads: usize,
    /// Hardware threads available when the bench ran.
    pub cores: usize,
    /// Per-kernel, per-size comparisons.
    pub kernels: Vec<KernelRecord>,
    /// Membership-lookup comparison: sorted-vec vs compressed-run vs
    /// bloom-fronted compressed-run over the same clustered content.
    pub membership: Vec<MembershipRecord>,
}

/// The scale selected through `V6HL_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds even in debug builds).
    Tiny,
    /// The default experiment scale.
    Default,
    /// The scale used for the recorded EXPERIMENTS.md numbers.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("V6HL_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

/// Reads the master seed from the environment (default 2022).
pub fn seed_from_env() -> u64 {
    std::env::var("V6HL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022)
}

/// Builds the experiment configuration for a scale.
pub fn config_for(scale: Scale, seed: u64) -> ExperimentConfig {
    match scale {
        Scale::Tiny => ExperimentConfig::tiny(seed),
        Scale::Paper => ExperimentConfig::paper(seed),
        Scale::Default => {
            let mut cfg = ExperimentConfig::paper(seed);
            let outages = cfg.world.outages.clone();
            cfg.world = WorldConfig::default_scale();
            cfg.world.outages = outages;
            cfg.hitlist = HitlistCampaignConfig {
                weeks: 8,
                ..Default::default()
            };
            cfg.caida = CaidaCampaignConfig {
                stride: 128,
                ..Default::default()
            };
            cfg
        }
    }
}

/// Runs the full experiment at the environment-selected scale, printing
/// a progress banner.
pub fn run_experiment() -> Experiment {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    eprintln!(
        "[v6bench] building world + running study (scale={}, seed={seed}) …",
        scale.name()
    );
    let t0 = std::time::Instant::now();
    let e = Experiment::run(config_for(scale, seed));
    eprintln!(
        "[v6bench] study complete in {:.1}s: {} NTP observations, {} unique addresses",
        t0.elapsed().as_secs_f64(),
        e.corpus.len(),
        e.ntp.len()
    );
    e
}

/// Prints one experiment's human-readable output and its paper-vs-
/// measured records as Markdown.
pub fn print_experiment((text, records): (String, Vec<v6hitlist::ExperimentRecord>)) {
    println!("{text}");
    println!("{}", v6hitlist::report::render_markdown(&records));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults() {
        // No env manipulation (tests run in parallel); just check names.
        assert_eq!(Scale::Tiny.name(), "tiny");
        assert_eq!(Scale::Default.name(), "default");
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn configs_scale_up() {
        let t = config_for(Scale::Tiny, 1);
        let d = config_for(Scale::Default, 1);
        let p = config_for(Scale::Paper, 1);
        assert!(t.world.home_networks < d.world.home_networks);
        assert!(d.world.home_networks < p.world.home_networks);
        assert!(d.hitlist.weeks <= p.hitlist.weeks);
    }
}
