//! # v6bench — the benchmark and reproduction harness
//!
//! One binary per table/figure of *IPv6 Hitlists at Scale* (SIGCOMM
//! 2023), each printing the regenerated result next to the paper's
//! published numbers, plus `run_all`, which executes every experiment
//! and rewrites `EXPERIMENTS.md`.
//!
//! Scale and seed come from the environment:
//!
//! * `V6HL_SCALE` — `tiny` | `default` (default) | `paper`
//! * `V6HL_SEED` — u64 master seed (default 2022)
//!
//! Run with `--release`; the default scale completes in seconds, `paper`
//! in minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use serde::{Deserialize, Serialize};
use v6hitlist::{Experiment, ExperimentConfig};
use v6netsim::WorldConfig;
use v6scan::{CaidaCampaignConfig, HitlistCampaignConfig};

/// One pipeline stage's wall time at both thread counts, as recorded in
/// `BENCH_pipeline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Stage name ("world", "corpus", "hitlist", …).
    pub name: String,
    /// Wall milliseconds with 1 thread.
    pub threads1_ms: f64,
    /// Wall milliseconds with N threads.
    pub threadsn_ms: f64,
}

/// The machine-readable output of the `pipeline` bench binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineBench {
    /// Scale the bench ran at.
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// The parallel run's thread count.
    pub threads: usize,
    /// `Experiment::artifact_digest` as hex — identical for both runs by
    /// construction (the bench asserts it before writing this file).
    pub digest: String,
    /// End-to-end wall milliseconds with 1 thread.
    pub total_threads1_ms: f64,
    /// End-to-end wall milliseconds with N threads.
    pub total_threadsn_ms: f64,
    /// `total_threads1_ms / total_threadsn_ms`.
    pub speedup: f64,
    /// Per-stage breakdown.
    pub stages: Vec<StageRecord>,
    /// Raw NTP observations collected.
    pub corpus_observations: u64,
    /// True iff the pre-sized corpus buffer never reallocated.
    pub corpus_preallocated: bool,
}

/// The scale selected through `V6HL_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds even in debug builds).
    Tiny,
    /// The default experiment scale.
    Default,
    /// The scale used for the recorded EXPERIMENTS.md numbers.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("V6HL_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

/// Reads the master seed from the environment (default 2022).
pub fn seed_from_env() -> u64 {
    std::env::var("V6HL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022)
}

/// Builds the experiment configuration for a scale.
pub fn config_for(scale: Scale, seed: u64) -> ExperimentConfig {
    match scale {
        Scale::Tiny => ExperimentConfig::tiny(seed),
        Scale::Paper => ExperimentConfig::paper(seed),
        Scale::Default => {
            let mut cfg = ExperimentConfig::paper(seed);
            let outages = cfg.world.outages.clone();
            cfg.world = WorldConfig::default_scale();
            cfg.world.outages = outages;
            cfg.hitlist = HitlistCampaignConfig {
                weeks: 8,
                ..Default::default()
            };
            cfg.caida = CaidaCampaignConfig {
                stride: 128,
                ..Default::default()
            };
            cfg
        }
    }
}

/// Runs the full experiment at the environment-selected scale, printing
/// a progress banner.
pub fn run_experiment() -> Experiment {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    eprintln!(
        "[v6bench] building world + running study (scale={}, seed={seed}) …",
        scale.name()
    );
    let t0 = std::time::Instant::now();
    let e = Experiment::run(config_for(scale, seed));
    eprintln!(
        "[v6bench] study complete in {:.1}s: {} NTP observations, {} unique addresses",
        t0.elapsed().as_secs_f64(),
        e.corpus.len(),
        e.ntp.len()
    );
    e
}

/// Prints one experiment's human-readable output and its paper-vs-
/// measured records as Markdown.
pub fn print_experiment((text, records): (String, Vec<v6hitlist::ExperimentRecord>)) {
    println!("{text}");
    println!("{}", v6hitlist::report::render_markdown(&records));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults() {
        // No env manipulation (tests run in parallel); just check names.
        assert_eq!(Scale::Tiny.name(), "tiny");
        assert_eq!(Scale::Default.name(), "default");
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn configs_scale_up() {
        let t = config_for(Scale::Tiny, 1);
        let d = config_for(Scale::Default, 1);
        let p = config_for(Scale::Paper, 1);
        assert!(t.world.home_networks < d.world.home_networks);
        assert!(d.world.home_networks < p.world.home_networks);
        assert!(d.hitlist.weeks <= p.hitlist.weeks);
    }
}
