//! # v6bench — the benchmark and reproduction harness
//!
//! One binary per table/figure of *IPv6 Hitlists at Scale* (SIGCOMM
//! 2023), each printing the regenerated result next to the paper's
//! published numbers, plus `run_all`, which executes every experiment
//! and rewrites `EXPERIMENTS.md`.
//!
//! Scale and seed come from the environment:
//!
//! * `V6HL_SCALE` — `tiny` | `default` (default) | `paper`
//! * `V6HL_SEED` — u64 master seed (default 2022)
//!
//! Run with `--release`; the default scale completes in seconds, `paper`
//! in minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use v6hitlist::{Experiment, ExperimentConfig};
use v6netsim::WorldConfig;
use v6scan::{CaidaCampaignConfig, HitlistCampaignConfig};

/// The scale selected through `V6HL_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds even in debug builds).
    Tiny,
    /// The default experiment scale.
    Default,
    /// The scale used for the recorded EXPERIMENTS.md numbers.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("V6HL_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

/// Reads the master seed from the environment (default 2022).
pub fn seed_from_env() -> u64 {
    std::env::var("V6HL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022)
}

/// Builds the experiment configuration for a scale.
pub fn config_for(scale: Scale, seed: u64) -> ExperimentConfig {
    match scale {
        Scale::Tiny => ExperimentConfig::tiny(seed),
        Scale::Paper => ExperimentConfig::paper(seed),
        Scale::Default => {
            let mut cfg = ExperimentConfig::paper(seed);
            let outages = cfg.world.outages.clone();
            cfg.world = WorldConfig::default_scale();
            cfg.world.outages = outages;
            cfg.hitlist = HitlistCampaignConfig {
                weeks: 8,
                ..Default::default()
            };
            cfg.caida = CaidaCampaignConfig {
                stride: 128,
                ..Default::default()
            };
            cfg
        }
    }
}

/// Runs the full experiment at the environment-selected scale, printing
/// a progress banner.
pub fn run_experiment() -> Experiment {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    eprintln!(
        "[v6bench] building world + running study (scale={}, seed={seed}) …",
        scale.name()
    );
    let t0 = std::time::Instant::now();
    let e = Experiment::run(config_for(scale, seed));
    eprintln!(
        "[v6bench] study complete in {:.1}s: {} NTP observations, {} unique addresses",
        t0.elapsed().as_secs_f64(),
        e.corpus.len(),
        e.ntp.len()
    );
    e
}

/// Prints one experiment's human-readable output and its paper-vs-
/// measured records as Markdown.
pub fn print_experiment((text, records): (String, Vec<v6hitlist::ExperimentRecord>)) {
    println!("{text}");
    println!("{}", v6hitlist::report::render_markdown(&records));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults() {
        // No env manipulation (tests run in parallel); just check names.
        assert_eq!(Scale::Tiny.name(), "tiny");
        assert_eq!(Scale::Default.name(), "default");
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn configs_scale_up() {
        let t = config_for(Scale::Tiny, 1);
        let d = config_for(Scale::Default, 1);
        let p = config_for(Scale::Paper, 1);
        assert!(t.world.home_networks < d.world.home_networks);
        assert!(d.world.home_networks < p.world.home_networks);
        assert!(d.hitlist.weeks <= p.hitlist.weeks);
    }
}
