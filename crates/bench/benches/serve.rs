//! Micro-benchmarks of the `v6serve` query path.
//!
//! Measures the per-query primitives the load harness aggregates:
//! sharded membership probes, full lookups (membership + alias trie),
//! /48 density queries, batched lookups, and the cost of publishing a
//! new epoch (validate + swap).

use std::net::Ipv6Addr;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use v6addr::Prefix;
use v6netsim::rng::Rng;
use v6serve::{HitlistStore, QueryEngine, SnapshotBuilder};

const ADDRS: u32 = 100_000;

fn build_engine(shards: usize) -> QueryEngine {
    let store = HitlistStore::new("bench", shards);
    let mut b = SnapshotBuilder::new("bench", shards);
    let mut rng = Rng::new(7);
    for i in 0..ADDRS {
        let net48 = rng.next_u64() as u128 % 4096;
        b.add_bits(
            (0x2001_0db8u128 << 96) | (net48 << 80) | u128::from(i),
            i % 8,
        );
    }
    for p in 0..32u128 {
        b.add_alias(
            Prefix::new(Ipv6Addr::from((0x2001_0db8u128 << 96) | (p << 80)), 48),
            0,
        );
    }
    store.publish(b.build()).unwrap();
    QueryEngine::new(Arc::new(store))
}

fn probes(n: usize, engine: &QueryEngine) -> Vec<Ipv6Addr> {
    // Half sampled present, half pseudorandom (absent).
    let snap = engine.store().snapshot();
    let mut rng = Rng::new(11);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i % 2 == 0 {
            let shard = &snap.shards()[i % snap.shard_count()];
            if !shard.is_empty() {
                let bits = shard.get_bits(rng.below(shard.len() as u64) as usize);
                out.push(Ipv6Addr::from(bits));
                continue;
            }
        }
        out.push(Ipv6Addr::from((0x2u128 << 124) | (rng.next_u128() >> 4)));
    }
    out
}

fn bench_membership(c: &mut Criterion) {
    for shards in [1usize, 16] {
        let engine = build_engine(shards);
        let addrs = probes(4096, &engine);
        c.bench_function(&format!("serve/contains_4096_s{shards}"), |b| {
            b.iter(|| {
                addrs
                    .iter()
                    .filter(|&&a| engine.contains(black_box(a)))
                    .count()
            })
        });
    }
}

fn bench_lookup(c: &mut Criterion) {
    let engine = build_engine(16);
    let addrs = probes(4096, &engine);
    c.bench_function("serve/lookup_4096_s16", |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter(|&&a| engine.lookup(black_box(a)).present)
                .count()
        })
    });
}

fn bench_density(c: &mut Criterion) {
    let engine = build_engine(16);
    let prefixes: Vec<Prefix> = probes(512, &engine)
        .into_iter()
        .map(|a| Prefix::of(a, 48))
        .collect();
    c.bench_function("serve/count_within_512_s16", |b| {
        b.iter(|| {
            prefixes
                .iter()
                .map(|p| engine.count_within(black_box(p)))
                .sum::<u64>()
        })
    });
}

fn bench_batch(c: &mut Criterion) {
    let engine = build_engine(16);
    let addrs = probes(4096, &engine);
    c.bench_function("serve/batch_lookup_4096_s16", |b| {
        b.iter(|| engine.batch_lookup(black_box(&addrs)).present)
    });
}

fn bench_publish(c: &mut Criterion) {
    let engine = build_engine(16);
    let store = engine.store().clone();
    let base = store.snapshot();
    c.bench_function("serve/publish_100k_s16", |b| {
        b.iter_batched(
            || {
                let mut builder = SnapshotBuilder::new(base.name(), base.shard_count());
                builder.merge_snapshot(&base);
                builder.build()
            },
            |snap| store.publish(snap).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_membership,
    bench_lookup,
    bench_density,
    bench_batch,
    bench_publish
);
criterion_main!(benches);
