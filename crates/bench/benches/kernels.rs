//! Micro-benchmarks of the performance-critical kernels.
//!
//! These are the operations a real hitlist pipeline executes billions of
//! times: IID entropy, EUI-64 extraction, address-set algebra, trie
//! lookups, permutation iteration, and the protocol codecs. Includes the
//! DESIGN.md ablation of sorted-vec sets vs hash sets.
//!
//! Besides the printed criterion timings, the run emits
//! `BENCH_kernels.json` at the repo root: the `v6par` kernels (par_map,
//! par_sort, k-way merge) measured sequentially and in parallel at
//! three input sizes, so kernel-level regressions are visible
//! separately from pipeline-level ones. For the merge kernel the
//! "sequential" column is the pairwise clone-and-merge tree the
//! tournament merge replaced.

use std::collections::HashSet;
use std::net::Ipv6Addr;
use std::time::Instant;

use criterion::{black_box, criterion_group, BatchSize, Criterion};

use v6bench::{KernelRecord, KernelsBench, MembershipRecord};
use v6serve::{BlockedBloom, CompressedRun};

use v6addr::{iid_entropy, AddrSet, Iid, Prefix, PrefixMap};
use v6netsim::rng::Rng;
use v6netsim::IndexPermutation;
use v6ntp::{NtpPacket, NtpTimestamp};
use v6scan::Icmpv6Message;

fn random_addrs(n: usize, seed: u64) -> Vec<u128> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.next_u128()).collect()
}

fn bench_entropy(c: &mut Criterion) {
    let iids: Vec<Iid> = random_addrs(4096, 1)
        .into_iter()
        .map(|b| Iid::new(b as u64))
        .collect();
    c.bench_function("entropy/iid_entropy_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &iid in &iids {
                acc += iid_entropy(black_box(iid));
            }
            acc
        })
    });
}

fn bench_eui64(c: &mut Criterion) {
    let iids: Vec<Iid> = random_addrs(4096, 2)
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            if i % 32 == 0 {
                // Plant the EUI-64 signature in a slice of the input.
                Iid::new(
                    (b as u64 & 0xffff_ffff_0000_0000) | 0xff_fe00_0000 | (b as u64 & 0xffffff),
                )
            } else {
                Iid::new(b as u64)
            }
        })
        .collect();
    c.bench_function("eui64/screen_4096", |b| {
        b.iter(|| iids.iter().filter(|i| i.to_mac().is_some()).count())
    });
}

fn bench_sets(c: &mut Criterion) {
    let a_bits = random_addrs(100_000, 3);
    let mut b_bits = random_addrs(100_000, 4);
    b_bits[..20_000].copy_from_slice(&a_bits[..20_000]);
    let a = AddrSet::from_bits(a_bits.clone());
    let b = AddrSet::from_bits(b_bits.clone());
    c.bench_function("sets/sorted_vec_intersection_100k", |bch| {
        bch.iter(|| a.intersection_count(black_box(&b)))
    });
    // DESIGN.md ablation: hash-set equivalent of the same intersection.
    let ha: HashSet<u128> = a_bits.iter().copied().collect();
    let hb: HashSet<u128> = b_bits.iter().copied().collect();
    c.bench_function("sets/hashset_intersection_100k", |bch| {
        bch.iter(|| ha.intersection(black_box(&hb)).count())
    });
    c.bench_function("sets/aggregate_to_48_100k", |bch| {
        bch.iter(|| a.aggregate(black_box(48)).len())
    });
    c.bench_function("sets/build_from_100k", |bch| {
        bch.iter_batched(|| a_bits.clone(), AddrSet::from_bits, BatchSize::SmallInput)
    });
}

fn bench_trie(c: &mut Criterion) {
    let mut map = PrefixMap::new();
    let mut rng = Rng::new(5);
    for i in 0..10_000u64 {
        let bits = (rng.next_u128() & (u128::MAX << 80)) | ((i as u128) << 80);
        map.insert(Prefix::from_bits(bits, 48), i);
    }
    let probes: Vec<Ipv6Addr> = random_addrs(1024, 6)
        .into_iter()
        .map(Ipv6Addr::from)
        .collect();
    c.bench_function("trie/lpm_1024_of_10k", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|a| map.longest_match(**a).is_some())
                .count()
        })
    });
}

fn bench_permutation(c: &mut Criterion) {
    let perm = IndexPermutation::new(1 << 20, 7);
    c.bench_function("permute/feistel_apply_4096", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & ((1 << 20) - 1);
            let mut acc = 0u64;
            for k in 0..4096u64 {
                acc ^= perm.apply((i + k) & ((1 << 20) - 1));
            }
            acc
        })
    });
    // Ablation baseline: linear iteration does no work at all — the
    // difference is the full cost of scan-order randomization.
    c.bench_function("permute/linear_baseline_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..4096u64 {
                acc ^= black_box(k);
            }
            acc
        })
    });
}

fn bench_ntp_codec(c: &mut Criterion) {
    let pkt = NtpPacket::client_request(NtpTimestamp::new(3_850_000_000, 42));
    let wire = pkt.encode();
    c.bench_function("ntp/encode", |b| b.iter(|| black_box(&pkt).encode()));
    c.bench_function("ntp/decode", |b| {
        b.iter(|| NtpPacket::decode(black_box(&wire)).unwrap())
    });
}

fn bench_icmp_codec(c: &mut Criterion) {
    let src: Ipv6Addr = "2a00:1::1".parse().unwrap();
    let dst: Ipv6Addr = "2a00:2::2".parse().unwrap();
    let msg = Icmpv6Message::EchoRequest {
        ident: 0x1234,
        seq: 7,
        payload: bytes::Bytes::from_static(b"zmap6-repro"),
    };
    let wire = msg.encode(src, dst);
    c.bench_function("icmp/encode_with_checksum", |b| {
        b.iter(|| black_box(&msg).encode(src, dst))
    });
    c.bench_function("icmp/decode_verify_checksum", |b| {
        b.iter(|| Icmpv6Message::decode(src, dst, black_box(&wire)).unwrap())
    });
}

/// Best-of-`rounds` wall milliseconds of `f`.
fn best_ms<O>(rounds: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The input sizes each `v6par` kernel is measured at.
const PAR_SIZES: [usize; 3] = [20_000, 100_000, 500_000];

fn sort_input(size: usize, seed: u64) -> Vec<(u128, u64)> {
    let mut rng = Rng::new(seed);
    (0..size)
        .map(|_| (rng.next_u128(), rng.next_u64()))
        .collect()
}

/// Hitlist-shaped sort input: a few thousand /48s under one announced
/// /32, structured subnets and IIDs — the clustering "Clusters in the
/// Expanse" measured, and the shape that lets the adaptive radix sort
/// skip most digit positions.
fn clustered_input(size: usize, seed: u64) -> Vec<(u128, u64)> {
    let mut rng = Rng::new(seed);
    (0..size)
        .map(|_| {
            let h = rng.next_u64();
            let net48 = u128::from((h >> 40) % 4096);
            let subnet = u128::from((h >> 20) % 16);
            let iid = u128::from(h % 262_144);
            let bits = (0x2001_0db8u128 << 96) | (net48 << 80) | (subnet << 64) | iid;
            (bits, h % 1_000_000)
        })
        .collect()
}

/// Measures par_map / par_sort / k-way merge sequentially vs. in
/// parallel and writes `BENCH_kernels.json` at the workspace root.
fn emit_par_kernels_json() {
    let threads = v6par::threads().max(2);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut kernels: Vec<KernelRecord> = Vec::new();
    let record = |kernels: &mut Vec<KernelRecord>, kernel: &str, size, seq_ms: f64, par_ms: f64| {
        kernels.push(KernelRecord {
            kernel: kernel.to_string(),
            size,
            seq_ms,
            par_ms,
            speedup: seq_ms / par_ms.max(1e-9),
        });
    };

    // par_map: a hash-mixing closure heavy enough (~100 ns/item) that
    // the adaptive cutoff commits to the parallel path at every size.
    for size in PAR_SIZES {
        let items: Vec<u64> = (0..size as u64).collect();
        let work = |_: usize, &x: &u64| {
            let mut h = x;
            for _ in 0..32 {
                h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29) ^ 0xabcd;
            }
            h
        };
        let cost = v6par::Cost::per_item_ns(100).labeled("bench.map");
        let seq = best_ms(3, || v6par::par_map_cost(1, &items, cost, work));
        let par = best_ms(3, || v6par::par_map_cost(threads, &items, cost, work));
        record(&mut kernels, "par_map", size, seq, par);
    }

    // par_sort: random (u128, u64) pairs, the pipeline's dominant sort.
    for size in PAR_SIZES {
        let data = sort_input(size, 0xbe11);
        let seq = best_ms(3, || {
            let mut d = data.clone();
            d.sort_unstable();
            d
        });
        let par = best_ms(3, || {
            let mut d = data.clone();
            v6par::par_sort_unstable(threads, &mut d);
            d
        });
        record(&mut kernels, "par_sort", size, seq, par);
    }

    // k-way merge: 8 sorted runs. Baseline is the pairwise
    // clone-and-merge tree this PR replaced; the measured kernel is the
    // single-output tournament move-merge.
    for size in PAR_SIZES {
        let mut runs: Vec<Vec<(u128, u64)>> = v6par::split_ranges(size, 8)
            .into_iter()
            .enumerate()
            .map(|(i, r)| sort_input(r.len(), 0x5eed ^ i as u64))
            .collect();
        for run in &mut runs {
            run.sort_unstable();
        }
        let seq = best_ms(3, || {
            let mut rounds = runs.clone();
            while rounds.len() > 1 {
                let leftover = (rounds.len() % 2 == 1).then(|| rounds.pop().unwrap());
                let mut merged: Vec<Vec<(u128, u64)>> = (0..rounds.len() / 2)
                    .map(|k| v6par::merge_sorted_pair(&rounds[2 * k], &rounds[2 * k + 1]))
                    .collect();
                merged.extend(leftover);
                rounds = merged;
            }
            rounds.pop().unwrap_or_default()
        });
        let par = best_ms(3, || v6par::par_merge_sorted(threads, runs.clone()));
        record(&mut kernels, "kway_merge", size, seq, par);
    }

    // Radix vs comparison sort on the same clustered hitlist-shaped
    // input: "sort_comparison" rows time `sort_unstable` /
    // `par_sort_unstable`, "sort_radix" rows time `radix_sort_u128` /
    // `par_radix_sort`. Same input, same sizes — the seq_ms columns are
    // directly comparable between the two kernels. The input copy is
    // restored *outside* the timed section so the rows measure the
    // sorts, not the allocator.
    type SortFn<'a> = &'a mut dyn FnMut(&mut Vec<(u128, u64)>);
    let sort_ms = |data: &[(u128, u64)], sort: SortFn| -> f64 {
        let mut d = data.to_vec();
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            d.clear();
            d.extend_from_slice(data);
            let t0 = Instant::now();
            sort(&mut d);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            black_box(&d);
        }
        best
    };
    for size in PAR_SIZES {
        let data = clustered_input(size, 0x4ad1);
        let seq = sort_ms(&data, &mut |d| d.sort_unstable());
        let par = sort_ms(&data, &mut |d| v6par::par_sort_unstable(threads, d));
        record(&mut kernels, "sort_comparison", size, seq, par);

        let seq = sort_ms(&data, &mut v6par::radix_sort_u128);
        let par = sort_ms(&data, &mut |d| {
            v6par::par_radix_sort(threads, d, |&(hi, lo)| (hi, lo))
        });
        record(&mut kernels, "sort_radix", size, seq, par);
    }

    let membership = membership_records();

    let bench = KernelsBench {
        threads,
        cores,
        kernels,
        membership,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize kernels bench");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    let back: KernelsBench =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_kernels.json is not valid JSON");
    assert_eq!(back, bench, "BENCH_kernels.json round-trip mismatch");
    println!("v6par kernels ({threads} threads, {cores} cores):");
    for k in &bench.kernels {
        println!(
            "  {:>15} n={:>7}: {:>8.2} ms seq -> {:>8.2} ms par ({:.2}x)",
            k.kernel, k.size, k.seq_ms, k.par_ms, k.speedup
        );
    }
    for m in &bench.membership {
        println!(
            "  membership/{:<16} {:>7} addrs: {:>7.1} ns/probe, {:>9} bytes",
            m.structure, m.addresses, m.ns_per_probe, m.bytes
        );
    }
    println!("wrote {}", path.display());
}

/// Membership-lookup comparison: the same clustered content held as a
/// raw sorted vec, a compressed run, and a bloom-fronted compressed run,
/// probed with a half-present/half-absent mix.
fn membership_records() -> Vec<MembershipRecord> {
    const ADDRESSES: usize = 200_000;
    const PROBES: usize = 1 << 16;
    let mut bits: Vec<u128> = clustered_input(ADDRESSES, 0x900d)
        .into_iter()
        .map(|(b, _)| b)
        .collect();
    bits.sort_unstable();
    bits.dedup();

    let mut rng = Rng::new(0x9406);
    let probes: Vec<u128> = (0..PROBES)
        .map(|i| {
            if i % 2 == 0 {
                bits[(rng.next_u64() % bits.len() as u64) as usize]
            } else {
                // Same /32, structured like the content, but absent with
                // overwhelming probability (distinct IID plane).
                (0x2001_0db8u128 << 96) | (u128::from(rng.next_u64()) << 20)
            }
        })
        .collect();

    let run = CompressedRun::from_sorted(bits.iter().copied());
    let bloom = BlockedBloom::build(0x5eed, bits.iter().copied(), bits.len());
    let probe_ns = |ms: f64| -> f64 { ms * 1e6 / PROBES as f64 };

    let sorted_ms = best_ms(5, || {
        probes
            .iter()
            .filter(|p| bits.binary_search(p).is_ok())
            .count()
    });
    let run_ms = best_ms(5, || {
        probes.iter().filter(|&&p| run.rank(p).is_some()).count()
    });
    let bloom_ms = best_ms(5, || {
        probes
            .iter()
            .filter(|&&p| bloom.may_contain(p) && run.rank(p).is_some())
            .count()
    });

    vec![
        MembershipRecord {
            structure: "sorted_vec".into(),
            addresses: bits.len(),
            probes: PROBES,
            ns_per_probe: probe_ns(sorted_ms),
            bytes: bits.len() * 16,
        },
        MembershipRecord {
            structure: "compressed_run".into(),
            addresses: bits.len(),
            probes: PROBES,
            ns_per_probe: probe_ns(run_ms),
            bytes: run.heap_bytes(),
        },
        MembershipRecord {
            structure: "bloom_fronted".into(),
            addresses: bits.len(),
            probes: PROBES,
            ns_per_probe: probe_ns(bloom_ms),
            bytes: run.heap_bytes() + bloom.heap_bytes(),
        },
    ]
}

criterion_group!(
    benches,
    bench_entropy,
    bench_eui64,
    bench_sets,
    bench_trie,
    bench_permutation,
    bench_ntp_codec,
    bench_icmp_codec
);

fn main() {
    benches();
    emit_par_kernels_json();
}
