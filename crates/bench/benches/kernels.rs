//! Micro-benchmarks of the performance-critical kernels.
//!
//! These are the operations a real hitlist pipeline executes billions of
//! times: IID entropy, EUI-64 extraction, address-set algebra, trie
//! lookups, permutation iteration, and the protocol codecs. Includes the
//! DESIGN.md ablation of sorted-vec sets vs hash sets.

use std::collections::HashSet;
use std::net::Ipv6Addr;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use v6addr::{iid_entropy, AddrSet, Iid, Prefix, PrefixMap};
use v6netsim::rng::Rng;
use v6netsim::IndexPermutation;
use v6ntp::{NtpPacket, NtpTimestamp};
use v6scan::Icmpv6Message;

fn random_addrs(n: usize, seed: u64) -> Vec<u128> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.next_u128()).collect()
}

fn bench_entropy(c: &mut Criterion) {
    let iids: Vec<Iid> = random_addrs(4096, 1)
        .into_iter()
        .map(|b| Iid::new(b as u64))
        .collect();
    c.bench_function("entropy/iid_entropy_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &iid in &iids {
                acc += iid_entropy(black_box(iid));
            }
            acc
        })
    });
}

fn bench_eui64(c: &mut Criterion) {
    let iids: Vec<Iid> = random_addrs(4096, 2)
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            if i % 32 == 0 {
                // Plant the EUI-64 signature in a slice of the input.
                Iid::new(
                    (b as u64 & 0xffff_ffff_0000_0000) | 0xff_fe00_0000 | (b as u64 & 0xffffff),
                )
            } else {
                Iid::new(b as u64)
            }
        })
        .collect();
    c.bench_function("eui64/screen_4096", |b| {
        b.iter(|| iids.iter().filter(|i| i.to_mac().is_some()).count())
    });
}

fn bench_sets(c: &mut Criterion) {
    let a_bits = random_addrs(100_000, 3);
    let mut b_bits = random_addrs(100_000, 4);
    b_bits[..20_000].copy_from_slice(&a_bits[..20_000]);
    let a = AddrSet::from_bits(a_bits.clone());
    let b = AddrSet::from_bits(b_bits.clone());
    c.bench_function("sets/sorted_vec_intersection_100k", |bch| {
        bch.iter(|| a.intersection_count(black_box(&b)))
    });
    // DESIGN.md ablation: hash-set equivalent of the same intersection.
    let ha: HashSet<u128> = a_bits.iter().copied().collect();
    let hb: HashSet<u128> = b_bits.iter().copied().collect();
    c.bench_function("sets/hashset_intersection_100k", |bch| {
        bch.iter(|| ha.intersection(black_box(&hb)).count())
    });
    c.bench_function("sets/aggregate_to_48_100k", |bch| {
        bch.iter(|| a.aggregate(black_box(48)).len())
    });
    c.bench_function("sets/build_from_100k", |bch| {
        bch.iter_batched(|| a_bits.clone(), AddrSet::from_bits, BatchSize::SmallInput)
    });
}

fn bench_trie(c: &mut Criterion) {
    let mut map = PrefixMap::new();
    let mut rng = Rng::new(5);
    for i in 0..10_000u64 {
        let bits = (rng.next_u128() & (u128::MAX << 80)) | ((i as u128) << 80);
        map.insert(Prefix::from_bits(bits, 48), i);
    }
    let probes: Vec<Ipv6Addr> = random_addrs(1024, 6)
        .into_iter()
        .map(Ipv6Addr::from)
        .collect();
    c.bench_function("trie/lpm_1024_of_10k", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|a| map.longest_match(**a).is_some())
                .count()
        })
    });
}

fn bench_permutation(c: &mut Criterion) {
    let perm = IndexPermutation::new(1 << 20, 7);
    c.bench_function("permute/feistel_apply_4096", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & ((1 << 20) - 1);
            let mut acc = 0u64;
            for k in 0..4096u64 {
                acc ^= perm.apply((i + k) & ((1 << 20) - 1));
            }
            acc
        })
    });
    // Ablation baseline: linear iteration does no work at all — the
    // difference is the full cost of scan-order randomization.
    c.bench_function("permute/linear_baseline_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..4096u64 {
                acc ^= black_box(k);
            }
            acc
        })
    });
}

fn bench_ntp_codec(c: &mut Criterion) {
    let pkt = NtpPacket::client_request(NtpTimestamp::new(3_850_000_000, 42));
    let wire = pkt.encode();
    c.bench_function("ntp/encode", |b| b.iter(|| black_box(&pkt).encode()));
    c.bench_function("ntp/decode", |b| {
        b.iter(|| NtpPacket::decode(black_box(&wire)).unwrap())
    });
}

fn bench_icmp_codec(c: &mut Criterion) {
    let src: Ipv6Addr = "2a00:1::1".parse().unwrap();
    let dst: Ipv6Addr = "2a00:2::2".parse().unwrap();
    let msg = Icmpv6Message::EchoRequest {
        ident: 0x1234,
        seq: 7,
        payload: bytes::Bytes::from_static(b"zmap6-repro"),
    };
    let wire = msg.encode(src, dst);
    c.bench_function("icmp/encode_with_checksum", |b| {
        b.iter(|| black_box(&msg).encode(src, dst))
    });
    c.bench_function("icmp/decode_verify_checksum", |b| {
        b.iter(|| Icmpv6Message::decode(src, dst, black_box(&wire)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_entropy,
    bench_eui64,
    bench_sets,
    bench_trie,
    bench_permutation,
    bench_ntp_codec,
    bench_icmp_codec
);
criterion_main!(benches);
