//! Macro-benchmarks of the simulation and measurement pipelines,
//! including the DESIGN.md ablations: statistical event generation
//! throughput, scanner throughput against the world, and alias filtering
//! on/off.

use criterion::{criterion_group, criterion_main, Criterion};

use v6netsim::{NtpEventStream, SimDuration, SimTime, World, WorldConfig};
use v6scan::{scan, AliasList, WorldProber, Zmap6Config};

fn world() -> World {
    World::build(WorldConfig::tiny(), 77)
}

fn bench_world_build(c: &mut Criterion) {
    c.bench_function("pipeline/world_build_tiny", |b| {
        b.iter(|| World::build(WorldConfig::tiny(), 77))
    });
}

fn bench_event_generation(c: &mut Criterion) {
    let w = world();
    // DESIGN.md ablation 1: the statistical generator covers a simulated
    // week in one pass; exhaustive per-poll simulation would be ~10^4×
    // the event count (64-second poll intervals vs ~1 query/day).
    c.bench_function("pipeline/eventgen_week", |b| {
        b.iter(|| NtpEventStream::new(&w, SimTime::START, SimDuration::WEEK).count())
    });
}

fn bench_scanner(c: &mut Criterion) {
    let w = world();
    let prober = WorldProber::new(&w, 0);
    let targets: Vec<std::net::Ipv6Addr> = w
        .ases
        .iter()
        .flat_map(|a| (0..8u64).map(move |i| a.customer33().subprefix(48, i * 7).offset(1)))
        .collect();
    c.bench_function("pipeline/zmap_scan_1k_targets", |b| {
        b.iter(|| scan(&prober, &targets, &Zmap6Config::default()).stats.sent)
    });
}

fn bench_probe_resolution(c: &mut Criterion) {
    let w = world();
    let t = SimTime(86_400 * 50);
    let addrs: Vec<std::net::Ipv6Addr> = w
        .networks
        .iter()
        .take(256)
        .filter_map(|n| w.home_addr_at(n.cpe, t))
        .collect();
    c.bench_function("pipeline/resolve_256_cpe", |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter(|a| matches!(w.resolve(**a, t), v6netsim::Resolution::CpeWan { .. }))
                .count()
        })
    });
}

fn bench_alias_filter_ablation(c: &mut Criterion) {
    let w = world();
    let list = AliasList::from_prefixes(w.aliased_prefixes());
    let mut addrs: Vec<std::net::Ipv6Addr> = Vec::new();
    for a in &w.ases {
        for p in &a.alias_48s {
            for i in 0..64u64 {
                addrs.push(p.offset(i as u128 * 977));
            }
        }
        addrs.push(a.router48().offset(1));
    }
    // DESIGN.md ablation 4: the cost of alias filtering vs publishing raw.
    c.bench_function("pipeline/alias_filter_on", |b| {
        b.iter(|| list.filter_addresses(&addrs).len())
    });
    c.bench_function("pipeline/alias_filter_off_baseline", |b| {
        b.iter(|| addrs.iter().map(|a| u128::from(*a) as u64 & 1).sum::<u64>())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_world_build,
        bench_event_generation,
        bench_scanner,
        bench_probe_resolution,
        bench_alias_filter_ablation
}
criterion_main!(benches);
