//! v6cluster: multi-node cluster simulation for the hitlist service.
//!
//! Scales the service past one process — the ROADMAP item-4 node
//! boundary. N simulated nodes each own a set of partition replicas
//! (each a [`v6serve::HitlistStore`] backed by a [`v6store`] epoch
//! log), joined by a consistent-hash [`ring::Ring`] (virtual nodes,
//! replication factor R) that maps the /48 address space to replica
//! sets through a fixed partition layer ([`ring::partition_of`]).
//!
//! Everything between nodes is a real message: epoch replication
//! streams [`v6store::replica::DeltaRecord`]s framed with the
//! [`v6wire`] frame codec over [`v6wire::Transport`] links
//! ([`net::Link`]), never shared memory. The protocol
//! ([`proto::ReplMsg`]) is the classic replicated-log shape:
//!
//! * the partition **leader** publishes an epoch locally (write-ahead,
//!   durable-before-visible) and pushes the delta to its followers;
//! * a **follower** applies the delta when it extends its mirror
//!   exactly, acks with the resulting content checksum, and otherwise
//!   requests **catch-up** — a replay of the missed delta chain, or a
//!   full-state bootstrap when the chain is gone (e.g. across a
//!   restart);
//! * **reads** route through a hedged coordinator that answers fresh
//!   when a replica serves the committed epoch and otherwise labels
//!   the answer degraded — never silently stale.
//!
//! Faults are node-granular [`v6chaos`] decisions at
//! `cluster.<node>.<seq>` sites: `Error` drops a chunk (message
//! loss), `Stall` defers it, and `Panic` **kills the sending node** —
//! its in-memory state is dropped and it later restarts through
//! [`v6serve::HitlistStore::recover`] crash recovery, exactly like a
//! process dying. Network partitions are group maps on the fabric.
//! The convergence invariant (pinned by `tests/cluster_end_to_end.rs`
//! and the `V6_CHAOS_MODE=cluster` CI matrix): after faults heal, all
//! R replicas of every partition reach byte-identical epoch
//! `content_checksum`s, and every read answered below the committed
//! epoch was labeled degraded.
//!
//! Observability: each node keeps its own [`v6obs::Registry`]; the
//! cluster folds them (plus the fabric registry) into one snapshot
//! with [`v6obs::MetricsSnapshot::merge_prefixed`]. See DESIGN.md §14
//! and the README "Running a cluster" section.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod net;
pub mod node;
pub mod proto;
pub mod ring;

pub use cluster::{
    Cluster, ClusterConfig, ConvergenceReport, PartitionStatus, PublishOutcome, ReadOutcome,
    ReadRecord, ReadStatus,
};
pub use net::{ClusterNet, Link, CLIENT};
pub use node::{partition_name, Node, NodeOpts};
pub use proto::ReplMsg;
pub use ring::{partition_of, Ring};
