//! The consistent-hash ring: virtual nodes on a u64 circle, replica
//! sets walked clockwise.
//!
//! Keys do not hash onto the ring directly — the /48 address space
//! first folds into a fixed number of **partitions**
//! ([`partition_of`]), and the ring places partitions on nodes. The
//! indirection is what keeps replication tractable: a node replicates
//! whole partitions (each one store + one epoch log), not arbitrary
//! key ranges, and a membership change moves partitions — never
//! splits them.
//!
//! Placement math: each node projects `vnodes` points onto the circle
//! (`hash64` of `"<node>#<v>"`), and a key's replica set is the first
//! R *distinct* nodes at or after the key's own hash point, walking
//! clockwise. Determinism and the rebalance bound follow from the
//! construction:
//!
//! * the same node set always yields the same points, so assignment
//!   is a pure function of (nodes, vnodes, R, key);
//! * removing a node deletes only that node's points — every key
//!   whose walk never crossed them keeps its exact replica set, so a
//!   single membership change moves an expected K/N of K keys (the
//!   deterministic bound is pinned in `tests/ring_properties.rs`);
//! * distinctness is enforced during the walk, so two replicas of one
//!   key can never land on the same node.

use v6netsim::rng::hash64;

/// Domain separator for vnode placement hashes.
const RING_SALT: u64 = 0x7636_7269_6e67_5f31; // "v6ring_1"

/// Domain separator for key→partition hashes (distinct from placement
/// so partition ids never correlate with ring positions).
const PARTITION_SALT: u64 = 0x7636_7061_7274_5f31; // "v6part_1"

/// The partition a /48 network belongs to, out of `partitions`.
///
/// Only the top 48 bits participate, so every address in a /48 — the
/// paper's aggregation unit — lands in the same partition and is
/// served by one replica set.
pub fn partition_of(bits: u128, partitions: u32) -> u32 {
    assert!(partitions > 0, "partition count must be positive");
    let net48 = (bits >> 80) as u64;
    (hash64(PARTITION_SALT, &net48.to_be_bytes()) % u64::from(partitions)) as u32
}

/// A consistent-hash ring over a fixed node set.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted, deduplicated node names.
    nodes: Vec<String>,
    /// `(point, node index)` sorted ascending — the circle.
    points: Vec<(u64, u32)>,
    vnodes: usize,
    replication: usize,
}

impl Ring {
    /// Builds a ring placing `vnodes` points per node, serving
    /// replication factor `replication` (capped at the node count).
    pub fn build<I, S>(nodes: I, vnodes: usize, replication: usize) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut nodes: Vec<String> = nodes.into_iter().map(Into::into).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert!(!nodes.is_empty(), "ring needs at least one node");
        assert!(vnodes >= 1, "at least one virtual node per node");
        assert!(replication >= 1, "replication factor must be positive");
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (i, node) in nodes.iter().enumerate() {
            for v in 0..vnodes {
                let point = hash64(RING_SALT, format!("{node}#{v}").as_bytes());
                points.push((point, i as u32));
            }
        }
        // Ties (vanishingly rare) break by node index so the circle is
        // a pure function of the node set.
        points.sort_unstable();
        Ring {
            nodes,
            points,
            vnodes,
            replication,
        }
    }

    /// The node set, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Virtual nodes per node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The effective replication factor: the configured R, capped at
    /// the node count (a 2-node ring cannot hold 3 distinct replicas).
    pub fn replication(&self) -> usize {
        self.replication.min(self.nodes.len())
    }

    /// The replica set for a raw key hash: the first
    /// [`Ring::replication`] distinct nodes clockwise from `h`, in
    /// walk order (index 0 is the primary).
    pub fn replicas_for_hash(&self, h: u64) -> Vec<&str> {
        let want = self.replication();
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut picked: Vec<u32> = Vec::with_capacity(want);
        for k in 0..self.points.len() {
            let (_, idx) = self.points[(start + k) % self.points.len()];
            if !picked.contains(&idx) {
                picked.push(idx);
                if picked.len() == want {
                    break;
                }
            }
        }
        picked
            .into_iter()
            .map(|i| self.nodes[i as usize].as_str())
            .collect()
    }

    /// The replica set for a partition id.
    pub fn replicas_for_partition(&self, partition: u32) -> Vec<&str> {
        self.replicas_for_hash(hash64(
            RING_SALT,
            format!("partition:{partition}").as_bytes(),
        ))
    }

    /// The primary node for a partition (walk-order first replica).
    pub fn primary_for_partition(&self, partition: u32) -> &str {
        self.replicas_for_partition(partition)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_distinct() {
        let a = Ring::build(["n2", "n0", "n1", "n0"], 64, 3);
        let b = Ring::build(["n0", "n1", "n2"], 64, 3);
        assert_eq!(a.nodes(), b.nodes());
        for pid in 0..32 {
            let ra = a.replicas_for_partition(pid);
            let rb = b.replicas_for_partition(pid);
            assert_eq!(ra, rb, "same node set, same placement");
            assert_eq!(ra.len(), 3);
            let mut d = ra.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "replicas are distinct nodes");
        }
    }

    #[test]
    fn replication_caps_at_node_count() {
        let r = Ring::build(["a", "b"], 16, 3);
        assert_eq!(r.replication(), 2);
        assert_eq!(r.replicas_for_partition(0).len(), 2);
    }

    #[test]
    fn partition_of_keys_whole_48s_together() {
        let p = 8;
        let base: u128 = 0x2001_0db8_0001 << 80;
        let a = partition_of(base | 0x1, p);
        let b = partition_of(base | (0xffff << 40), p);
        assert_eq!(a, b, "same /48, same partition");
        assert!(a < p);
    }

    #[test]
    fn membership_change_leaves_most_placements_alone() {
        let before = Ring::build(["n0", "n1", "n2", "n3"], 64, 2);
        let after = Ring::build(["n0", "n1", "n2", "n3", "n4"], 64, 2);
        let total = 256u32;
        let moved = (0..total)
            .filter(|&pid| {
                before.replicas_for_partition(pid)[0] != after.replicas_for_partition(pid)[0]
            })
            .count();
        // Expected K/(N+1) = 51.2; generous headroom, but far below a
        // naive rehash (which would move ~4/5 of all placements).
        assert!(
            moved <= (total as usize) / 3,
            "one join moved {moved}/{total} primaries"
        );
    }
}
