//! The cluster driver: membership, publish routing, hedged reads,
//! fault orchestration, and the convergence check.
//!
//! A [`Cluster`] owns N simulated [`Node`]s (named `n0..n{N-1}`), the
//! shared fabric ([`ClusterNet`]), and a consistent-hash [`Ring`] that
//! assigns every partition a replica set. Time is caller-driven: one
//! [`Cluster::pump_round`] advances the simulated clock by 1 ms, pumps
//! every live node once, then **reaps** nodes a chaos `Panic` (or
//! [`Cluster::kill`]) crashed — their in-memory state drops, their
//! fabric lanes are wiped — and **restarts** nodes whose downtime has
//! elapsed, through real [`Node::restart`] crash recovery.
//!
//! Writes route to the partition's first live replica in ring walk
//! order (leader leases are not modeled; the paper's workload is a
//! single publisher per partition). Reads route through a hedged
//! coordinator on the reserved [`CLIENT`] endpoint: probe the primary,
//! hedge to the next replica every `hedge_after_rounds`, and label the
//! answer —
//!
//! * **fresh** when a replica answered at the committed epoch with no
//!   shard quarantined and a read quorum of replicas was reachable;
//! * **degraded** otherwise, whenever *any* answer arrived — stale
//!   epochs and under-quorum answers are served, but always labeled;
//! * **unavailable** when nothing answered by the deadline.
//!
//! Every read is also appended to an audit log, so the invariant
//! "no unlabeled stale answer" is checked against the record, not
//! against the implementation's own opinion of itself.
//!
//! [`Cluster::converge`] runs anti-entropy (behind replicas ask every
//! live peer for catch-up) until every replica of every published
//! partition serves the committed `(epoch, content_checksum)` —
//! byte-identical content — and renders a deterministic
//! [`ConvergenceReport`] the golden fixtures pin.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use v6chaos::{Chaos, NoChaos};
use v6obs::{MetricsSnapshot, Registry};
use v6store::format::AliasEntry;
use v6wire::frame::{frame, FrameDecoder};
use v6wire::transport::Transport;

use crate::net::{ClusterNet, Link, CLIENT};
use crate::node::{Node, NodeOpts};
use crate::proto::ReplMsg;
use crate::ring::{partition_of, Ring};

/// Distinguishes scratch directories of clusters built in one process.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node count; nodes are named `n0..n{nodes-1}`.
    pub nodes: usize,
    /// Replication factor R (capped at the node count by the ring).
    pub replication: usize,
    /// Fixed partition count the /48 space folds into.
    pub partitions: u32,
    /// Virtual nodes per node on the ring.
    pub vnodes: usize,
    /// Shards per partition store (power of two).
    pub shards: usize,
    /// Delta records retained per replica for catch-up replay.
    pub history_cap: usize,
    /// Rounds a read coordinator waits before hedging to the next
    /// replica.
    pub hedge_after_rounds: u32,
    /// Rounds after which an unanswered read gives up.
    pub read_deadline_rounds: u32,
    /// Rounds a killed node stays down before restarting.
    pub restart_after_rounds: u64,
    /// Scratch root for the nodes' epoch logs (removed on drop).
    pub data_root: PathBuf,
    /// Seed recorded for reports; the chaos plan carries its own.
    pub seed: u64,
}

impl ClusterConfig {
    /// Defaults sized for simulation: 8 partitions, 64 vnodes, 4
    /// shards, hedge after 2 rounds, restart after 6.
    pub fn new(nodes: usize, replication: usize, seed: u64) -> ClusterConfig {
        let uniq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        ClusterConfig {
            nodes,
            replication,
            partitions: 8,
            vnodes: 64,
            shards: 4,
            history_cap: 16,
            hedge_after_rounds: 2,
            read_deadline_rounds: 8,
            restart_after_rounds: 6,
            data_root: std::env::temp_dir().join(format!(
                "v6cluster-{}-{}-{uniq}",
                std::process::id(),
                seed
            )),
            seed,
        }
    }
}

/// A node's slot in the cluster: live, or down awaiting restart.
enum NodeSlot {
    Up(Box<Node>),
    Down { since_round: u64 },
}

/// How a routed publish ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The leader made the epoch durable and pushed it to followers.
    Committed {
        /// The cluster-assigned epoch number.
        epoch: u64,
        /// Content checksum of the published epoch.
        checksum: u64,
        /// The node that led the publish.
        leader: String,
    },
    /// No live replica could lead; the write must be retried later.
    Deferred,
    /// The leader's local publish failed (counted, epoch number burned).
    Failed,
}

/// Freshness label on a read answer. The invariant: an answer below
/// the committed epoch is **never** labeled [`ReadStatus::Fresh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// Answered at the committed epoch, full quorum reachable.
    Fresh,
    /// Answered — but stale, quarantined, or under-quorum. Labeled.
    Degraded,
    /// No replica answered before the deadline.
    Unavailable,
}

impl fmt::Display for ReadStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReadStatus::Fresh => "fresh",
            ReadStatus::Degraded => "degraded",
            ReadStatus::Unavailable => "unavailable",
        })
    }
}

/// A hedged read's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Freshness label (see [`ReadStatus`]).
    pub status: ReadStatus,
    /// Whether the address is in the hitlist at the answering epoch.
    pub present: bool,
    /// First week the address was observed, when present.
    pub first_week: Option<u32>,
    /// Epoch of the snapshot that answered (0 = no answer).
    pub epoch: u64,
    /// The committed epoch the coordinator compared against (0 =
    /// nothing ever committed for the partition).
    pub committed_epoch: u64,
    /// The partition the address routed to.
    pub partition: u32,
    /// Replicas probed before settling.
    pub probes: usize,
}

/// One line of the read audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRecord {
    /// Partition probed.
    pub partition: u32,
    /// Committed epoch at read time.
    pub committed_epoch: u64,
    /// Epoch that actually answered (0 = none).
    pub answered_epoch: u64,
    /// The label the coordinator attached.
    pub status: ReadStatus,
}

/// One partition's state in a [`ConvergenceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStatus {
    /// Partition id.
    pub partition: u32,
    /// Committed epoch.
    pub epoch: u64,
    /// Committed content checksum.
    pub checksum: u64,
    /// Replica set in ring walk order.
    pub replicas: Vec<String>,
    /// True when every replica serves exactly `(epoch, checksum)`.
    pub in_sync: bool,
}

/// What [`Cluster::converge`] reached, rendered deterministically —
/// the golden chaos fixtures diff its `Display` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// True when every replica of every published partition serves the
    /// committed `(epoch, checksum)` — byte-identical content.
    pub converged: bool,
    /// Rounds the convergence loop ran.
    pub rounds: u64,
    /// Per-partition detail, ascending by partition id.
    pub partitions: Vec<PartitionStatus>,
    /// An order-sensitive fold of every partition's `(id, epoch,
    /// checksum)` — one number that two converged runs can compare.
    pub combined_checksum: u64,
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} after {} rounds: {} partitions, combined {:#018x}",
            if self.converged {
                "CONVERGED"
            } else {
                "DIVERGED"
            },
            self.rounds,
            self.partitions.len(),
            self.combined_checksum
        )?;
        for p in &self.partitions {
            writeln!(
                f,
                "  p{} epoch={} checksum={:#018x} replicas={} {}",
                p.partition,
                p.epoch,
                p.checksum,
                p.replicas.join(","),
                if p.in_sync { "in-sync" } else { "BEHIND" }
            )?;
        }
        Ok(())
    }
}

/// A replica's decoded answer to one read probe.
#[derive(Debug, Clone)]
struct RespData {
    epoch: u64,
    present: bool,
    first_week: Option<u32>,
    shard_missing: bool,
}

/// One live replica's streaming state for a partition:
/// `(node, epoch, [(operator, checksum); 4])`.
pub type StreamChecksumRow = (String, u64, [(&'static str, u64); 4]);

/// N simulated nodes, a ring, a fabric, and a caller-driven clock.
pub struct Cluster {
    cfg: ClusterConfig,
    ring: Ring,
    net: ClusterNet,
    fabric_registry: Registry,
    slots: BTreeMap<String, NodeSlot>,
    /// The coordinator's half of each client↔node lane.
    client_links: BTreeMap<String, Link>,
    client_decoders: BTreeMap<String, FrameDecoder>,
    /// `pid` → committed `(epoch, checksum)`: what a fresh read must
    /// match. Committed means leader-durable.
    committed: BTreeMap<u32, (u64, u64)>,
    /// Current partition group map (empty = fully connected).
    groups: BTreeMap<String, u8>,
    /// When set, every node runs per-partition streaming analytics on
    /// its replication stream; restarts re-enable with this resolver.
    stream_resolver: Option<v6stream::SharedResolver>,
    round: u64,
    next_epoch: u64,
    next_req: u64,
    events: Vec<String>,
    reads: Vec<ReadRecord>,
}

impl Cluster {
    /// A cluster with no fault injection.
    pub fn new(cfg: ClusterConfig) -> io::Result<Cluster> {
        Cluster::with_chaos(cfg, Arc::new(NoChaos))
    }

    /// A cluster whose fabric consults `chaos` at
    /// `cluster.<node>.<seq>` sites (see [`crate::net`]).
    pub fn with_chaos(cfg: ClusterConfig, chaos: Arc<dyn Chaos>) -> io::Result<Cluster> {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        assert!(
            cfg.partitions >= 1,
            "a cluster needs at least one partition"
        );
        let names: Vec<String> = (0..cfg.nodes).map(|i| format!("n{i}")).collect();
        let ring = Ring::build(names.clone(), cfg.vnodes, cfg.replication);
        let fabric_registry = Registry::new();
        let net = ClusterNet::new(chaos, &fabric_registry);
        let mut cluster = Cluster {
            ring,
            net,
            fabric_registry,
            slots: BTreeMap::new(),
            client_links: BTreeMap::new(),
            client_decoders: BTreeMap::new(),
            committed: BTreeMap::new(),
            groups: BTreeMap::new(),
            stream_resolver: None,
            round: 0,
            next_epoch: 1,
            next_req: 1,
            events: Vec::new(),
            reads: Vec::new(),
            cfg,
        };
        for name in &names {
            let pids = cluster.pids_of(name);
            let mut node = Node::create(name.clone(), &pids, cluster.node_opts())?;
            cluster.wire_node(&mut node);
            cluster
                .slots
                .insert(name.clone(), NodeSlot::Up(Box::new(node)));
            cluster
                .client_links
                .insert(name.clone(), cluster.net.link(CLIENT, name.clone()));
            cluster
                .client_decoders
                .insert(name.clone(), FrameDecoder::new());
        }
        Ok(cluster)
    }

    fn node_opts(&self) -> NodeOpts {
        NodeOpts {
            data_root: self.cfg.data_root.clone(),
            shard_count: self.cfg.shards,
            partitions: self.cfg.partitions,
            history_cap: self.cfg.history_cap,
        }
    }

    /// The partitions `name` replicates under the current ring.
    fn pids_of(&self, name: &str) -> Vec<u32> {
        (0..self.cfg.partitions)
            .filter(|&pid| self.ring.replicas_for_partition(pid).contains(&name))
            .collect()
    }

    /// Gives `node` its fabric links: every peer, plus the client.
    fn wire_node(&self, node: &mut Node) {
        for peer in self.ring.nodes() {
            if peer != node.name() {
                node.connect(
                    peer.clone(),
                    self.net.link(node.name().to_string(), peer.clone()),
                );
            }
        }
        node.connect(CLIENT, self.net.link(node.name().to_string(), CLIENT));
    }

    /// Turns on streaming analytics cluster-wide: every live node gets
    /// per-partition [`v6stream::StreamDriver`]s riding its replication
    /// stream, and nodes restarted after a crash re-enable themselves
    /// with the same resolver (resynced from their recovered mirror —
    /// the bootstrap path).
    pub fn enable_streaming(&mut self, resolver: v6stream::SharedResolver) {
        for slot in self.slots.values_mut() {
            if let NodeSlot::Up(node) = slot {
                node.enable_streaming(Arc::clone(&resolver));
            }
        }
        self.stream_resolver = Some(resolver);
    }

    /// Per-replica streaming operator checksums for `pid`, one row per
    /// live hosting node: `(node, epoch, [(operator, checksum); 4])`.
    pub fn stream_checksums(&self, pid: u32) -> Vec<StreamChecksumRow> {
        let mut rows = Vec::new();
        for (name, slot) in &self.slots {
            if let NodeSlot::Up(node) = slot {
                if let (Some(epoch), Some(sums)) =
                    (node.stream_epoch(pid), node.stream_checksums(pid))
                {
                    rows.push((name.clone(), epoch, sums));
                }
            }
        }
        rows
    }

    /// The ring this cluster routes by.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Rounds pumped so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The simulated clock: 1 ms per round.
    fn now_us(&self) -> u64 {
        self.round * 1000
    }

    /// The committed `(epoch, checksum)` for a partition, if any
    /// publish ever committed there.
    pub fn committed(&self, pid: u32) -> Option<(u64, u64)> {
        self.committed.get(&pid).copied()
    }

    /// The deterministic event log (kills, restarts, publishes,
    /// partitions) — golden fixtures pin these lines.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// The read audit log.
    pub fn read_audit(&self) -> &[ReadRecord] {
        &self.reads
    }

    /// Audited invariant: reads answered below the committed epoch
    /// that were nevertheless labeled fresh. Must always be zero.
    pub fn unlabeled_stale_reads(&self) -> usize {
        self.reads
            .iter()
            .filter(|r| r.answered_epoch < r.committed_epoch && r.status == ReadStatus::Fresh)
            .count()
    }

    /// True when `name` is up, not mid-crash, and on the client's side
    /// of any partition.
    fn is_reachable(&self, name: &str) -> bool {
        self.is_up(name)
            && self.groups.get(name).copied().unwrap_or(0)
                == self.groups.get(CLIENT).copied().unwrap_or(0)
    }

    fn is_up(&self, name: &str) -> bool {
        matches!(self.slots.get(name), Some(NodeSlot::Up(_))) && !self.net.is_crashed(name)
    }

    /// True when no node is down or mid-crash.
    pub fn all_up(&self) -> bool {
        self.ring.nodes().iter().all(|n| self.is_up(n))
    }

    /// Advances the clock one round: pump every live node, then reap
    /// crashed nodes and restart those whose downtime elapsed.
    pub fn pump_round(&mut self) {
        self.round += 1;
        let now = self.now_us();
        for slot in self.slots.values_mut() {
            if let NodeSlot::Up(node) = slot {
                node.pump(now);
            }
        }
        self.reap_and_restart();
    }

    fn reap_and_restart(&mut self) {
        // Reap: a chaos Panic (or Cluster::kill) marked the node
        // crashed; its process state drops here, its sockets die.
        for name in self.net.crashed() {
            if let Some(slot) = self.slots.get_mut(&name) {
                if matches!(slot, NodeSlot::Up(_)) {
                    *slot = NodeSlot::Down {
                        since_round: self.round,
                    };
                    self.net.disconnect(&name);
                    self.events
                        .push(format!("round {}: KILL {name}", self.round));
                }
            }
        }
        // Restart: recover every partition store from disk; the node
        // rejoins with an empty delta history and catches up over the
        // wire like any lagging replica.
        let due: Vec<String> = self
            .slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                NodeSlot::Down { since_round }
                    if self.round - since_round >= self.cfg.restart_after_rounds =>
                {
                    Some(name.clone())
                }
                _ => None,
            })
            .collect();
        for name in due {
            let pids = self.pids_of(&name);
            match Node::restart(name.clone(), &pids, self.node_opts()) {
                Ok(mut node) => {
                    self.net.revive(&name);
                    self.wire_node(&mut node);
                    if let Some(resolver) = &self.stream_resolver {
                        node.enable_streaming(Arc::clone(resolver));
                    }
                    self.slots
                        .insert(name.clone(), NodeSlot::Up(Box::new(node)));
                    self.events
                        .push(format!("round {}: RESTART {name}", self.round));
                }
                Err(err) => {
                    self.events.push(format!(
                        "round {}: RESTART-FAILED {name} ({err})",
                        self.round
                    ));
                    self.slots.insert(
                        name,
                        NodeSlot::Down {
                            since_round: self.round,
                        },
                    );
                }
            }
        }
    }

    /// Kills a node outright (driver-initiated; chaos `Panic`s kill
    /// through the fabric). Reaped on the next [`Cluster::pump_round`].
    pub fn kill(&mut self, node: &str) {
        self.net.crash(node);
    }

    /// Imposes a network partition: endpoints in different groups lose
    /// every chunk between them. The [`CLIENT`] defaults to group 0.
    pub fn set_partition(&mut self, groups: &BTreeMap<String, u8>) {
        self.groups = groups.clone();
        self.net.set_groups(groups);
        let desc: Vec<String> = groups.iter().map(|(n, g)| format!("{n}={g}")).collect();
        self.events.push(format!(
            "round {}: PARTITION {}",
            self.round,
            desc.join(",")
        ));
    }

    /// Heals any partition.
    pub fn heal(&mut self) {
        self.groups.clear();
        self.net.heal();
        self.events.push(format!("round {}: HEAL", self.round));
    }

    /// Publishes the next epoch of `pid` through its first live
    /// replica in ring walk order. Entries and aliases are sorted and
    /// deduplicated here, so callers can pass raw collections.
    pub fn publish(
        &mut self,
        pid: u32,
        week: u64,
        mut entries: Vec<(u128, u32)>,
        mut aliases: Vec<AliasEntry>,
    ) -> PublishOutcome {
        assert!(pid < self.cfg.partitions, "partition out of range");
        entries.sort_unstable_by_key(|&(bits, _)| bits);
        entries.dedup_by_key(|e| e.0);
        aliases.sort_unstable_by_key(|a| (a.bits, a.len));
        aliases.dedup_by_key(|a| (a.bits, a.len));
        let replicas: Vec<String> = self
            .ring
            .replicas_for_partition(pid)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let Some(leader) = replicas.iter().find(|r| self.is_up(r)).cloned() else {
            // Every replica is down; the epoch number is not burned
            // and a later publish (with fresher content) self-heals.
            self.events.push(format!(
                "round {}: DEFER p{pid} (no live replica)",
                self.round
            ));
            return PublishOutcome::Deferred;
        };
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let followers: Vec<String> = replicas.into_iter().filter(|r| *r != leader).collect();
        let now = self.now_us();
        let result = match self.slots.get_mut(&leader) {
            Some(NodeSlot::Up(node)) => {
                node.lead_publish(pid, epoch, week, entries, aliases, &followers, now)
            }
            _ => unreachable!("leader chosen from live slots"),
        };
        match result {
            Ok(checksum) => {
                self.committed.insert(pid, (epoch, checksum));
                self.events.push(format!(
                    "round {}: PUBLISH p{pid} epoch={epoch} leader={leader} checksum={checksum:#018x}",
                    self.round
                ));
                PublishOutcome::Committed {
                    epoch,
                    checksum,
                    leader,
                }
            }
            Err(_) => {
                self.events.push(format!(
                    "round {}: PUBLISH-FAILED p{pid} epoch={epoch} leader={leader}",
                    self.round
                ));
                PublishOutcome::Failed
            }
        }
    }

    /// A hedged read for one address, driven to completion (the clock
    /// advances while the coordinator waits). See the module docs for
    /// the labeling rules; every read lands in the audit log.
    pub fn read(&mut self, bits: u128) -> ReadOutcome {
        let pid = partition_of(bits, self.cfg.partitions);
        let replicas: Vec<String> = self
            .ring
            .replicas_for_partition(pid)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let committed_epoch = self.committed.get(&pid).map_or(0, |&(e, _)| e);
        let deadline = self.round + u64::from(self.cfg.read_deadline_rounds);
        let mut req_ids: Vec<u64> = Vec::new();
        let mut responses: BTreeMap<u64, RespData> = BTreeMap::new();
        let mut next_replica = 0usize;
        let mut last_probe_round = self.round;
        loop {
            let hedge_due = req_ids.is_empty()
                || self.round >= last_probe_round + u64::from(self.cfg.hedge_after_rounds);
            if hedge_due && next_replica < replicas.len() {
                let req_id = self.next_req;
                self.next_req += 1;
                let target = &replicas[next_replica];
                next_replica += 1;
                let msg = ReplMsg::Read { req_id, bits };
                let now = self.now_us();
                if let Some(link) = self.client_links.get_mut(target) {
                    let _ = link.send(&frame(&msg.encode()), now);
                }
                req_ids.push(req_id);
                last_probe_round = self.round;
            }
            self.pump_round();
            self.drain_client(&req_ids, &mut responses);
            let fresh_arrived = responses
                .values()
                .any(|r| r.epoch == committed_epoch && !r.shard_missing);
            if fresh_arrived || self.round >= deadline {
                break;
            }
        }
        // The best answer is the freshest; ties break toward the
        // earliest probe (BTreeMap order = probe order).
        let best = responses.values().max_by_key(|r| r.epoch).cloned();
        let reachable = replicas.iter().filter(|r| self.is_reachable(r)).count();
        let quorum = self.ring.replication() / 2 + 1;
        let status = match &best {
            Some(b) if b.epoch == committed_epoch && !b.shard_missing && reachable >= quorum => {
                ReadStatus::Fresh
            }
            Some(_) => ReadStatus::Degraded,
            None => ReadStatus::Unavailable,
        };
        let outcome = ReadOutcome {
            status,
            present: best.as_ref().is_some_and(|b| b.present),
            first_week: best.as_ref().and_then(|b| b.first_week),
            epoch: best.as_ref().map_or(0, |b| b.epoch),
            committed_epoch,
            partition: pid,
            probes: req_ids.len(),
        };
        self.reads.push(ReadRecord {
            partition: pid,
            committed_epoch,
            answered_epoch: outcome.epoch,
            status,
        });
        outcome
    }

    /// Collects [`ReplMsg::ReadResp`]s addressed to this read off the
    /// client lanes. Responses to older (abandoned) reads are dropped.
    fn drain_client(&mut self, req_ids: &[u64], responses: &mut BTreeMap<u64, RespData>) {
        let now = self.now_us();
        for (node, link) in self.client_links.iter_mut() {
            let Ok(bytes) = link.recv(now) else { continue };
            if bytes.is_empty() {
                continue;
            }
            let decoder = self
                .client_decoders
                .get_mut(node)
                .expect("decoder per client lane");
            let Ok(payloads) = decoder.feed(&bytes) else {
                *decoder = FrameDecoder::new();
                continue;
            };
            for payload in payloads {
                if let Some(ReplMsg::ReadResp {
                    req_id,
                    epoch,
                    present,
                    first_week,
                    shard_missing,
                }) = ReplMsg::decode(&payload)
                {
                    if req_ids.contains(&req_id) {
                        responses.insert(
                            req_id,
                            RespData {
                                epoch,
                                present,
                                first_week,
                                shard_missing,
                            },
                        );
                    }
                }
            }
        }
    }

    /// One anti-entropy sweep: every live replica that is behind the
    /// committed epoch of a partition it hosts asks *every* live peer
    /// replica for catch-up (robust to the leader having died since).
    fn anti_entropy(&mut self) {
        let mut requests: Vec<(String, u32, Vec<String>)> = Vec::new();
        for (&pid, &(epoch, _)) in &self.committed {
            let replicas = self.ring.replicas_for_partition(pid);
            for replica in &replicas {
                if !self.is_up(replica) {
                    continue;
                }
                let behind = match self.slots.get(*replica) {
                    Some(NodeSlot::Up(node)) => {
                        node.epoch_checksum(pid).is_none_or(|(e, _)| e < epoch)
                    }
                    _ => continue,
                };
                if behind {
                    let peers: Vec<String> = replicas
                        .iter()
                        .filter(|p| *p != replica && self.is_up(p))
                        .map(|p| p.to_string())
                        .collect();
                    if !peers.is_empty() {
                        requests.push((replica.to_string(), pid, peers));
                    }
                }
            }
        }
        let now = self.now_us();
        for (name, pid, peers) in requests {
            if let Some(NodeSlot::Up(node)) = self.slots.get_mut(&name) {
                for peer in peers {
                    node.request_catchup(pid, &peer, now);
                }
            }
        }
    }

    /// True when every replica of every published partition serves the
    /// committed `(epoch, checksum)`.
    pub fn is_converged(&self) -> bool {
        self.committed.iter().all(|(&pid, &(epoch, checksum))| {
            self.ring.replicas_for_partition(pid).iter().all(|replica| {
                match self.slots.get(*replica) {
                    Some(NodeSlot::Up(node)) => node.epoch_checksum(pid) == Some((epoch, checksum)),
                    _ => false,
                }
            })
        })
    }

    /// Runs anti-entropy rounds until the cluster converges (all nodes
    /// up, all replicas byte-identical) or `max_rounds` elapse. Call
    /// [`Cluster::heal`] first if a partition is still imposed —
    /// convergence across a partition is impossible by construction.
    pub fn converge(&mut self, max_rounds: u64) -> ConvergenceReport {
        let start = self.round;
        while self.round - start < max_rounds {
            if self.all_up() && self.is_converged() {
                break;
            }
            self.anti_entropy();
            self.pump_round();
        }
        let converged = self.all_up() && self.is_converged();
        let mut partitions = Vec::with_capacity(self.committed.len());
        let mut combined = 0u64;
        for (&pid, &(epoch, checksum)) in &self.committed {
            let replicas: Vec<String> = self
                .ring
                .replicas_for_partition(pid)
                .iter()
                .map(|s| s.to_string())
                .collect();
            let in_sync = replicas.iter().all(|r| match self.slots.get(r) {
                Some(NodeSlot::Up(node)) => node.epoch_checksum(pid) == Some((epoch, checksum)),
                _ => false,
            });
            combined = combined.rotate_left(9).wrapping_mul(0x100_0000_01b3)
                ^ checksum
                ^ (u64::from(pid) << 1)
                ^ epoch;
            partitions.push(PartitionStatus {
                partition: pid,
                epoch,
                checksum,
                replicas,
                in_sync,
            });
        }
        ConvergenceReport {
            converged,
            rounds: self.round - start,
            partitions,
            combined_checksum: combined,
        }
    }

    /// Every node's registry (plus the fabric's) folded into one
    /// snapshot: metric names become `<node>.<name>` / `fabric.<name>`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut parts: Vec<(String, MetricsSnapshot)> =
            vec![("fabric".to_string(), self.fabric_registry.snapshot())];
        for (name, slot) in &self.slots {
            if let NodeSlot::Up(node) = slot {
                parts.push((name.clone(), node.metrics()));
            }
        }
        MetricsSnapshot::merge_prefixed(parts.iter().map(|(n, s)| (n.as_str(), s)))
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // The data root is this cluster's scratch space (unique per
        // construction); nodes' stores close when slots drop first.
        self.slots.clear();
        let _ = std::fs::remove_dir_all(&self.cfg.data_root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> Cluster {
        let mut cfg = ClusterConfig::new(4, 3, seed);
        cfg.partitions = 4;
        Cluster::new(cfg).unwrap()
    }

    fn settle(cluster: &mut Cluster, rounds: u64) {
        for _ in 0..rounds {
            cluster.pump_round();
        }
    }

    #[test]
    fn publish_replicates_to_every_replica() {
        let mut c = tiny(7);
        let out = c.publish(0, 1, vec![(10, 1), (20, 1)], vec![]);
        let PublishOutcome::Committed {
            epoch, checksum, ..
        } = out
        else {
            panic!("publish must commit on a healthy cluster");
        };
        assert_eq!(epoch, 1);
        settle(&mut c, 4);
        assert!(c.is_converged());
        let replicas: Vec<String> = c
            .ring()
            .replicas_for_partition(0)
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(replicas.len(), 3);
        for r in &replicas {
            let NodeSlot::Up(node) = &c.slots[r] else {
                panic!("all up")
            };
            assert_eq!(node.epoch_checksum(0), Some((epoch, checksum)));
        }
    }

    #[test]
    fn reads_label_fresh_and_degraded_correctly() {
        let mut c = tiny(11);
        let bits: u128 = 0x2001_0db8_0042 << 80 | 7;
        let pid = partition_of(bits, 4);
        c.publish(pid, 2, vec![(bits, 2)], vec![]);
        settle(&mut c, 4);

        let fresh = c.read(bits);
        assert_eq!(fresh.status, ReadStatus::Fresh);
        assert!(fresh.present);
        assert_eq!(fresh.first_week, Some(2));

        // Cut the whole replica set off from the client: answers can
        // still arrive from nobody — unavailable, never silently stale.
        let groups: BTreeMap<String, u8> =
            c.ring().nodes().iter().map(|n| (n.clone(), 1u8)).collect();
        c.set_partition(&groups);
        let cut = c.read(bits);
        assert_eq!(cut.status, ReadStatus::Unavailable);
        c.heal();

        assert_eq!(c.unlabeled_stale_reads(), 0);
    }

    #[test]
    fn killed_node_restarts_and_catches_up() {
        let mut c = tiny(13);
        let replicas: Vec<String> = c
            .ring()
            .replicas_for_partition(1)
            .iter()
            .map(|s| s.to_string())
            .collect();
        c.publish(1, 1, vec![(100, 1)], vec![]);
        settle(&mut c, 3);

        // Kill a follower, advance the epoch while it is down.
        let victim = replicas[1].clone();
        c.kill(&victim);
        c.pump_round();
        assert!(!c.all_up());
        c.publish(1, 2, vec![(100, 1), (200, 2)], vec![]);

        let report = c.converge(64);
        assert!(report.converged, "{report}");
        assert!(c.all_up());
        let line = report.to_string();
        assert!(line.starts_with("CONVERGED"), "{line}");
        assert!(c
            .events()
            .iter()
            .any(|e| e.contains(&format!("KILL {victim}"))));
        assert!(c
            .events()
            .iter()
            .any(|e| e.contains(&format!("RESTART {victim}"))));
    }

    #[test]
    fn streaming_operators_converge_across_replicas() {
        let mut c = tiny(23);
        let resolver: v6stream::SharedResolver = Arc::new(v6stream::PrefixAsTable::new(vec![(
            0x2001_0db8u128 << 96,
            32,
            v6stream::AsTag {
                index: 1,
                country: v6stream::country_code(*b"DE"),
            },
        )]));
        c.enable_streaming(Arc::clone(&resolver));

        let base = 0x2001_0db8u128 << 96;
        let mut entries: Vec<(u128, u32)> = Vec::new();
        for week in 1..=4u32 {
            entries.push((base | (u128::from(week) << 64) | u128::from(week), week));
            entries.sort_unstable_by_key(|&(b, _)| b);
            c.publish(0, u64::from(week), entries.clone(), vec![]);
            settle(&mut c, 3);
        }

        // Kill a follower, advance the epoch while it is down, then
        // converge: the restarted node re-enables streaming from its
        // recovered mirror and heals over catch-up.
        let victim = c.ring().replicas_for_partition(0)[1].to_string();
        c.kill(&victim);
        c.pump_round();
        entries.push((base | (5u128 << 64) | 5, 5));
        entries.sort_unstable_by_key(|&(b, _)| b);
        c.publish(0, 5, entries.clone(), vec![]);
        let report = c.converge(64);
        assert!(report.converged, "{report}");

        // Every live replica's streaming operators match each other
        // AND a from-scratch batch analysis of the final corpus —
        // regardless of whether they rode deltas, restarted, or
        // bootstrapped.
        let rows = c.stream_checksums(0);
        assert_eq!(rows.len(), 3, "every live replica runs streaming");
        let want = v6stream::Analytics::from_entries(Arc::clone(&resolver), &entries).checksums();
        let (epoch, _) = c.committed(0).unwrap();
        for (node, e, sums) in rows {
            assert_eq!(e, epoch, "{node}'s stream lags the committed epoch");
            assert_eq!(sums, want, "{node}'s operators diverged from batch");
        }
    }

    #[test]
    fn merged_metrics_carry_node_prefixes() {
        let mut c = tiny(17);
        c.publish(0, 1, vec![(1, 0)], vec![]);
        settle(&mut c, 3);
        let snap = c.metrics();
        assert!(snap
            .counter("fabric.cluster.net.chunks")
            .is_some_and(|v| v > 0));
        let pushed: u64 = (0..4)
            .filter_map(|i| snap.counter(&format!("n{i}.cluster.repl.deltas_pushed")))
            .sum();
        assert_eq!(pushed, 2, "leader pushed to both followers");
    }
}
