//! The node-to-node replication protocol: message shapes and their
//! byte codec.
//!
//! Messages reuse the [`v6store::format`] primitives for their bodies
//! and travel inside [`v6wire::frame`] frames (length prefix +
//! FNV-checksum), so the replication stream, the front-door wire
//! protocol, and the on-disk epoch log all share one codec family.
//! There is no preamble on replication links — both ends are the same
//! build of the same binary.
//!
//! Shapes (see DESIGN.md §14 for the state machine around them):
//!
//! * [`ReplMsg::DeltaPush`] — leader → follower: one epoch's
//!   [`DeltaRecord`] plus the epoch it extends (`prev_epoch`), so a
//!   follower can tell "applies exactly" from "I missed something".
//! * [`ReplMsg::DeltaAck`] — follower → leader: the epoch and content
//!   checksum the follower reached, the leader's quorum evidence.
//! * [`ReplMsg::CatchUpReq`] — a replica asking a peer for everything
//!   after `have_epoch`.
//! * [`ReplMsg::CatchUpResp`] — the peer's reply: a contiguous chain
//!   of retained deltas, or a full [`EpochState`] bootstrap when its
//!   history no longer reaches back that far.
//! * [`ReplMsg::Read`] / [`ReplMsg::ReadResp`] — the hedged read
//!   coordinator's probe and a replica's labeled answer.

use v6store::format::{Dec, Enc};
use v6store::replica::DeltaRecord;
use v6store::EpochState;

const TAG_DELTA_PUSH: u8 = 0x41;
const TAG_DELTA_ACK: u8 = 0x42;
const TAG_CATCHUP_REQ: u8 = 0x43;
const TAG_CATCHUP_RESP: u8 = 0x44;
const TAG_READ: u8 = 0x45;
const TAG_READ_RESP: u8 = 0x46;

/// One replication-protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// Leader → follower: apply `delta` if your mirror is at
    /// `prev_epoch`, otherwise ask to catch up.
    DeltaPush {
        /// Partition the delta belongs to.
        partition: u32,
        /// The epoch the sender's mirror was at before this delta.
        prev_epoch: u64,
        /// The epoch diff itself.
        delta: DeltaRecord,
    },
    /// Follower → leader: the epoch and checksum the follower's store
    /// now serves for this partition.
    DeltaAck {
        /// Partition acknowledged.
        partition: u32,
        /// Epoch the follower reached.
        epoch: u64,
        /// Content checksum of the follower's published snapshot.
        checksum: u64,
    },
    /// Replica → peer: send me everything after `have_epoch`.
    CatchUpReq {
        /// Partition to catch up.
        partition: u32,
        /// The requester's current epoch for that partition.
        have_epoch: u64,
    },
    /// Peer → replica: the catch-up material.
    CatchUpResp {
        /// Partition being caught up.
        partition: u32,
        /// Full-state bootstrap when the delta chain is unavailable.
        base: Option<EpochState>,
        /// Contiguous `(prev_epoch, delta)` chain starting at the
        /// requester's `have_epoch` (empty when `base` is given).
        deltas: Vec<(u64, DeltaRecord)>,
    },
    /// Coordinator → replica: membership probe for one address.
    Read {
        /// Correlates the response with the hedged request.
        req_id: u64,
        /// The probed address as raw bits.
        bits: u128,
    },
    /// Replica → coordinator: the labeled answer.
    ReadResp {
        /// Echoed request id.
        req_id: u64,
        /// Epoch of the snapshot that answered (0 = not hosting).
        epoch: u64,
        /// Whether the address is in the hitlist at that epoch.
        present: bool,
        /// First week the address was observed, when present.
        first_week: Option<u32>,
        /// True when the answering shard is serving quarantined
        /// (possibly stale) content — the coordinator must label.
        shard_missing: bool,
    },
}

fn enc_delta(e: &mut Enc, d: &DeltaRecord) {
    e.u64(d.epoch);
    e.u64(d.week);
    e.u64(d.content_checksum);
    e.shards(&d.missing_shards);
    e.removed(&d.removed);
    e.entries(&d.added);
    e.removed_aliases(&d.removed_aliases);
    e.aliases(&d.added_aliases);
}

fn dec_delta(d: &mut Dec<'_>) -> Option<DeltaRecord> {
    Some(DeltaRecord {
        epoch: d.u64()?,
        week: d.u64()?,
        content_checksum: d.u64()?,
        missing_shards: d.shards()?,
        removed: d.removed()?,
        added: d.entries()?,
        removed_aliases: d.removed_aliases()?,
        added_aliases: d.aliases()?,
    })
}

fn enc_state(e: &mut Enc, s: &EpochState) {
    e.name(&s.name);
    e.u32(s.shard_bits);
    e.u64(s.epoch);
    e.u64(s.week);
    e.u64(s.content_checksum);
    e.shards(&s.missing_shards);
    e.entries(&s.entries);
    e.aliases(&s.aliases);
}

fn dec_state(d: &mut Dec<'_>) -> Option<EpochState> {
    Some(EpochState {
        name: d.name()?,
        shard_bits: d.u32()?,
        epoch: d.u64()?,
        week: d.u64()?,
        content_checksum: d.u64()?,
        missing_shards: d.shards()?,
        entries: d.entries()?,
        aliases: d.aliases()?,
    })
}

impl ReplMsg {
    /// Encodes the message as a frame payload (the caller wraps it
    /// with [`v6wire::frame::frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ReplMsg::DeltaPush {
                partition,
                prev_epoch,
                delta,
            } => {
                e.u8(TAG_DELTA_PUSH);
                e.u32(*partition);
                e.u64(*prev_epoch);
                enc_delta(&mut e, delta);
            }
            ReplMsg::DeltaAck {
                partition,
                epoch,
                checksum,
            } => {
                e.u8(TAG_DELTA_ACK);
                e.u32(*partition);
                e.u64(*epoch);
                e.u64(*checksum);
            }
            ReplMsg::CatchUpReq {
                partition,
                have_epoch,
            } => {
                e.u8(TAG_CATCHUP_REQ);
                e.u32(*partition);
                e.u64(*have_epoch);
            }
            ReplMsg::CatchUpResp {
                partition,
                base,
                deltas,
            } => {
                e.u8(TAG_CATCHUP_RESP);
                e.u32(*partition);
                match base {
                    Some(state) => {
                        e.u8(1);
                        enc_state(&mut e, state);
                    }
                    None => e.u8(0),
                }
                e.u32(deltas.len() as u32);
                for (prev, delta) in deltas {
                    e.u64(*prev);
                    enc_delta(&mut e, delta);
                }
            }
            ReplMsg::Read { req_id, bits } => {
                e.u8(TAG_READ);
                e.u64(*req_id);
                e.u128(*bits);
            }
            ReplMsg::ReadResp {
                req_id,
                epoch,
                present,
                first_week,
                shard_missing,
            } => {
                e.u8(TAG_READ_RESP);
                e.u64(*req_id);
                e.u64(*epoch);
                let mut flags = 0u8;
                if *present {
                    flags |= 1;
                }
                if *shard_missing {
                    flags |= 2;
                }
                if first_week.is_some() {
                    flags |= 4;
                }
                e.u8(flags);
                e.u32(first_week.unwrap_or(0));
            }
        }
        e.into_bytes()
    }

    /// Decodes a frame payload. `None` on truncation, trailing bytes,
    /// or an unknown tag — the receiver drops the frame and counts it.
    pub fn decode(payload: &[u8]) -> Option<ReplMsg> {
        let mut d = Dec::new(payload);
        let msg = match d.u8()? {
            TAG_DELTA_PUSH => ReplMsg::DeltaPush {
                partition: d.u32()?,
                prev_epoch: d.u64()?,
                delta: dec_delta(&mut d)?,
            },
            TAG_DELTA_ACK => ReplMsg::DeltaAck {
                partition: d.u32()?,
                epoch: d.u64()?,
                checksum: d.u64()?,
            },
            TAG_CATCHUP_REQ => ReplMsg::CatchUpReq {
                partition: d.u32()?,
                have_epoch: d.u64()?,
            },
            TAG_CATCHUP_RESP => {
                let partition = d.u32()?;
                let base = match d.u8()? {
                    0 => None,
                    1 => Some(dec_state(&mut d)?),
                    _ => return None,
                };
                let count = d.u32()? as usize;
                let mut deltas = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let prev = d.u64()?;
                    deltas.push((prev, dec_delta(&mut d)?));
                }
                ReplMsg::CatchUpResp {
                    partition,
                    base,
                    deltas,
                }
            }
            TAG_READ => ReplMsg::Read {
                req_id: d.u64()?,
                bits: d.u128()?,
            },
            TAG_READ_RESP => {
                let req_id = d.u64()?;
                let epoch = d.u64()?;
                let flags = d.u8()?;
                if flags & !7 != 0 {
                    return None;
                }
                let week = d.u32()?;
                ReplMsg::ReadResp {
                    req_id,
                    epoch,
                    present: flags & 1 != 0,
                    shard_missing: flags & 2 != 0,
                    first_week: (flags & 4 != 0).then_some(week),
                }
            }
            _ => return None,
        };
        d.is_exhausted().then_some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6store::AliasEntry;

    fn sample_delta() -> DeltaRecord {
        DeltaRecord {
            epoch: 9,
            week: 3,
            content_checksum: 0xdead_beef,
            missing_shards: vec![1],
            removed: vec![5, 70],
            added: vec![(6, 1), (80, 3)],
            removed_aliases: vec![(7, 48)],
            added_aliases: vec![AliasEntry {
                bits: 9 << 80,
                len: 48,
                week: 3,
            }],
        }
    }

    #[test]
    fn every_shape_round_trips() {
        let msgs = vec![
            ReplMsg::DeltaPush {
                partition: 4,
                prev_epoch: 8,
                delta: sample_delta(),
            },
            ReplMsg::DeltaAck {
                partition: 4,
                epoch: 9,
                checksum: 0xdead_beef,
            },
            ReplMsg::CatchUpReq {
                partition: 2,
                have_epoch: 5,
            },
            ReplMsg::CatchUpResp {
                partition: 2,
                base: None,
                deltas: vec![(5, sample_delta()), (9, sample_delta())],
            },
            ReplMsg::CatchUpResp {
                partition: 2,
                base: Some(EpochState {
                    name: "p2".into(),
                    shard_bits: 2,
                    epoch: 9,
                    week: 3,
                    content_checksum: 1,
                    missing_shards: vec![],
                    entries: vec![(1, 0)],
                    aliases: vec![],
                }),
                deltas: vec![],
            },
            ReplMsg::Read {
                req_id: 77,
                bits: 0x2001_0db8 << 96,
            },
            ReplMsg::ReadResp {
                req_id: 77,
                epoch: 9,
                present: true,
                first_week: Some(2),
                shard_missing: false,
            },
            ReplMsg::ReadResp {
                req_id: 78,
                epoch: 0,
                present: false,
                first_week: None,
                shard_missing: true,
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert_eq!(ReplMsg::decode(&bytes), Some(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = ReplMsg::CatchUpReq {
            partition: 1,
            have_epoch: 2,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert_eq!(ReplMsg::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(ReplMsg::decode(&padded), None);
        assert_eq!(ReplMsg::decode(&[0x7f, 0, 0]), None, "unknown tag");
    }
}
