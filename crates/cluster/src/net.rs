//! The simulated cluster fabric: in-memory links with node-granularity
//! chaos and partition groups.
//!
//! Every inter-node byte crosses a [`Link`] — an implementation of the
//! [`v6wire::Transport`] trait over a shared [`ClusterNet`] core — so
//! replication is always real messages on a caller-driven clock, never
//! shared memory. The fabric is where the three node-level failure
//! modes live, decided by a seeded [`v6chaos`] plan at
//! `cluster.<node>.<seq>` sites (`seq` counts the node's outbound
//! chunks, so one seed replays one fault pattern):
//!
//! * [`Fault::Error`] — the chunk is dropped (message loss);
//! * [`Fault::Stall`] — delivery defers until the stall elapses, and
//!   the lane preserves order behind it (head-of-line, like TCP);
//! * [`Fault::Panic`] — the **sending node dies**: the chunk is lost,
//!   the node is marked crashed, and the cluster driver reaps it —
//!   drops its in-memory state, wipes its lanes (a dead process holds
//!   no connections) — and later restarts it through crash recovery.
//!
//! Network partitions are **group maps**: endpoints in different
//! groups silently lose every chunk between them (counted, never
//! delivered), exactly the failure mode that makes degraded-read
//! labeling necessary. The read coordinator occupies the reserved
//! endpoint name [`CLIENT`], which is exempt from chaos decisions (the
//! fabric models the service's replication plane; the front door has
//! its own chaos story in `v6wire`) but fully subject to partitions.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use v6chaos::{Chaos, Fault};
use v6obs::{Counter, Registry};
use v6wire::transport::{Transport, TransportError};

/// The reserved endpoint name of the read coordinator.
pub const CLIENT: &str = "client";

/// One directed lane's queue: `(release_us, chunk)` in send order.
type Lane = VecDeque<(u64, Vec<u8>)>;

struct NetCounters {
    chunks: Counter,
    lost: Counter,
    stalled: Counter,
    kills: Counter,
    partition_drops: Counter,
    dead_drops: Counter,
}

impl NetCounters {
    fn new(registry: &Registry) -> NetCounters {
        NetCounters {
            chunks: registry.counter("cluster.net.chunks"),
            lost: registry.counter("cluster.net.lost"),
            stalled: registry.counter("cluster.net.stalled"),
            kills: registry.counter("cluster.net.kills"),
            partition_drops: registry.counter("cluster.net.partition_drops"),
            dead_drops: registry.counter("cluster.net.dead_drops"),
        }
    }
}

struct NetCore {
    lanes: BTreeMap<(String, String), Lane>,
    /// Partition group per endpoint; absent = group 0 (connected).
    groups: BTreeMap<String, u8>,
    crashed: BTreeSet<String>,
    /// Per-sender outbound chunk counter (the chaos site sequence).
    seqs: BTreeMap<String, u32>,
    chaos: Arc<dyn Chaos>,
    counters: NetCounters,
}

impl NetCore {
    fn group(&self, endpoint: &str) -> u8 {
        self.groups.get(endpoint).copied().unwrap_or(0)
    }
}

/// The shared fabric all links hang off.
#[derive(Clone)]
pub struct ClusterNet {
    core: Arc<Mutex<NetCore>>,
}

impl ClusterNet {
    /// A fabric with the given chaos source, counting into `registry`
    /// (`cluster.net.*`).
    pub fn new(chaos: Arc<dyn Chaos>, registry: &Registry) -> ClusterNet {
        ClusterNet {
            core: Arc::new(Mutex::new(NetCore {
                lanes: BTreeMap::new(),
                groups: BTreeMap::new(),
                crashed: BTreeSet::new(),
                seqs: BTreeMap::new(),
                chaos,
                counters: NetCounters::new(registry),
            })),
        }
    }

    /// A directed link endpoint: `from`'s handle for talking to `to`.
    pub fn link(&self, from: impl Into<String>, to: impl Into<String>) -> Link {
        Link {
            core: Arc::clone(&self.core),
            from: from.into(),
            to: to.into(),
        }
    }

    /// Imposes a partition: endpoints in different groups lose every
    /// chunk between them. Unlisted endpoints default to group 0.
    pub fn set_groups(&self, groups: &BTreeMap<String, u8>) {
        self.core.lock().groups = groups.clone();
    }

    /// Heals any partition: everything is one group again.
    pub fn heal(&self) {
        self.core.lock().groups.clear();
    }

    /// Endpoints a chaos `Panic` has killed since they last revived.
    pub fn crashed(&self) -> BTreeSet<String> {
        self.core.lock().crashed.clone()
    }

    /// True when `endpoint` is currently marked crashed.
    pub fn is_crashed(&self, endpoint: &str) -> bool {
        self.core.lock().crashed.contains(endpoint)
    }

    /// Marks an endpoint crashed directly — a driver-initiated kill,
    /// as opposed to a chaos `Panic` mid-send. Counted the same way.
    pub fn crash(&self, endpoint: &str) {
        let mut core = self.core.lock();
        if core.crashed.insert(endpoint.to_string()) {
            core.counters.kills.inc();
        }
    }

    /// Reaps a dead endpoint's connections: every lane to or from it
    /// is wiped (a dead process holds no sockets). The crashed mark
    /// stays until [`ClusterNet::revive`].
    pub fn disconnect(&self, endpoint: &str) {
        let mut core = self.core.lock();
        core.lanes
            .retain(|(from, to), _| from != endpoint && to != endpoint);
    }

    /// Brings a restarted endpoint back: clears its crashed mark. Its
    /// chaos site sequence keeps counting where it left off, so one
    /// seed still describes the whole run.
    pub fn revive(&self, endpoint: &str) {
        self.core.lock().crashed.remove(endpoint);
    }
}

/// One directed transport endpoint on the fabric.
///
/// `send` moves bytes toward `to` (through chaos, unless `from` is the
/// [`CLIENT`]); `recv` takes bytes sent *by* `to` toward `from` that
/// have been released by `now_us`.
pub struct Link {
    core: Arc<Mutex<NetCore>>,
    from: String,
    to: String,
}

impl Transport for Link {
    fn send(&mut self, bytes: &[u8], now_us: u64) -> Result<(), TransportError> {
        let mut core = self.core.lock();
        if core.crashed.contains(&self.from) {
            // A dead process can't send; the driver reaps it shortly.
            return Err(TransportError::Closed);
        }
        let mut release_us = now_us;
        if self.from != CLIENT {
            let seq = {
                let s = core.seqs.entry(self.from.clone()).or_insert(0);
                let cur = *s;
                *s += 1;
                cur
            };
            let site = format!("cluster.{}.{seq}", self.from);
            match core.chaos.decide(&site, 0) {
                Fault::None => {}
                Fault::Error => {
                    core.counters.lost.inc();
                    return Ok(()); // loss is silent, like the network
                }
                Fault::Stall(d) => {
                    core.counters.stalled.inc();
                    release_us = now_us + d.as_micros() as u64;
                }
                Fault::Panic => {
                    // The sending node dies mid-send: the chunk is
                    // lost and the driver will reap the node.
                    core.crashed.insert(self.from.clone());
                    core.counters.kills.inc();
                    return Ok(());
                }
            }
        }
        if core.crashed.contains(&self.to) {
            core.counters.dead_drops.inc();
            return Ok(());
        }
        if core.group(&self.from) != core.group(&self.to) {
            core.counters.partition_drops.inc();
            return Ok(());
        }
        core.counters.chunks.inc();
        core.lanes
            .entry((self.from.clone(), self.to.clone()))
            .or_default()
            .push_back((release_us, bytes.to_vec()));
        Ok(())
    }

    fn recv(&mut self, now_us: u64) -> Result<Vec<u8>, TransportError> {
        let mut core = self.core.lock();
        if core.crashed.contains(&self.from) {
            return Err(TransportError::Closed);
        }
        let mut out = Vec::new();
        if let Some(lane) = core.lanes.get_mut(&(self.to.clone(), self.from.clone())) {
            // FIFO with head-of-line blocking: a stalled chunk delays
            // everything behind it, preserving byte order like TCP.
            while lane.front().is_some_and(|&(release, _)| release <= now_us) {
                let (_, chunk) = lane.pop_front().expect("front checked");
                out.extend_from_slice(&chunk);
            }
        }
        Ok(out)
    }

    fn close(&mut self) {
        // Cluster links close by node death (driver reap), not
        // individually.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use v6chaos::{NoChaos, ScriptedChaos, SiteScript};

    fn quiet_net() -> (ClusterNet, Registry) {
        let registry = Registry::new();
        (ClusterNet::new(Arc::new(NoChaos), &registry), registry)
    }

    #[test]
    fn links_deliver_in_order_between_endpoints() {
        let (net, _reg) = quiet_net();
        let mut a = net.link("n0", "n1");
        let mut b = net.link("n1", "n0");
        a.send(b"one", 0).unwrap();
        a.send(b"two", 0).unwrap();
        assert_eq!(b.recv(0).unwrap(), b"onetwo".to_vec());
        b.send(b"back", 0).unwrap();
        assert_eq!(a.recv(0).unwrap(), b"back".to_vec());
    }

    #[test]
    fn partition_groups_drop_cross_group_chunks() {
        let (net, reg) = quiet_net();
        let mut a = net.link("n0", "n1");
        let mut b = net.link("n1", "n0");
        let groups: BTreeMap<String, u8> = [("n0".to_string(), 0), ("n1".to_string(), 1)]
            .into_iter()
            .collect();
        net.set_groups(&groups);
        a.send(b"lost", 0).unwrap();
        assert_eq!(b.recv(0).unwrap(), Vec::<u8>::new());
        net.heal();
        a.send(b"kept", 0).unwrap();
        assert_eq!(b.recv(0).unwrap(), b"kept".to_vec());
        assert_eq!(
            reg.snapshot().counter("cluster.net.partition_drops"),
            Some(1)
        );
    }

    #[test]
    fn panic_kills_the_sender_until_revived() {
        let registry = Registry::new();
        let chaos = ScriptedChaos::new().with("cluster.n0.0", SiteScript::permanent_panic());
        let net = ClusterNet::new(Arc::new(chaos), &registry);
        let mut a = net.link("n0", "n1");
        let mut b = net.link("n1", "n0");
        a.send(b"dying breath", 0).unwrap();
        assert!(net.is_crashed("n0"));
        assert_eq!(b.recv(0).unwrap(), Vec::<u8>::new());
        // Dead endpoints can't send or recv, and chunks toward them
        // are dropped.
        assert_eq!(a.send(b"x", 0), Err(TransportError::Closed));
        assert_eq!(a.recv(0), Err(TransportError::Closed));
        b.send(b"hello?", 0).unwrap();
        net.disconnect("n0");
        net.revive("n0");
        assert!(!net.is_crashed("n0"));
        // The pre-revival chunk died with the connections.
        assert_eq!(a.recv(0).unwrap(), Vec::<u8>::new());
        b.send(b"welcome back", 0).unwrap();
        assert_eq!(a.recv(0).unwrap(), b"welcome back".to_vec());
        assert_eq!(registry.snapshot().counter("cluster.net.kills"), Some(1));
    }

    #[test]
    fn stalls_defer_and_preserve_order() {
        let registry = Registry::new();
        let chaos = ScriptedChaos::new().with(
            "cluster.n0.0",
            SiteScript::ok().with_stall(Duration::from_millis(5)),
        );
        let net = ClusterNet::new(Arc::new(chaos), &registry);
        let mut a = net.link("n0", "n1");
        let mut b = net.link("n1", "n0");
        a.send(b"first", 0).unwrap(); // stalled to 5ms
        a.send(b"second", 0).unwrap();
        // Head-of-line: nothing delivers until the stalled chunk is due.
        assert_eq!(b.recv(4_000).unwrap(), Vec::<u8>::new());
        assert_eq!(b.recv(5_000).unwrap(), b"firstsecond".to_vec());
    }

    #[test]
    fn client_endpoint_is_chaos_exempt() {
        let registry = Registry::new();
        // A plan that would kill any node on its first chunk.
        let chaos = ScriptedChaos::new().with("cluster.client.0", SiteScript::permanent_panic());
        let net = ClusterNet::new(Arc::new(chaos), &registry);
        let mut c = net.link(CLIENT, "n0");
        let mut n = net.link("n0", CLIENT);
        c.send(b"probe", 0).unwrap();
        assert!(!net.is_crashed(CLIENT));
        assert_eq!(n.recv(0).unwrap(), b"probe".to_vec());
    }
}
