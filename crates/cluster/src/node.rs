//! One simulated cluster node: its partition replicas, the
//! replication state machine, and the serving half of the read path.
//!
//! A node owns one [`v6serve::HitlistStore`] (backed by a `v6store`
//! epoch log on disk) per partition it replicates, plus an in-memory
//! **mirror** — the full [`EpochState`] its store currently serves —
//! and a short history of the [`DeltaRecord`]s that built it. The
//! mirror is what deltas diff against and apply to; the history is
//! what catch-up replays to a lagging peer.
//!
//! The state machine (DESIGN.md §14 has the timeline diagrams):
//!
//! * **Leading** ([`Node::lead_publish`]): build the next epoch, make
//!   it durable locally (`publish_as`, write-ahead under the
//!   cluster-assigned epoch number), then push the delta to the
//!   followers. Durability strictly precedes the push, so a leader
//!   crash can lose an epoch but never advertise one it doesn't hold.
//! * **Following** (`DeltaPush`): a delta that extends the mirror
//!   exactly (`prev_epoch` matches) is verified — the rebuilt
//!   snapshot's content checksum must equal the one the delta
//!   carries — published durably, then acked. A stale delta is
//!   dropped; a gapped one triggers a `CatchUpReq`.
//! * **Catching up** (`CatchUpReq`/`CatchUpResp`): the peer replays
//!   its retained delta chain when it still reaches back to the
//!   requester's epoch, and otherwise bootstraps with its full
//!   mirror. A node that just restarted has an empty history, so its
//!   first catch-up always serves the bootstrap path.
//! * **Serving reads** (`Read`): answer from the local snapshot with
//!   the epoch and the shard-quarantine bit, so the coordinator can
//!   label anything that isn't provably fresh.
//!
//! Every message leaves as exactly one [`v6wire::frame`] frame in one
//! transport chunk. The fabric ([`crate::net`]) loses whole chunks,
//! never bytes, so a loss costs a message — the [`FrameDecoder`] on
//! the receiving side stays frame-aligned and catch-up heals the gap.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::Ipv6Addr;
use std::path::PathBuf;
use std::sync::Arc;

use v6obs::{Counter, MetricsSnapshot, Registry};
use v6serve::persist::{flatten_snapshot, snapshot_from_state};
use v6serve::{HitlistStore, PublishError, RecoverError, Snapshot, StoreConfig};
use v6store::format::AliasEntry;
use v6store::replica::{self, DeltaRecord};
use v6store::{EpochState, EpochView};
use v6stream::{Offer, SharedResolver, StreamDriver};
use v6wire::frame::{frame, FrameDecoder};
use v6wire::transport::Transport;

use crate::net::Link;
use crate::proto::ReplMsg;
use crate::ring::partition_of;

/// The store name every replica of partition `pid` publishes under.
///
/// Node-independent on purpose: two replicas of one partition hold
/// byte-identical epoch states, names included, so their content
/// checksums are directly comparable.
pub fn partition_name(pid: u32) -> String {
    format!("p{pid}")
}

/// Construction knobs shared by [`Node::create`] and [`Node::restart`].
#[derive(Debug, Clone)]
pub struct NodeOpts {
    /// Scratch root; partition `p` of node `n` persists under
    /// `<data_root>/<n>/p<p>`.
    pub data_root: PathBuf,
    /// Shards per partition store (power of two).
    pub shard_count: usize,
    /// Total partitions in the cluster — read routing needs it to map
    /// a probed address to the partition it serves.
    pub partitions: u32,
    /// Delta records each replica retains for catch-up replay; a
    /// requester further behind than this gets a full-state bootstrap.
    pub history_cap: usize,
}

impl NodeOpts {
    fn store_cfg(&self, node: &str, pid: u32) -> StoreConfig {
        let dir = self.data_root.join(node).join(partition_name(pid));
        // fsync off: the simulation's durability story is exercised by
        // the injected crash/recover cycle, not by surviving real
        // power loss mid-test.
        StoreConfig::new(dir).with_fsync(false)
    }
}

/// One partition's replica on this node: the durable store, the
/// in-memory mirror the replication protocol diffs against, and the
/// retained delta chain.
struct PartitionReplica {
    store: HitlistStore,
    mirror: EpochState,
    /// `(prev_epoch, delta)` pairs, contiguous by construction —
    /// each delta was applied when the mirror sat at its `prev_epoch`.
    history: VecDeque<(u64, DeltaRecord)>,
    /// Incremental streaming analytics riding the replication stream,
    /// when [`Node::enable_streaming`] turned them on. Every verified
    /// delta is fed through; a detected gap resyncs from the mirror
    /// (the node holds the full corpus locally, so reconciliation
    /// never goes over the wire).
    stream: Option<StreamDriver>,
}

impl PartitionReplica {
    /// Applies a delta that extends the mirror exactly: verify the
    /// rebuilt snapshot's checksum, publish durably, then adopt.
    /// Returns the `(epoch, checksum)` reached, or `None` when the
    /// delta was rejected (counted by the caller).
    fn apply_verified(
        &mut self,
        prev_epoch: u64,
        delta: DeltaRecord,
        history_cap: usize,
    ) -> Option<(u64, u64)> {
        debug_assert_eq!(prev_epoch, self.mirror.epoch);
        let mut next = self.mirror.clone();
        replica::apply(&mut next, &delta);
        let snap = snapshot_from_state(&next);
        if snap.content_checksum() != next.content_checksum {
            return None;
        }
        self.store.publish_as(snap, delta.epoch).ok()?;
        let reached = (next.epoch, next.content_checksum);
        self.mirror = next;
        self.stream_feed(&delta);
        self.history.push_back((prev_epoch, delta));
        while self.history.len() > history_cap {
            self.history.pop_front();
        }
        Some(reached)
    }

    /// Feeds one verified delta to the streaming operators; a detected
    /// gap (or a driver already lagging) heals by resyncing from the
    /// mirror this node just adopted.
    fn stream_feed(&mut self, delta: &DeltaRecord) {
        let Some(driver) = self.stream.as_mut() else {
            return;
        };
        match driver.feed(delta) {
            Offer::Gap | Offer::Lagging => self.stream_resync(),
            Offer::Applied(_) | Offer::Duplicate | Offer::Dropped => {}
        }
    }

    /// Rebuilds the streaming operators from the mirror — the local,
    /// no-wire reconciliation path (bootstrap adoption, replay gaps).
    fn stream_resync(&mut self) {
        if let Some(driver) = self.stream.as_mut() {
            driver.resync(self.mirror.epoch, self.mirror.week, &self.mirror.entries);
        }
    }
}

/// Per-node replication/read counters (registered in the node's own
/// [`Registry`]; the cluster merges them under a `<node>.` prefix).
struct NodeCounters {
    deltas_pushed: Counter,
    deltas_applied: Counter,
    dup_pushes: Counter,
    gap_pushes: Counter,
    acks: Counter,
    catchup_reqs: Counter,
    catchup_chains: Counter,
    catchup_bootstraps: Counter,
    catchup_applied: Counter,
    reads_served: Counter,
    rejected: Counter,
    bad_frames: Counter,
    bad_payloads: Counter,
}

impl NodeCounters {
    fn new(registry: &Registry) -> NodeCounters {
        NodeCounters {
            deltas_pushed: registry.counter("cluster.repl.deltas_pushed"),
            deltas_applied: registry.counter("cluster.repl.deltas_applied"),
            dup_pushes: registry.counter("cluster.repl.dup_pushes"),
            gap_pushes: registry.counter("cluster.repl.gap_pushes"),
            acks: registry.counter("cluster.repl.acks"),
            catchup_reqs: registry.counter("cluster.repl.catchup_reqs"),
            catchup_chains: registry.counter("cluster.repl.catchup_chains"),
            catchup_bootstraps: registry.counter("cluster.repl.catchup_bootstraps"),
            catchup_applied: registry.counter("cluster.repl.catchup_applied"),
            reads_served: registry.counter("cluster.read.served"),
            rejected: registry.counter("cluster.repl.rejected"),
            bad_frames: registry.counter("cluster.repl.bad_frames"),
            bad_payloads: registry.counter("cluster.repl.bad_payloads"),
        }
    }
}

struct Peer {
    link: Link,
    decoder: FrameDecoder,
}

/// One simulated node: named, with its own metrics registry, hosting
/// a set of partition replicas and talking to peers over fabric links.
pub struct Node {
    name: String,
    opts: NodeOpts,
    registry: Registry,
    counters: NodeCounters,
    replicas: BTreeMap<u32, PartitionReplica>,
    peers: BTreeMap<String, Peer>,
    /// Ack evidence: `(partition, epoch)` → nodes that durably hold it.
    acks: BTreeMap<(u32, u64), BTreeSet<String>>,
}

impl Node {
    /// Creates a fresh node hosting `pids`, wiping any previous store
    /// state under its data directories.
    pub fn create(name: impl Into<String>, pids: &[u32], opts: NodeOpts) -> io::Result<Node> {
        let name = name.into();
        let registry = Registry::new();
        let counters = NodeCounters::new(&registry);
        let mut replicas = BTreeMap::new();
        for &pid in pids {
            let store = HitlistStore::persistent(
                partition_name(pid),
                opts.shard_count,
                opts.store_cfg(&name, pid),
            )?;
            replicas.insert(
                pid,
                PartitionReplica {
                    store,
                    mirror: empty_mirror(pid, opts.shard_count),
                    history: VecDeque::new(),
                    stream: None,
                },
            );
        }
        Ok(Node {
            name,
            opts,
            registry,
            counters,
            replicas,
            peers: BTreeMap::new(),
            acks: BTreeMap::new(),
        })
    }

    /// Restarts a node after a crash: every partition store goes
    /// through [`HitlistStore::recover`] and the mirror is rebuilt by
    /// flattening the recovered snapshot. The delta history does not
    /// survive (it was process memory), so this node's first catch-up
    /// request is answered with a full-state bootstrap — exactly the
    /// degraded-history path the protocol is designed around.
    pub fn restart(
        name: impl Into<String>,
        pids: &[u32],
        opts: NodeOpts,
    ) -> Result<Node, RecoverError> {
        let name = name.into();
        let registry = Registry::new();
        let counters = NodeCounters::new(&registry);
        let mut replicas = BTreeMap::new();
        for &pid in pids {
            let (store, _report) = HitlistStore::recover(opts.store_cfg(&name, pid))?;
            let snap = store.snapshot();
            let (entries, aliases) = flatten_snapshot(&snap);
            let mirror = EpochState {
                name: partition_name(pid),
                shard_bits: shard_bits(opts.shard_count),
                epoch: snap.epoch(),
                week: snap.week(),
                content_checksum: snap.content_checksum(),
                missing_shards: snap.missing_shards().to_vec(),
                entries,
                aliases,
            };
            replicas.insert(
                pid,
                PartitionReplica {
                    store,
                    mirror,
                    history: VecDeque::new(),
                    stream: None,
                },
            );
        }
        Ok(Node {
            name,
            opts,
            registry,
            counters,
            replicas,
            peers: BTreeMap::new(),
            acks: BTreeMap::new(),
        })
    }

    /// This node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches (or replaces) the fabric link toward `peer`.
    pub fn connect(&mut self, peer: impl Into<String>, link: Link) {
        self.peers.insert(
            peer.into(),
            Peer {
                link,
                decoder: FrameDecoder::new(),
            },
        );
    }

    /// True when this node replicates partition `pid`.
    pub fn hosts(&self, pid: u32) -> bool {
        self.replicas.contains_key(&pid)
    }

    /// Turns on incremental streaming analytics for every hosted
    /// partition, bootstrapped from the current mirrors. From here on
    /// each verified replicated delta updates the operators in O(Δ);
    /// replay gaps heal by a local mirror resync. Idempotent per call
    /// (re-enabling resyncs from scratch).
    pub fn enable_streaming(&mut self, resolver: SharedResolver) {
        for replica in self.replicas.values_mut() {
            let mut driver = StreamDriver::new(Arc::clone(&resolver));
            driver.resync(
                replica.mirror.epoch,
                replica.mirror.week,
                &replica.mirror.entries,
            );
            replica.stream = Some(driver);
        }
    }

    /// The epoch the streaming operators of `pid` reflect, when
    /// streaming is enabled there.
    pub fn stream_epoch(&self, pid: u32) -> Option<u64> {
        Some(self.replicas.get(&pid)?.stream.as_ref()?.epoch())
    }

    /// `(operator name, checksum)` for `pid`'s streaming operators —
    /// the cross-replica convergence witness: equal corpus, equal
    /// checksums, regardless of the delta/gap/bootstrap path each
    /// replica took.
    pub fn stream_checksums(&self, pid: u32) -> Option<[(&'static str, u64); 4]> {
        Some(
            self.replicas
                .get(&pid)?
                .stream
                .as_ref()?
                .analytics()
                .checksums(),
        )
    }

    /// The streaming corpus checksum of `pid` (comparable against
    /// [`Node::epoch_checksum`]).
    pub fn stream_content_checksum(&self, pid: u32) -> Option<u64> {
        Some(self.replicas.get(&pid)?.stream.as_ref()?.content_checksum())
    }

    /// The `(epoch, content_checksum)` this node's store currently
    /// serves for `pid`, when hosted.
    pub fn epoch_checksum(&self, pid: u32) -> Option<(u64, u64)> {
        let r = self.replicas.get(&pid)?;
        let snap = r.store.snapshot();
        Some((snap.epoch(), snap.content_checksum()))
    }

    /// The serving snapshot for `pid`, when hosted.
    pub fn snapshot(&self, pid: u32) -> Option<Arc<Snapshot>> {
        self.replicas.get(&pid).map(|r| r.store.snapshot())
    }

    /// Nodes known (via self-publish or [`ReplMsg::DeltaAck`]) to
    /// durably hold `(pid, epoch)`.
    pub fn ack_count(&self, pid: u32, epoch: u64) -> usize {
        self.acks.get(&(pid, epoch)).map_or(0, BTreeSet::len)
    }

    /// This node's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Publishes the next epoch of `pid` as its leader.
    ///
    /// `entries` must be sorted ascending by bits and deduplicated;
    /// `aliases` sorted by `(bits, len)` — the cluster driver
    /// guarantees both. The epoch is made durable locally first, then
    /// the delta is pushed to `followers`. Returns the content
    /// checksum of the published epoch.
    #[allow(clippy::too_many_arguments)] // the full epoch description
    pub fn lead_publish(
        &mut self,
        pid: u32,
        epoch: u64,
        week: u64,
        entries: Vec<(u128, u32)>,
        aliases: Vec<AliasEntry>,
        followers: &[String],
        now_us: u64,
    ) -> Result<u64, PublishError> {
        let (msg, checksum) = {
            let replica = self
                .replicas
                .get_mut(&pid)
                .expect("leader must host the partition it publishes");
            let prev_epoch = replica.mirror.epoch;
            let mut next = EpochState {
                name: replica.mirror.name.clone(),
                shard_bits: replica.mirror.shard_bits,
                epoch,
                week,
                content_checksum: 0,
                missing_shards: Vec::new(),
                entries,
                aliases,
            };
            let snap = snapshot_from_state(&next);
            next.content_checksum = snap.content_checksum();
            let delta = replica::delta_between(
                &replica.mirror,
                &EpochView {
                    epoch,
                    week,
                    content_checksum: next.content_checksum,
                    missing_shards: &next.missing_shards,
                    entries: &next.entries,
                    aliases: &next.aliases,
                },
            );
            // Durable before visible, visible before pushed: a crash
            // here loses an epoch, never advertises a phantom one.
            replica.store.publish_as(snap, epoch)?;
            let checksum = next.content_checksum;
            replica.mirror = next;
            replica.stream_feed(&delta);
            replica.history.push_back((prev_epoch, delta.clone()));
            while replica.history.len() > self.opts.history_cap {
                replica.history.pop_front();
            }
            (
                ReplMsg::DeltaPush {
                    partition: pid,
                    prev_epoch,
                    delta,
                },
                checksum,
            )
        };
        self.acks
            .entry((pid, epoch))
            .or_default()
            .insert(self.name.clone());
        for follower in followers {
            self.counters.deltas_pushed.inc();
            self.send(follower, &msg, now_us);
        }
        Ok(checksum)
    }

    /// Asks `peer` for everything after this node's current epoch of
    /// `pid` — the anti-entropy probe the cluster driver fires while
    /// converging.
    pub fn request_catchup(&mut self, pid: u32, peer: &str, now_us: u64) {
        let Some(replica) = self.replicas.get(&pid) else {
            return;
        };
        let have_epoch = replica.mirror.epoch;
        self.counters.catchup_reqs.inc();
        self.send(
            peer,
            &ReplMsg::CatchUpReq {
                partition: pid,
                have_epoch,
            },
            now_us,
        );
    }

    /// Drains every peer link once and handles each decoded message.
    /// The caller-driven clock makes one `pump` per node per round.
    pub fn pump(&mut self, now_us: u64) {
        let peers: Vec<String> = self.peers.keys().cloned().collect();
        for peer in peers {
            for msg in self.drain(&peer, now_us) {
                self.handle(&peer, msg, now_us);
            }
        }
    }

    fn drain(&mut self, peer: &str, now_us: u64) -> Vec<ReplMsg> {
        let Some(p) = self.peers.get_mut(peer) else {
            return Vec::new();
        };
        let Ok(bytes) = p.link.recv(now_us) else {
            // This node is crashed; the driver reaps it shortly.
            return Vec::new();
        };
        let payloads = match p.decoder.feed(&bytes) {
            Ok(payloads) => payloads,
            Err(_) => {
                // Unreachable on this fabric (chunks are lost whole,
                // never corrupted), but a poisoned decoder must reset
                // or the peer is deaf forever.
                self.counters.bad_frames.inc();
                p.decoder = FrameDecoder::new();
                return Vec::new();
            }
        };
        let mut out = Vec::with_capacity(payloads.len());
        for payload in payloads {
            match ReplMsg::decode(&payload) {
                Some(msg) => out.push(msg),
                None => self.counters.bad_payloads.inc(),
            }
        }
        out
    }

    fn handle(&mut self, peer: &str, msg: ReplMsg, now_us: u64) {
        match msg {
            ReplMsg::DeltaPush {
                partition,
                prev_epoch,
                delta,
            } => self.on_delta_push(peer, partition, prev_epoch, delta, now_us),
            ReplMsg::DeltaAck {
                partition,
                epoch,
                checksum: _,
            } => {
                self.counters.acks.inc();
                self.acks
                    .entry((partition, epoch))
                    .or_default()
                    .insert(peer.to_string());
            }
            ReplMsg::CatchUpReq {
                partition,
                have_epoch,
            } => self.on_catchup_req(peer, partition, have_epoch, now_us),
            ReplMsg::CatchUpResp {
                partition,
                base,
                deltas,
            } => self.on_catchup_resp(peer, partition, base, deltas, now_us),
            ReplMsg::Read { req_id, bits } => self.on_read(peer, req_id, bits, now_us),
            // Nodes never originate reads; only the coordinator
            // (outside any node) consumes responses.
            ReplMsg::ReadResp { .. } => {}
        }
    }

    fn on_delta_push(
        &mut self,
        peer: &str,
        pid: u32,
        prev_epoch: u64,
        delta: DeltaRecord,
        now_us: u64,
    ) {
        let Some(replica) = self.replicas.get_mut(&pid) else {
            return;
        };
        if delta.epoch <= replica.mirror.epoch {
            self.counters.dup_pushes.inc();
            return;
        }
        if prev_epoch != replica.mirror.epoch {
            // A gap: we missed at least one push. Ask the sender for
            // the chain instead of applying out of order.
            self.counters.gap_pushes.inc();
            self.request_catchup(pid, peer, now_us);
            return;
        }
        match replica.apply_verified(prev_epoch, delta, self.opts.history_cap) {
            Some((epoch, checksum)) => {
                self.counters.deltas_applied.inc();
                self.acks
                    .entry((pid, epoch))
                    .or_default()
                    .insert(self.name.clone());
                self.send(
                    peer,
                    &ReplMsg::DeltaAck {
                        partition: pid,
                        epoch,
                        checksum,
                    },
                    now_us,
                );
            }
            None => self.counters.rejected.inc(),
        }
    }

    fn on_catchup_req(&mut self, peer: &str, pid: u32, have_epoch: u64, now_us: u64) {
        let Some(replica) = self.replicas.get(&pid) else {
            return;
        };
        if replica.mirror.epoch <= have_epoch {
            // Nothing to offer; the requester is at or ahead of us.
            return;
        }
        // The history is contiguous, so a chain exists iff some
        // retained delta starts exactly at the requester's epoch.
        let resp = match replica
            .history
            .iter()
            .position(|&(prev, _)| prev == have_epoch)
        {
            Some(i) => {
                self.counters.catchup_chains.inc();
                ReplMsg::CatchUpResp {
                    partition: pid,
                    base: None,
                    deltas: replica.history.iter().skip(i).cloned().collect(),
                }
            }
            None => {
                self.counters.catchup_bootstraps.inc();
                ReplMsg::CatchUpResp {
                    partition: pid,
                    base: Some(replica.mirror.clone()),
                    deltas: Vec::new(),
                }
            }
        };
        self.send(peer, &resp, now_us);
    }

    fn on_catchup_resp(
        &mut self,
        peer: &str,
        pid: u32,
        base: Option<EpochState>,
        deltas: Vec<(u64, DeltaRecord)>,
        now_us: u64,
    ) {
        let Some(replica) = self.replicas.get_mut(&pid) else {
            return;
        };
        let mut reached = None;
        if let Some(state) = base {
            // Full-state bootstrap: adopt only if it moves us forward
            // and its content matches its checksum.
            if state.epoch > replica.mirror.epoch {
                let snap = snapshot_from_state(&state);
                if snap.content_checksum() == state.content_checksum
                    && replica.store.publish_as(snap, state.epoch).is_ok()
                {
                    reached = Some((state.epoch, state.content_checksum));
                    replica.mirror = state;
                    // The chain that built the old mirror is now
                    // meaningless; future catch-ups we serve bootstrap.
                    replica.history.clear();
                    // The operators jumped epochs wholesale: rebuild
                    // them from the adopted corpus.
                    replica.stream_resync();
                } else {
                    self.counters.rejected.inc();
                }
            }
        }
        for (prev, delta) in deltas {
            if delta.epoch <= replica.mirror.epoch {
                continue; // already have it (e.g. raced with a push)
            }
            if prev != replica.mirror.epoch {
                break; // chain no longer lines up; a later round retries
            }
            match replica.apply_verified(prev, delta, self.opts.history_cap) {
                Some(r) => reached = Some(r),
                None => {
                    self.counters.rejected.inc();
                    break;
                }
            }
        }
        if let Some((epoch, checksum)) = reached {
            self.counters.catchup_applied.inc();
            self.acks
                .entry((pid, epoch))
                .or_default()
                .insert(self.name.clone());
            self.send(
                peer,
                &ReplMsg::DeltaAck {
                    partition: pid,
                    epoch,
                    checksum,
                },
                now_us,
            );
        }
    }

    fn on_read(&mut self, peer: &str, req_id: u64, bits: u128, now_us: u64) {
        let pid = partition_of(bits, self.opts.partitions);
        let resp = match self.replicas.get(&pid) {
            None => ReplMsg::ReadResp {
                // Not hosting: epoch 0 tells the coordinator this
                // answer carries no information.
                req_id,
                epoch: 0,
                present: false,
                first_week: None,
                shard_missing: false,
            },
            Some(replica) => {
                let snap = replica.store.snapshot();
                let addr = Ipv6Addr::from(bits);
                ReplMsg::ReadResp {
                    req_id,
                    epoch: snap.epoch(),
                    present: snap.contains(addr),
                    first_week: snap.first_week(addr),
                    shard_missing: snap.shard_missing(addr),
                }
            }
        };
        self.counters.reads_served.inc();
        self.send(peer, &resp, now_us);
    }

    /// Frames and sends one message toward `peer`. Exactly one frame
    /// per chunk (see the module docs); send errors mean this node is
    /// crashed and are ignored — the driver reaps it.
    fn send(&mut self, peer: &str, msg: &ReplMsg, now_us: u64) {
        if let Some(p) = self.peers.get_mut(peer) {
            let _ = p.link.send(&frame(&msg.encode()), now_us);
        }
    }
}

fn shard_bits(shard_count: usize) -> u32 {
    assert!(
        shard_count.is_power_of_two(),
        "shard count must be a power of two"
    );
    shard_count.trailing_zeros()
}

fn empty_mirror(pid: u32, shard_count: usize) -> EpochState {
    EpochState {
        name: partition_name(pid),
        shard_bits: shard_bits(shard_count),
        ..EpochState::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ClusterNet;
    use v6chaos::NoChaos;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("v6cluster-node-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(root: &std::path::Path) -> NodeOpts {
        NodeOpts {
            data_root: root.to_path_buf(),
            shard_count: 4,
            partitions: 4,
            history_cap: 4,
        }
    }

    fn wire(net: &ClusterNet, a: &mut Node, b: &mut Node) {
        a.connect(
            b.name().to_string(),
            net.link(a.name().to_string(), b.name().to_string()),
        );
        b.connect(
            a.name().to_string(),
            net.link(b.name().to_string(), a.name().to_string()),
        );
    }

    #[test]
    fn push_apply_ack_round_trip() {
        let root = scratch("push");
        let registry = Registry::new();
        let net = ClusterNet::new(Arc::new(NoChaos), &registry);
        let mut leader = Node::create("n0", &[1], opts(&root)).unwrap();
        let mut follower = Node::create("n1", &[1], opts(&root)).unwrap();
        wire(&net, &mut leader, &mut follower);

        let checksum = leader
            .lead_publish(1, 1, 0, vec![(10, 0), (20, 0)], vec![], &["n1".into()], 0)
            .unwrap();
        follower.pump(1_000);
        leader.pump(2_000);

        assert_eq!(follower.epoch_checksum(1), Some((1, checksum)));
        assert_eq!(leader.ack_count(1, 1), 2, "self + follower ack");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn gap_triggers_catchup_chain_replay() {
        let root = scratch("gap");
        let registry = Registry::new();
        let net = ClusterNet::new(Arc::new(NoChaos), &registry);
        let mut leader = Node::create("n0", &[0], opts(&root)).unwrap();
        let mut follower = Node::create("n1", &[0], opts(&root)).unwrap();
        wire(&net, &mut leader, &mut follower);

        // Epoch 1 never reaches the follower (no pump before the next
        // publish drains the lane into the decoder in order — simulate
        // loss by publishing twice, then dropping the first chunk).
        let drop_link = net.link("n1", "n0");
        leader
            .lead_publish(0, 1, 0, vec![(1, 0)], vec![], &["n1".into()], 0)
            .unwrap();
        {
            // Steal epoch 1's chunk off the lane before the follower
            // sees it.
            let mut l = drop_link;
            let _ = v6wire::transport::Transport::recv(&mut l, 0);
        }
        leader
            .lead_publish(0, 2, 1, vec![(1, 0), (2, 1)], vec![], &["n1".into()], 0)
            .unwrap();

        follower.pump(1_000); // sees epoch 2 push, detects the gap, asks
        leader.pump(2_000); // serves the chain
        follower.pump(3_000); // replays epochs 1..=2
        leader.pump(4_000); // collects the ack

        assert_eq!(
            follower.epoch_checksum(0).map(|(e, _)| e),
            Some(2),
            "follower caught up through the chain"
        );
        assert_eq!(
            leader.epoch_checksum(0),
            follower.epoch_checksum(0),
            "byte-identical content checksums"
        );
        assert_eq!(leader.ack_count(0, 2), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restart_rebuilds_mirror_and_bootstraps_forward() {
        let root = scratch("restart");
        let registry = Registry::new();
        let net = ClusterNet::new(Arc::new(NoChaos), &registry);
        let mut leader = Node::create("n0", &[2], opts(&root)).unwrap();
        let mut follower = Node::create("n1", &[2], opts(&root)).unwrap();
        wire(&net, &mut leader, &mut follower);

        leader
            .lead_publish(2, 1, 0, vec![(5, 0)], vec![], &["n1".into()], 0)
            .unwrap();
        follower.pump(1_000);
        assert_eq!(follower.epoch_checksum(2).map(|(e, _)| e), Some(1));

        // Kill the follower (drop it), advance the leader while it is
        // down, then restart it from disk.
        drop(follower);
        leader
            .lead_publish(2, 2, 1, vec![(5, 0), (6, 1)], vec![], &[], 0)
            .unwrap();

        let mut follower = Node::restart("n1", &[2], opts(&root)).unwrap();
        wire(&net, &mut leader, &mut follower);
        assert_eq!(
            follower.epoch_checksum(2).map(|(e, _)| e),
            Some(1),
            "recovery restored the pre-crash epoch"
        );

        follower.request_catchup(2, "n0", 10_000);
        leader.pump(11_000); // empty requester history upstream is
                             // irrelevant; the leader still has its
                             // chain and replays epoch 2
        follower.pump(12_000);
        assert_eq!(leader.epoch_checksum(2), follower.epoch_checksum(2));
        assert_eq!(follower.epoch_checksum(2).map(|(e, _)| e), Some(2));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reads_answer_with_epoch_and_quarantine_bit() {
        let root = scratch("read");
        let registry = Registry::new();
        let net = ClusterNet::new(Arc::new(NoChaos), &registry);
        let mut node = Node::create("n0", &[0, 1, 2, 3], opts(&root)).unwrap();
        node.connect(crate::net::CLIENT, net.link("n0", crate::net::CLIENT));
        let mut client = net.link(crate::net::CLIENT, "n0");

        let bits: u128 = 0x2001_0db8 << 96 | 0x1;
        let pid = partition_of(bits, 4);
        node.lead_publish(pid, 1, 3, vec![(bits, 3)], vec![], &[], 0)
            .unwrap();

        client
            .send(&frame(&ReplMsg::Read { req_id: 9, bits }.encode()), 0)
            .unwrap();
        node.pump(1_000);
        let bytes = client.recv(2_000).unwrap();
        let mut dec = FrameDecoder::new();
        let payloads = dec.feed(&bytes).unwrap();
        assert_eq!(payloads.len(), 1);
        assert_eq!(
            ReplMsg::decode(&payloads[0]),
            Some(ReplMsg::ReadResp {
                req_id: 9,
                epoch: 1,
                present: true,
                first_week: Some(3),
                shard_missing: false,
            })
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
