//! Ring placement properties (ISSUE 9 satellite).
//!
//! The consistent-hash ring's contract, pinned over the whole input
//! space rather than a few examples:
//!
//! * assignment is a pure function of the node *set* — input order
//!   never matters, and rebuilding after a join + leave that returns
//!   to the same set restores the exact placement;
//! * a single membership change only moves partitions that actually
//!   used the changed node: any partition whose replica set excluded
//!   it keeps its replica set bit-for-bit (the structural form of the
//!   "moves ≤ K/N keys" bound), and the quantitative bound itself is
//!   pinned for every cluster size the simulation uses;
//! * two replicas of one partition never land on the same node;
//! * the partition layer keys whole /48s: the low 80 bits never
//!   influence placement.

use proptest::prelude::*;
use v6cluster::{partition_of, Ring};

/// Collapses raw indices into at least `min` distinct node names from
/// a small universe (padding deterministically when the draw was too
/// repetitive).
fn to_nodes(raw: Vec<usize>, min: usize) -> Vec<String> {
    let mut set: std::collections::BTreeSet<usize> = raw.into_iter().collect();
    let mut filler = 100;
    while set.len() < min {
        set.insert(filler);
        filler += 1;
    }
    set.into_iter().map(|i| format!("m{i:03}")).collect()
}

/// Strategy: 2..8 distinct node names from a 12-name universe.
fn node_set() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(0usize..12, 1..8).prop_map(|raw| to_nodes(raw, 2))
}

proptest! {
    #[test]
    fn assignment_is_order_free_deterministic_and_distinct(
        nodes in node_set(),
        vnodes in 8usize..64,
        replication in 1usize..5,
        pid in 0u32..64,
    ) {
        let forward = Ring::build(nodes.clone(), vnodes, replication);
        let mut reversed = nodes.clone();
        reversed.reverse();
        let backward = Ring::build(reversed, vnodes, replication);

        let set = forward.replicas_for_partition(pid);
        prop_assert_eq!(&set, &backward.replicas_for_partition(pid));
        prop_assert_eq!(set.len(), replication.min(nodes.len()));
        let mut dedup = set.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), set.len(), "two replicas on one node");
    }

    #[test]
    fn join_and_leave_back_restores_every_placement(
        nodes in node_set(),
        vnodes in 8usize..64,
        replication in 1usize..4,
    ) {
        let before = Ring::build(nodes.clone(), vnodes, replication);
        let mut joined = nodes.clone();
        joined.push("joiner".to_string());
        let _transient = Ring::build(joined, vnodes, replication);
        let after = Ring::build(nodes, vnodes, replication);
        for pid in 0..64 {
            prop_assert_eq!(
                before.replicas_for_partition(pid),
                after.replicas_for_partition(pid)
            );
        }
    }

    #[test]
    fn leave_never_moves_partitions_that_avoided_the_leaver(
        nodes in prop::collection::vec(0usize..12, 1..8).prop_map(|raw| to_nodes(raw, 3)),
        vnodes in 8usize..64,
        replication in 1usize..4,
    ) {
        let leaver = nodes[0].clone();
        let before = Ring::build(nodes.clone(), vnodes, replication);
        let remaining: Vec<String> =
            nodes.into_iter().filter(|n| *n != leaver).collect();
        let after = Ring::build(remaining, vnodes, replication);
        for pid in 0..128 {
            let old = before.replicas_for_partition(pid);
            if !old.contains(&leaver.as_str()) {
                // The walk never crossed the leaver's points, so
                // deleting them cannot perturb this placement.
                prop_assert_eq!(old, after.replicas_for_partition(pid));
            }
        }
    }

    #[test]
    fn join_only_moves_partitions_the_joiner_now_serves(
        nodes in node_set(),
        vnodes in 8usize..64,
        replication in 1usize..4,
    ) {
        let before = Ring::build(nodes.clone(), vnodes, replication);
        let mut joined = nodes.clone();
        joined.push("joiner".to_string());
        let after = Ring::build(joined, vnodes, replication);
        for pid in 0..128 {
            let new = after.replicas_for_partition(pid);
            if !new.contains(&"joiner") {
                prop_assert_eq!(before.replicas_for_partition(pid), new);
            }
        }
    }

    #[test]
    fn partition_of_ignores_the_low_80_bits(
        bits in any::<u128>(),
        low in any::<u128>(),
        partitions in 1u32..64,
    ) {
        let hi_mask = !((1u128 << 80) - 1);
        let a = partition_of(bits, partitions);
        let b = partition_of((bits & hi_mask) | (low & !hi_mask), partitions);
        prop_assert_eq!(a, b, "same /48 must map to the same partition");
        prop_assert!(a < partitions);
    }
}

/// The quantitative rebalance bound, pinned deterministically for
/// every cluster size the simulation runs: one node joining an N-node
/// ring (128 vnodes) moves at most 2·K/(N+1) of K primaries — a naive
/// mod-N rehash would move ≈ K·N/(N+1), several times the bound.
#[test]
fn single_join_moves_at_most_a_k_over_n_fraction() {
    const PARTITIONS: u32 = 256;
    for n in 3usize..=9 {
        let nodes: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        let before = Ring::build(nodes.clone(), 128, 2);
        let mut joined = nodes.clone();
        joined.push(format!("n{n}"));
        let after = Ring::build(joined, 128, 2);
        let moved = (0..PARTITIONS)
            .filter(|&pid| {
                before.replicas_for_partition(pid)[0] != after.replicas_for_partition(pid)[0]
            })
            .count();
        let bound = 2 * PARTITIONS as usize / (n + 1);
        assert!(
            moved <= bound,
            "join onto {n} nodes moved {moved}/{PARTITIONS} primaries (bound {bound})"
        );
    }
}
