//! A 6Gen-style range-clustering target generation algorithm (§2.2).
//!
//! Where [`PatternTga`](crate::target_gen::PatternTga) only re-emits IIDs
//! that recur *verbatim*, 6Gen (Murdock et al.) generalizes: it clusters
//! seed addresses into nibble-wise *ranges* and probes the tightest
//! ranges densely. A DHCPv6 pool that assigned `::1:0042` and `::1:0047`
//! induces the range `::1:004?` — candidates no exact-recurrence model
//! would propose. Both algorithms share the paper's core bias: ranges
//! induced by random privacy IIDs are astronomically large and therefore
//! unprobeable, so client space stays out of reach.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use v6addr::Iid;

/// One nibble-wise range over IIDs within a single /64.
#[derive(Debug, Clone)]
pub struct NibbleRange {
    /// The routing prefix (upper 64 bits).
    pub upper: u64,
    /// Observed values per nibble position (sorted, deduplicated).
    pub nibble_values: [Vec<u8>; 16],
    /// Number of seeds that induced this range.
    pub seeds: u64,
}

impl NibbleRange {
    fn new(upper: u64) -> Self {
        NibbleRange {
            upper,
            nibble_values: Default::default(),
            seeds: 0,
        }
    }

    fn absorb(&mut self, iid: Iid) {
        for (pos, v) in iid.nibbles().into_iter().enumerate() {
            let vals = &mut self.nibble_values[pos];
            if let Err(i) = vals.binary_search(&v) {
                vals.insert(i, v);
            }
        }
        self.seeds += 1;
    }

    /// Number of addresses the range spans (product of nibble set sizes,
    /// saturating — random seeds quickly saturate to "unprobeable").
    pub fn size(&self) -> u128 {
        self.nibble_values
            .iter()
            .fold(1u128, |acc, v| acc.saturating_mul(v.len().max(1) as u128))
    }

    /// Enumerates up to `cap` addresses in the range (odometer order).
    pub fn enumerate(&self, cap: usize) -> Vec<Ipv6Addr> {
        let mut out = Vec::new();
        let mut idx = [0usize; 16];
        'outer: loop {
            let mut iid: u64 = 0;
            for pos in 0..16 {
                let vals = &self.nibble_values[pos];
                let v = if vals.is_empty() { 0 } else { vals[idx[pos]] };
                iid = (iid << 4) | v as u64;
            }
            out.push(v6addr::join(self.upper, Iid::new(iid)));
            if out.len() >= cap {
                break;
            }
            // Odometer increment over the nibble index vector.
            for pos in (0..16).rev() {
                let n = self.nibble_values[pos].len().max(1);
                idx[pos] += 1;
                if idx[pos] < n {
                    continue 'outer;
                }
                idx[pos] = 0;
            }
            break; // odometer wrapped: range exhausted
        }
        out
    }
}

/// The range-clustering TGA.
#[derive(Debug, Clone, Default)]
pub struct RangeTga {
    ranges: HashMap<u64, NibbleRange>,
    seeds: u64,
}

impl RangeTga {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trains on one seed address (clustered per /64).
    pub fn observe(&mut self, addr: Ipv6Addr) {
        let upper = v6addr::upper64(addr);
        self.ranges
            .entry(upper)
            .or_insert_with(|| NibbleRange::new(upper))
            .absorb(Iid::from_addr(addr));
        self.seeds += 1;
    }

    /// Trains on many seeds.
    pub fn observe_all<I: IntoIterator<Item = Ipv6Addr>>(&mut self, seeds: I) {
        for a in seeds {
            self.observe(a);
        }
    }

    /// Seeds observed.
    pub fn seed_count(&self) -> u64 {
        self.seeds
    }

    /// Emits up to `budget` candidates from the tightest multi-seed
    /// ranges (6Gen's densest-first strategy). Single-seed ranges carry
    /// no generalization power and ranges wider than `max_range` are
    /// unprobeable by construction.
    pub fn generate(&self, budget: usize) -> Vec<Ipv6Addr> {
        let max_range: u128 = 1 << 16;
        let mut ranges: Vec<&NibbleRange> = self
            .ranges
            .values()
            .filter(|r| r.seeds >= 2 && r.size() <= max_range)
            .collect();
        ranges.sort_by_key(|r| (r.size() / r.seeds as u128, u128::MAX - r.seeds as u128));
        let mut out = Vec::with_capacity(budget);
        for r in ranges {
            if out.len() >= budget {
                break;
            }
            out.extend(r.enumerate(budget - out.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(upper: u64, iid: u64) -> Ipv6Addr {
        v6addr::join(upper, Iid::new(iid))
    }

    #[test]
    fn interpolates_within_a_dhcp_pool() {
        let mut tga = RangeTga::new();
        let upper = 0x2a00_0001_8000_0000;
        // DHCPv6-style pools: ::1:0042, ::1:0047 and ::2:0042 induce the
        // nibble range {1,2} × 004 × {2,7}.
        for iid in [0x1_0042u64, 0x1_0047, 0x2_0042] {
            tga.observe(a(upper, iid));
        }
        let cands = tga.generate(200);
        // The unseen cross combination ::2:0047 must be proposed.
        assert!(cands.contains(&a(upper, 0x2_0047)), "{} cands", cands.len());
        assert!(!cands.is_empty());
        // All candidates stay within the /64 that seeded them.
        for c in &cands {
            assert_eq!(v6addr::upper64(*c), upper);
        }
    }

    #[test]
    fn random_seeds_induce_unprobeable_ranges() {
        let mut tga = RangeTga::new();
        let upper = 0x2a00_0002_8000_0000;
        // Three random privacy IIDs: nearly every nibble position ends up
        // with 3 observed values, so the induced range spans ~3^16
        // addresses — far past the probeable cap.
        for iid in [
            0x8f3a_d2c1_9b47_e605u64,
            0x17c4_a98e_03f2_5bd8,
            0x6e01_f7b3_c28a_944d,
        ] {
            tga.observe(a(upper, iid));
        }
        let cands = tga.generate(1000);
        assert!(
            cands.is_empty(),
            "random seeds must not yield probeable ranges ({} cands)",
            cands.len()
        );
    }

    #[test]
    fn single_seed_ranges_skipped() {
        let mut tga = RangeTga::new();
        tga.observe(a(1, 0x42));
        assert!(tga.generate(10).is_empty());
        assert_eq!(tga.seed_count(), 1);
    }

    #[test]
    fn budget_respected_and_tightest_first() {
        let mut tga = RangeTga::new();
        // Tight range: two seeds differing in one nibble.
        tga.observe(a(10, 0x100));
        tga.observe(a(10, 0x101));
        // Looser range: differs in three nibbles.
        tga.observe(a(20, 0x111));
        tga.observe(a(20, 0x999));
        let cands = tga.generate(3);
        assert_eq!(cands.len(), 3);
        // The tight /64 (upper 10) must be enumerated first.
        assert!(cands
            .iter()
            .all(|c| v6addr::upper64(*c) == 10 || v6addr::upper64(*c) == 20));
        assert_eq!(v6addr::upper64(cands[0]), 10);
    }

    #[test]
    fn enumerate_covers_small_range_exactly() {
        let mut r = NibbleRange::new(7);
        r.absorb(Iid::new(0x0));
        r.absorb(Iid::new(0x1));
        r.absorb(Iid::new(0x10));
        // Positions 14 and 15 each have {0,1}: size 4.
        assert_eq!(r.size(), 4);
        let all = r.enumerate(100);
        assert_eq!(all.len(), 4);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }
}
