//! A ZMap6-style stateless high-speed scanner.
//!
//! Faithful to the original's architecture (§2.2 [19, 70]):
//!
//! * **Keyed permutation iteration** — targets are visited in a
//!   pseudo-random bijective order so probe load never concentrates on
//!   one network.
//! * **Stateless validation** — the scanner keeps no per-probe state;
//!   the echo `ident`/`seq` fields carry a MAC of `(key, dst)`, and a
//!   reply is accepted only if the echoed fields validate. Spoofed or
//!   stale replies fail.
//! * **Rate model** — probes are spread over wall-clock time at a
//!   configured rate, so campaign results see time-varying addresses
//!   exactly as a real multi-hour scan would.

use std::net::Ipv6Addr;

use bytes::Bytes;
use v6netsim::rng::hash64;
use v6netsim::{IndexPermutation, ProbeKind, ProbeOutcome, SimDuration, SimTime};

use crate::icmp::Icmpv6Message;
use crate::prober::Prober;

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct Zmap6Config {
    /// Validation / permutation key.
    pub seed: u64,
    /// Probes per second the scan is paced at.
    pub rate_pps: u64,
    /// When the scan starts.
    pub start: SimTime,
    /// What to send (ICMPv6 echo, TCP SYN, UDP) — §3: the Hitlist scans
    /// several protocols, not just ping.
    pub probe: ProbeKind,
}

impl Default for Zmap6Config {
    fn default() -> Self {
        Zmap6Config {
            seed: 0x5ca4_0001,
            rate_pps: 10_000,
            start: SimTime::START,
            probe: ProbeKind::IcmpEcho,
        }
    }
}

/// Scan statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Probes sent.
    pub sent: u64,
    /// Echo replies received.
    pub replies: u64,
    /// Replies that passed stateless validation.
    pub validated: u64,
    /// Replies that failed validation (would be spoofed/stale traffic).
    pub failed_validation: u64,
    /// Unreachable/TTL-exceeded and other non-echo responses.
    pub other_responses: u64,
}

/// One responsive target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Responsive {
    /// The probed address.
    pub target: Ipv6Addr,
    /// When the probe that elicited the reply was sent.
    pub t: SimTime,
}

/// Result of a scan.
#[derive(Debug, Clone, Default)]
pub struct ScanResult {
    /// Responsive targets, in probe order.
    pub responsive: Vec<Responsive>,
    /// Statistics.
    pub stats: ScanStats,
}

/// The validation MAC embedded in echo `ident`/`seq` (32 bits total).
fn validation(seed: u64, dst: Ipv6Addr) -> (u16, u16) {
    let h = hash64(seed, &u128::from(dst).to_be_bytes());
    ((h >> 16) as u16, h as u16)
}

/// Scans `targets` in keyed pseudo-random order.
///
/// Every probe is a real encoded ICMPv6 echo request; every reply is
/// re-encoded, decoded, checksum-verified and validation-checked — the
/// full stateless receive path.
pub fn scan<P: Prober>(prober: &P, targets: &[Ipv6Addr], cfg: &Zmap6Config) -> ScanResult {
    scan_indices(prober, targets, cfg, 0..targets.len() as u64)
}

/// Scans `targets` sharded across `threads` workers.
///
/// The probe-order index range is split into contiguous shards, each
/// shard runs the full sequential receive path, and shard results are
/// concatenated in shard order — so the responsive list, probe times
/// and statistics are bit-identical to [`scan`] at any thread count.
pub fn scan_with_threads<P: Prober + Sync>(
    prober: &P,
    targets: &[Ipv6Addr],
    cfg: &Zmap6Config,
    threads: usize,
) -> ScanResult {
    if threads <= 1 || targets.len() < 2 {
        return scan(prober, targets, cfg);
    }
    // Calibrated probe cost (encode + permute + validate + decode); the
    // adaptive cutoff in v6par keeps small sweeps inline, replacing the
    // old hand-rolled minimum-target threshold.
    const PROBE_NS: u64 = 1_500;
    let ranges = v6par::split_ranges(targets.len(), (threads * 4).min(targets.len()));
    let range_cost =
        v6par::Cost::per_item_ns(PROBE_NS * (targets.len() / ranges.len().max(1)).max(1) as u64)
            .labeled("scan.zmap6");
    let shards = v6par::par_map_cost(threads, &ranges, range_cost, |_, range| {
        scan_indices(prober, targets, cfg, range.start as u64..range.end as u64)
    });
    let mut result = ScanResult::default();
    for shard in shards {
        result.responsive.extend(shard.responsive);
        result.stats.sent += shard.stats.sent;
        result.stats.replies += shard.stats.replies;
        result.stats.validated += shard.stats.validated;
        result.stats.failed_validation += shard.stats.failed_validation;
        result.stats.other_responses += shard.stats.other_responses;
    }
    result
}

/// The sequential kernel: probes the permuted indices in `range`.
fn scan_indices<P: Prober>(
    prober: &P,
    targets: &[Ipv6Addr],
    cfg: &Zmap6Config,
    range: std::ops::Range<u64>,
) -> ScanResult {
    let mut result = ScanResult::default();
    if targets.is_empty() {
        return result;
    }
    let perm = IndexPermutation::new(targets.len() as u64, cfg.seed);
    let src = prober.source();
    for i in range {
        let dst = targets[perm.apply(i) as usize];
        let t = cfg.start + SimDuration(i / cfg.rate_pps.max(1));
        let (ident, seq) = validation(cfg.seed, dst);
        let request = Icmpv6Message::EchoRequest {
            ident,
            seq,
            payload: Bytes::from_static(b"zmap6-repro"),
        };
        let _wire = request.encode(src, dst);
        result.stats.sent += 1;

        match prober.probe_kind(dst, cfg.probe, t) {
            ProbeOutcome::EchoReply { from } => {
                result.stats.replies += 1;
                // The remote stack echoes ident/seq/payload; rebuild the
                // on-wire reply and run the real receive path.
                let reply = Icmpv6Message::EchoReply {
                    ident,
                    seq,
                    payload: Bytes::from_static(b"zmap6-repro"),
                }
                .encode(from, src);
                match Icmpv6Message::decode(from, src, &reply) {
                    Ok(Icmpv6Message::EchoReply {
                        ident: ri, seq: rs, ..
                    }) => {
                        let (wi, ws) = validation(cfg.seed, from);
                        if (ri, rs) == (wi, ws) {
                            result.stats.validated += 1;
                            result.responsive.push(Responsive { target: from, t });
                        } else {
                            result.stats.failed_validation += 1;
                        }
                    }
                    _ => result.stats.failed_validation += 1,
                }
            }
            ProbeOutcome::NoResponse => {}
            _ => result.stats.other_responses += 1,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::FnProber;
    use std::collections::HashSet;
    use v6netsim::{World, WorldConfig};

    fn addrs(n: u64) -> Vec<Ipv6Addr> {
        (0..n)
            .map(|i| v6addr::from_u128((0x2a00u128 << 112) | i as u128))
            .collect()
    }

    #[test]
    fn scans_all_targets_once() {
        let probed = std::sync::Mutex::new(Vec::new());
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), |dst, _, _| {
            probed.lock().unwrap().push(dst);
            ProbeOutcome::NoResponse
        });
        let targets = addrs(257);
        let r = scan(&p, &targets, &Zmap6Config::default());
        assert_eq!(r.stats.sent, 257);
        let got: HashSet<_> = probed.lock().unwrap().iter().copied().collect();
        assert_eq!(got.len(), 257);
        // Permuted order ≠ input order.
        assert_ne!(*probed.lock().unwrap(), targets);
    }

    #[test]
    fn responsive_targets_validated() {
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), |dst, _, _| {
            if u128::from(dst) % 3 == 0 {
                ProbeOutcome::EchoReply { from: dst }
            } else {
                ProbeOutcome::NoResponse
            }
        });
        let targets = addrs(300);
        let r = scan(&p, &targets, &Zmap6Config::default());
        assert_eq!(r.stats.replies, 100);
        assert_eq!(r.stats.validated, 100);
        assert_eq!(r.stats.failed_validation, 0);
        assert_eq!(r.responsive.len(), 100);
        for resp in &r.responsive {
            assert_eq!(u128::from(resp.target) % 3, 0);
        }
    }

    #[test]
    fn replies_from_other_addresses_fail_validation() {
        // A middlebox replying from a *different* address than probed:
        // validation keys on the replying address and must reject it.
        let decoy: Ipv6Addr = "2a00:dddd::1".parse().unwrap();
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), move |_dst, _, _| {
            ProbeOutcome::EchoReply { from: decoy }
        });
        let targets = addrs(50);
        let r = scan(&p, &targets, &Zmap6Config::default());
        // decoy itself is in nobody's target list here, so every reply
        // fails the (key, from)-MAC except when from == dst (never here).
        assert_eq!(r.stats.failed_validation, 50);
        assert_eq!(r.stats.validated, 0);
    }

    #[test]
    fn rate_paces_probe_times() {
        let times = std::sync::Mutex::new(Vec::new());
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), |_, _, t| {
            times.lock().unwrap().push(t);
            ProbeOutcome::NoResponse
        });
        let cfg = Zmap6Config {
            rate_pps: 10,
            start: SimTime(100),
            ..Default::default()
        };
        scan(&p, &addrs(25), &cfg);
        let times = times.lock().unwrap();
        assert_eq!(times.iter().filter(|t| t.as_secs() == 100).count(), 10);
        assert!(times.iter().all(|t| (100..103).contains(&t.as_secs())));
    }

    #[test]
    fn against_world_finds_infrastructure() {
        let w = World::build(WorldConfig::tiny(), 33);
        let prober = crate::prober::WorldProber::new(&w, 0);
        // Target the core routers of the first 10 ASes plus junk.
        let mut targets: Vec<Ipv6Addr> = w.ases[..10]
            .iter()
            .map(|a| a.router48().offset(1))
            .collect();
        targets.push("2a00:5:8000:9999::42".parse().unwrap()); // vacant
        let r = scan(&prober, &targets, &Zmap6Config::default());
        assert!(r.stats.validated >= 8, "{:?}", r.stats);
        assert!(r.responsive.len() >= 8);
    }

    #[test]
    fn empty_targets() {
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), |_, _, _| {
            ProbeOutcome::NoResponse
        });
        let r = scan(&p, &[], &Zmap6Config::default());
        assert_eq!(r.stats, ScanStats::default());
    }
}
