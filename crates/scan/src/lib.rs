//! # v6scan — active IPv6 measurement tooling
//!
//! The active-measurement half of the *IPv6 Hitlists at Scale* (SIGCOMM
//! 2023) reproduction: the tools the paper's comparison datasets were
//! built with, re-implemented against the synthetic Internet.
//!
//! * [`icmp`] — ICMPv6 codec (echo, time exceeded, unreachable) with real
//!   pseudo-header checksums.
//! * [`prober`] — the probing abstraction ([`Prober`]) and the
//!   world-backed implementation.
//! * [`zmap6`] — ZMap6-style stateless scanning: keyed permutation order,
//!   MAC-in-ident/seq stateless validation, rate pacing.
//! * [`yarrp`] — Yarrp-style randomized traceroute with state carried in
//!   the probe payload and path reconstruction.
//! * [`alias`] — aliased-prefix detection and alias-list filtering.
//! * [`target_gen`] — low-IID targets, CAIDA routed-/48 target expansion,
//!   and a pattern-mining TGA.
//! * [`campaign`] — the two end-to-end baselines: the weekly IPv6-Hitlist
//!   campaign and the CAIDA routed-/48 campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod campaign;
pub mod icmp;
pub mod prober;
pub mod range_tga;
pub mod target_gen;
pub mod yarrp;
pub mod zmap6;

pub use alias::{AliasDetector, AliasList};
pub use campaign::{
    run_caida_campaign, run_caida_campaign_with_threads, run_hitlist_campaign,
    run_hitlist_campaign_with_threads, CaidaCampaignConfig, CampaignResult, Discovery,
    HitlistCampaignConfig,
};
pub use icmp::{IcmpError, Icmpv6Message};
pub use prober::{FnProber, Prober, WorldProber};
pub use range_tga::RangeTga;
pub use target_gen::{caida_routed48_targets, eui64_vendor_targets, low_iid_targets, PatternTga};
pub use yarrp::{trace, trace_with_threads, HopRecord, YarrpConfig, YarrpResult};
pub use zmap6::{scan, scan_with_threads, Responsive, ScanResult, ScanStats, Zmap6Config};
