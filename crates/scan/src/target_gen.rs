//! Target generation for active IPv6 campaigns.
//!
//! Brute force is impossible in IPv6 (§1), so active efforts probe where
//! addresses are *predictable*: low IIDs in routed space, the `::1` of
//! every routed /48 (CAIDA's methodology, §3), and candidates emitted by
//! target-generation algorithms trained on seed hitlists (§2.2). The TGA
//! here is a deliberately simple Entropy/IP-flavoured pattern model — its
//! systematic failure on high-entropy client space is exactly the
//! phenomenon the paper studies.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use v6addr::mac::Oui;
use v6addr::{Iid, Prefix};
use v6netsim::Asn;

/// The classic operator-assigned probe IIDs, lowest first.
pub fn low_iid_targets(prefix: &Prefix, count: u64) -> Vec<Ipv6Addr> {
    (1..=count).map(|i| prefix.offset(i as u128)).collect()
}

/// CAIDA routed-/48 methodology (§3): split every routed prefix of length
/// ≤ /48 into /48s and probe each `::1`.
///
/// `stride` subsamples the /48s (probe every `stride`-th) so scaled-down
/// runs stay tractable; `stride = 1` is the full methodology.
pub fn caida_routed48_targets(routed: &[(Prefix, Asn)], stride: u64) -> Vec<Ipv6Addr> {
    let stride = stride.max(1);
    let mut out = Vec::new();
    for (p, _) in routed {
        if p.len() > 48 {
            // Longer than /48: probe its ::1 directly, no splitting.
            out.push(p.offset(1));
            continue;
        }
        let n = p.subprefix_count(48);
        let mut i = 0u64;
        while i < n {
            out.push(p.subprefix(48, i).offset(1));
            i += stride;
        }
    }
    out
}

/// A simple pattern-mining target generation algorithm.
///
/// Learns two marginals from seed addresses — frequent upper-64 routing
/// prefixes and frequent IIDs — and emits their cross product. Low-byte
/// server/router IIDs recur across prefixes and are found; ephemeral
/// random client IIDs never recur and are not. (Richer TGAs — 6Gen,
/// 6Tree, 6GAN — share this failure mode on random IIDs, §2.2.)
#[derive(Debug, Clone, Default)]
pub struct PatternTga {
    upper_counts: HashMap<u64, u64>,
    iid_counts: HashMap<u64, u64>,
    seeds: u64,
}

impl PatternTga {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trains on one seed address.
    pub fn observe(&mut self, addr: Ipv6Addr) {
        *self.upper_counts.entry(v6addr::upper64(addr)).or_insert(0) += 1;
        *self
            .iid_counts
            .entry(Iid::from_addr(addr).as_u64())
            .or_insert(0) += 1;
        self.seeds += 1;
    }

    /// Trains on many seeds.
    pub fn observe_all<I: IntoIterator<Item = Ipv6Addr>>(&mut self, seeds: I) {
        for a in seeds {
            self.observe(a);
        }
    }

    /// Number of seed addresses observed.
    pub fn seed_count(&self) -> u64 {
        self.seeds
    }

    /// Emits up to `budget` candidate addresses: the cross product of the
    /// most frequent uppers and the most *recurring* IIDs (an IID seen in
    /// only one seed carries no cross-prefix predictive power and is
    /// skipped).
    pub fn generate(&self, budget: usize) -> Vec<Ipv6Addr> {
        let mut uppers: Vec<(u64, u64)> = self.upper_counts.iter().map(|(&k, &v)| (k, v)).collect();
        uppers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut iids: Vec<(u64, u64)> = self
            .iid_counts
            .iter()
            .filter(|&(_, &c)| c >= 2)
            .map(|(&k, &v)| (k, v))
            .collect();
        iids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if iids.is_empty() || uppers.is_empty() {
            return Vec::new();
        }
        // Balance the two dimensions around √budget.
        let side = (budget as f64).sqrt().ceil() as usize;
        let take_u = uppers.len().min(side.max(budget / iids.len().max(1)));
        let mut out = Vec::with_capacity(budget);
        'outer: for &(u, _) in uppers.iter().take(take_u.max(1)) {
            for &(i, _) in iids.iter() {
                out.push(v6addr::join(u, Iid::new(i)));
                if out.len() >= budget {
                    break 'outer;
                }
            }
        }
        out
    }
}

/// Vendor-targeted EUI-64 candidate generation — the §2.1 threat that
/// MAC-embedding addresses enable "attacks tailored to device
/// manufacturers": manufacturers assign NICs densely, so observing a few
/// EUI-64 devices of a vendor lets an attacker enumerate the *sibling*
/// devices' addresses across known-active /64s.
///
/// `observed_nics` are NIC portions already seen for `oui`; candidates
/// are SLAAC addresses for NICs within ±`spread` of each, in each of the
/// `active_uppers` (/64 routing prefixes known to host that vendor).
pub fn eui64_vendor_targets(
    active_uppers: &[u64],
    oui: Oui,
    observed_nics: &[u32],
    spread: u32,
    budget: usize,
) -> Vec<Ipv6Addr> {
    let mut nics: Vec<u32> = Vec::new();
    for &center in observed_nics {
        let lo = center.saturating_sub(spread);
        let hi = (center + spread).min(0x00ff_ffff);
        nics.extend(lo..=hi);
    }
    nics.sort_unstable();
    nics.dedup();
    let mut out = Vec::with_capacity(budget.min(nics.len() * active_uppers.len()));
    'outer: for &upper in active_uppers {
        for &nic in &nics {
            out.push(v6addr::eui64::slaac_address(upper, oui.mac(nic)));
            if out.len() >= budget {
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn vendor_targets_enumerate_siblings() {
        let oui: Oui = "3c:a6:2f".parse().unwrap();
        let uppers = [0x2a00_0001_8000_0000u64, 0x2a00_0002_8000_0000];
        let t = eui64_vendor_targets(&uppers, oui, &[100, 5000], 2, 1000);
        // 2 centers × 5 NICs × 2 uppers = 20 candidates, all EUI-64 with
        // the right OUI.
        assert_eq!(t.len(), 20);
        for a in &t {
            let mac = v6addr::eui64::extract_mac(*a).expect("EUI-64 shape");
            assert_eq!(mac.oui(), oui);
            assert!((98..=102).contains(&mac.nic()) || (4998..=5002).contains(&mac.nic()));
        }
        // Budget is a hard cap.
        assert_eq!(eui64_vendor_targets(&uppers, oui, &[100], 100, 7).len(), 7);
        // Edge clamping at the NIC-space boundary.
        let low = eui64_vendor_targets(&uppers[..1], oui, &[0], 3, 100);
        assert_eq!(low.len(), 4); // 0..=3
    }

    #[test]
    fn low_iids() {
        let t = low_iid_targets(&p("2a00:1::/48"), 3);
        assert_eq!(
            t,
            vec![
                "2a00:1::1".parse::<Ipv6Addr>().unwrap(),
                "2a00:1::2".parse().unwrap(),
                "2a00:1::3".parse().unwrap(),
            ]
        );
    }

    #[test]
    fn caida_targets_split_and_stride() {
        let routed = vec![(p("2a00:1::/32"), Asn(1))];
        let full = caida_routed48_targets(&routed, 1);
        assert_eq!(full.len(), 1 << 16);
        assert_eq!(full[0], "2a00:1::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(full[1], "2a00:1:1::1".parse::<Ipv6Addr>().unwrap());
        let sampled = caida_routed48_targets(&routed, 256);
        assert_eq!(sampled.len(), 256);
        // Every sampled target is a ::1.
        for a in &sampled {
            assert_eq!(u128::from(*a) & 0xffff_ffff_ffff_ffff, 1);
        }
    }

    #[test]
    fn caida_targets_longer_than_48() {
        let routed = vec![(p("2a00:1:2:3::/64"), Asn(1))];
        let t = caida_routed48_targets(&routed, 1);
        assert_eq!(t, vec!["2a00:1:2:3::1".parse::<Ipv6Addr>().unwrap()]);
    }

    #[test]
    fn tga_finds_recurring_low_iids() {
        let mut tga = PatternTga::new();
        // Servers at ::1/::2 across three prefixes; one random client.
        for upper in [
            0x2a00_0001_0000_0000u64,
            0x2a00_0002_0000_0000,
            0x2a00_0003_0000_0000,
        ] {
            tga.observe(v6addr::join(upper, Iid::new(1)));
            tga.observe(v6addr::join(upper, Iid::new(2)));
        }
        tga.observe(v6addr::join(
            0x2a00_0001_0000_0000,
            Iid::new(0xdead_beef_cafe_f00d),
        ));
        let cands = tga.generate(100);
        // The cross product must predict ::1 in prefix 3 and ::2 in 1, etc.
        assert!(cands.contains(&v6addr::join(0x2a00_0003_0000_0000, Iid::new(2))));
        // And must never emit the random one-off IID.
        assert!(!cands
            .iter()
            .any(|a| Iid::from_addr(*a).as_u64() == 0xdead_beef_cafe_f00d));
    }

    #[test]
    fn tga_empty_without_recurrence() {
        let mut tga = PatternTga::new();
        // All IIDs unique → nothing recurs → no candidates.
        for i in 0..50u64 {
            tga.observe(v6addr::join(0x2a00_0001_0000_0000, Iid::new(0x1000 + i)));
        }
        assert!(tga.generate(100).is_empty());
        assert_eq!(tga.seed_count(), 50);
    }

    #[test]
    fn tga_respects_budget() {
        let mut tga = PatternTga::new();
        for u in 0..20u64 {
            for i in 1..=20u64 {
                tga.observe(v6addr::join(0x2a00_0000_0000_0000 + (u << 32), Iid::new(i)));
            }
        }
        assert!(tga.generate(37).len() <= 37);
        assert!(!tga.generate(37).is_empty());
    }
}
