//! Aliased-prefix detection and filtering (§2.1, §4.2).
//!
//! In IPv6 a single middlebox frequently answers for an *entire prefix*
//! ("aliasing"), so a naive scanner would record millions of phantom
//! hosts. The IPv6 Hitlist project detects aliased prefixes by probing
//! several pseudo-random addresses inside a candidate prefix — if they
//! all answer, no plausible set of real hosts explains it — and publishes
//! an alias list that consumers filter against. This module implements
//! both the detector and the list.

use std::net::Ipv6Addr;

use v6addr::{Prefix, PrefixMap};
use v6netsim::rng::Rng;
use v6netsim::SimTime;

use crate::prober::Prober;

/// Alias-detection parameters (defaults follow the Hitlist methodology:
/// 16 pseudo-random probes, all must answer).
#[derive(Debug, Clone)]
pub struct AliasDetector {
    /// Pseudo-random addresses probed per candidate prefix.
    pub probes_per_prefix: u32,
    /// Minimum echo replies to declare the prefix aliased.
    pub threshold: u32,
    /// RNG key for address selection.
    pub seed: u64,
}

impl Default for AliasDetector {
    fn default() -> Self {
        AliasDetector {
            probes_per_prefix: 16,
            threshold: 16,
            seed: 0x0a11_a5ed,
        }
    }
}

impl AliasDetector {
    /// Probes a candidate prefix and reports whether it is aliased.
    pub fn detect<P: Prober>(&self, prober: &P, prefix: &Prefix, t: SimTime) -> bool {
        let mut rng = Rng::new(self.seed ^ prefix.bits() as u64 ^ (prefix.len() as u64) << 56);
        let host_bits = 128 - prefix.len() as u32;
        let mut hits = 0;
        for _ in 0..self.probes_per_prefix {
            let offset = if host_bits >= 128 {
                rng.next_u128()
            } else {
                rng.next_u128() & ((1u128 << host_bits) - 1)
            };
            let addr = prefix.offset(offset);
            if prober.probe(addr, 64, t).is_echo() {
                hits += 1;
            }
        }
        hits >= self.threshold
    }

    /// Runs detection over many candidates, returning the aliased ones.
    pub fn sweep<P: Prober>(&self, prober: &P, candidates: &[Prefix], t: SimTime) -> Vec<Prefix> {
        candidates
            .iter()
            .filter(|p| self.detect(prober, p, t))
            .copied()
            .collect()
    }

    /// [`AliasDetector::sweep`] with per-candidate detection sharded
    /// across `threads` workers. Detection of each candidate is a pure
    /// function of `(detector, prefix, t)`, and the result preserves
    /// candidate order, so the output is bit-identical to [`AliasDetector::sweep`].
    pub fn sweep_with_threads<P: Prober + Sync>(
        &self,
        prober: &P,
        candidates: &[Prefix],
        t: SimTime,
        threads: usize,
    ) -> Vec<Prefix> {
        // Cost hint: one detection probes 16 pseudo-random addresses in
        // the candidate prefix (~1 µs each with encode/decode).
        let cost = v6par::Cost::per_item_ns(16_000).labeled("scan.alias");
        let verdicts =
            v6par::par_map_cost(threads, candidates, cost, |_, p| self.detect(prober, p, t));
        candidates
            .iter()
            .zip(verdicts)
            .filter_map(|(p, aliased)| aliased.then_some(*p))
            .collect()
    }
}

/// A published alias list, used to filter scan targets and results.
#[derive(Debug, Clone, Default)]
pub struct AliasList {
    map: PrefixMap<()>,
}

impl AliasList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from known aliased prefixes.
    pub fn from_prefixes<I: IntoIterator<Item = Prefix>>(prefixes: I) -> Self {
        let mut map = PrefixMap::new();
        for p in prefixes {
            map.insert(p, ());
        }
        AliasList { map }
    }

    /// Adds a prefix.
    pub fn insert(&mut self, p: Prefix) {
        self.map.insert(p, ());
    }

    /// Number of listed prefixes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when `addr` falls in a listed aliased prefix.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.map.covers(addr)
    }

    /// True when `prefix` is inside (or equal to) a listed prefix.
    pub fn covers_prefix(&self, prefix: &Prefix) -> bool {
        self.map.covering_prefix(prefix).is_some()
    }

    /// Filters aliased addresses out of a responsive set — the "best
    /// practice first step" §4.2 describes.
    pub fn filter_addresses(&self, addrs: &[Ipv6Addr]) -> Vec<Ipv6Addr> {
        addrs
            .iter()
            .copied()
            .filter(|a| !self.contains(*a))
            .collect()
    }

    /// Iterates listed prefixes.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.map.iter().map(|(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::{FnProber, WorldProber};
    use v6netsim::{ProbeOutcome, World, WorldConfig};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn detects_fully_responsive_prefix() {
        let aliased = p("2a00:1:8000::/48");
        let prober = FnProber::new("2a00:ffff::1".parse().unwrap(), move |dst, _, _| {
            if aliased.contains(dst) {
                ProbeOutcome::EchoReply { from: dst }
            } else {
                ProbeOutcome::NoResponse
            }
        });
        let det = AliasDetector::default();
        assert!(det.detect(&prober, &p("2a00:1:8000::/48"), SimTime(0)));
        assert!(!det.detect(&prober, &p("2a00:2:8000::/48"), SimTime(0)));
    }

    #[test]
    fn partial_responders_are_not_aliased() {
        // A /64 with "many" live hosts still only answers on a measure-zero
        // subset of 2^64; random probes miss them.
        let prober = FnProber::new("2a00:ffff::1".parse().unwrap(), |dst, _, _| {
            if u128::from(dst) & 0xffff_ffff_ffff_ff00 == 0 {
                ProbeOutcome::EchoReply { from: dst }
            } else {
                ProbeOutcome::NoResponse
            }
        });
        let det = AliasDetector::default();
        assert!(!det.detect(&prober, &p("::/64"), SimTime(0)));
    }

    #[test]
    fn sweep_finds_ground_truth_aliases() {
        let w = World::build(WorldConfig::tiny(), 55);
        let prober = WorldProber::new(&w, 0);
        let truth = w.aliased_prefixes();
        assert!(!truth.is_empty());
        // Candidates: all ground-truth aliases + some clean /48s.
        let mut candidates = truth.clone();
        for a in w.ases.iter().take(4) {
            candidates.push(a.customer33().subprefix(48, 3));
        }
        let det = AliasDetector::default();
        let found = det.sweep(&prober, &candidates, SimTime(0));
        for t in &truth {
            assert!(found.contains(t), "missed ground-truth alias {t}");
        }
        // Clean home-pool /48s may *also* legitimately detect as aliased
        // when the AS fronts its client ranges (clients_aliased); others
        // must not.
        for c in &candidates[truth.len()..] {
            if found.contains(c) {
                let ai = w.as_index_of(c.network()).unwrap();
                assert!(
                    w.ases[ai as usize].info.clients_aliased(),
                    "clean prefix {c} mis-detected"
                );
            }
        }
    }

    #[test]
    fn alias_list_filters() {
        let list = AliasList::from_prefixes([p("2a00:1:8000::/48")]);
        assert_eq!(list.len(), 1);
        assert!(list.contains("2a00:1:8000::42".parse().unwrap()));
        assert!(!list.contains("2a00:1:8001::42".parse().unwrap()));
        assert!(list.covers_prefix(&p("2a00:1:8000:1::/64")));
        assert!(!list.covers_prefix(&p("2a00:1::/32")));
        let addrs: Vec<Ipv6Addr> = vec![
            "2a00:1:8000::1".parse().unwrap(),
            "2a00:9::1".parse().unwrap(),
        ];
        let kept = list.filter_addresses(&addrs);
        assert_eq!(kept, vec!["2a00:9::1".parse::<Ipv6Addr>().unwrap()]);
    }

    #[test]
    fn threshold_below_probe_count() {
        // A flaky alias responder (90% response rate) is caught with a
        // relaxed threshold but missed by the strict all-must-answer rule.
        let n = std::sync::atomic::AtomicU32::new(0);
        let prober = FnProber::new("2a00:ffff::1".parse().unwrap(), move |dst, _, _| {
            let i = n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i % 10 == 9 {
                ProbeOutcome::NoResponse
            } else {
                ProbeOutcome::EchoReply { from: dst }
            }
        });
        let strict = AliasDetector::default();
        assert!(!strict.detect(&prober, &p("2a00:1::/48"), SimTime(0)));
        let relaxed = AliasDetector {
            threshold: 12,
            ..Default::default()
        };
        assert!(relaxed.detect(&prober, &p("2a00:1::/48"), SimTime(0)));
    }
}
