//! A Yarrp-style stateless randomized traceroute engine.
//!
//! Yarrp's insight (Beverly, IMC'16) is to decouple the (target, TTL)
//! pairs and probe them in a random permuted order, reconstructing paths
//! afterwards — so no router sees a TTL-ladder burst, and the prober
//! holds no per-trace state. State rides inside the probe packet: the
//! invoking packet quoted by ICMPv6 Time Exceeded replies carries the
//! original target and TTL, which we encode in the echo payload.

use std::collections::BTreeMap;
use std::net::Ipv6Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use v6netsim::rng::hash64;
use v6netsim::{IndexPermutation, ProbeOutcome, SimDuration, SimTime};

use crate::icmp::Icmpv6Message;
use crate::prober::Prober;

/// Traceroute configuration.
#[derive(Debug, Clone)]
pub struct YarrpConfig {
    /// Permutation / payload-MAC key.
    pub seed: u64,
    /// Lowest TTL probed.
    pub ttl_min: u8,
    /// Highest TTL probed (inclusive).
    pub ttl_max: u8,
    /// Probes per second.
    pub rate_pps: u64,
    /// Scan start time.
    pub start: SimTime,
}

impl Default for YarrpConfig {
    fn default() -> Self {
        YarrpConfig {
            seed: 0x79a1_9000,
            ttl_min: 1,
            ttl_max: 12,
            rate_pps: 10_000,
            start: SimTime::START,
        }
    }
}

/// One recovered hop observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// The traced target.
    pub target: Ipv6Addr,
    /// The TTL the probe carried.
    pub ttl: u8,
    /// The router that answered Time Exceeded.
    pub hop: Ipv6Addr,
}

/// Aggregate result of a Yarrp run.
#[derive(Debug, Clone, Default)]
pub struct YarrpResult {
    /// All hop observations (unordered, as Yarrp emits them).
    pub hops: Vec<HopRecord>,
    /// Targets that answered the echo themselves (destination reached),
    /// with the TTL that reached them.
    pub reached: Vec<(Ipv6Addr, u8, SimTime)>,
    /// Probes sent.
    pub sent: u64,
    /// Replies whose quoted invoking packet failed to parse/validate
    /// (cruft a stateless prober must discard).
    pub discarded: u64,
}

impl YarrpResult {
    /// Every distinct address discovered (hops + reached targets).
    pub fn discovered_addresses(&self) -> Vec<Ipv6Addr> {
        let mut v: Vec<u128> = self
            .hops
            .iter()
            .map(|h| u128::from(h.hop))
            .chain(self.reached.iter().map(|&(a, _, _)| u128::from(a)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(Ipv6Addr::from).collect()
    }

    /// Reconstructs the hop path toward one target, ordered by TTL.
    pub fn path_to(&self, target: Ipv6Addr) -> Vec<(u8, Ipv6Addr)> {
        let mut path: BTreeMap<u8, Ipv6Addr> = BTreeMap::new();
        for h in self.hops.iter().filter(|h| h.target == target) {
            path.insert(h.ttl, h.hop);
        }
        path.into_iter().collect()
    }
}

/// Payload carried in every probe: `magic || ttl || mac(target)`.
fn probe_payload(seed: u64, target: Ipv6Addr, ttl: u8) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u32(0x79a1_7061); // "yarrp" magic
    b.put_u8(ttl);
    b.put_u8(0);
    b.put_u16(0);
    b.put_u64(hash64(seed, &u128::from(target).to_be_bytes()));
    b.freeze()
}

/// Parses the state back out of a quoted invoking packet.
fn parse_payload(seed: u64, target: Ipv6Addr, mut quoted: &[u8]) -> Option<u8> {
    if quoted.len() < 16 {
        return None;
    }
    if quoted.get_u32() != 0x79a1_7061 {
        return None;
    }
    let ttl = quoted.get_u8();
    quoted.advance(3);
    if quoted.get_u64() != hash64(seed, &u128::from(target).to_be_bytes()) {
        return None;
    }
    Some(ttl)
}

/// Runs a randomized traceroute campaign over `targets`.
pub fn trace<P: Prober>(prober: &P, targets: &[Ipv6Addr], cfg: &YarrpConfig) -> YarrpResult {
    let domain = trace_domain(targets, cfg);
    trace_indices(prober, targets, cfg, 0..domain)
}

/// Runs the traceroute campaign sharded across `threads` workers.
///
/// The permuted `(target, TTL)` probe-index domain is split into
/// contiguous shards and shard results are concatenated in shard order,
/// so hops, reached targets and counters are bit-identical to [`trace`]
/// at any thread count.
pub fn trace_with_threads<P: Prober + Sync>(
    prober: &P,
    targets: &[Ipv6Addr],
    cfg: &YarrpConfig,
    threads: usize,
) -> YarrpResult {
    let domain = trace_domain(targets, cfg);
    if threads <= 1 || domain < 2 {
        return trace(prober, targets, cfg);
    }
    // Calibrated per-(target, TTL) probe cost; the adaptive cutoff in
    // v6par keeps small campaigns inline, replacing the old hand-rolled
    // minimum-probe threshold.
    const PROBE_NS: u64 = 800;
    let ranges = v6par::split_ranges(domain as usize, (threads * 4).min(domain as usize));
    let range_cost =
        v6par::Cost::per_item_ns(PROBE_NS * (domain / ranges.len().max(1) as u64).max(1))
            .labeled("scan.yarrp");
    let shards = v6par::par_map_cost(threads, &ranges, range_cost, |_, range| {
        trace_indices(prober, targets, cfg, range.start as u64..range.end as u64)
    });
    let mut result = YarrpResult::default();
    for shard in shards {
        result.hops.extend(shard.hops);
        result.reached.extend(shard.reached);
        result.sent += shard.sent;
        result.discarded += shard.discarded;
    }
    result
}

/// Number of `(target, TTL)` probes the campaign will send.
fn trace_domain(targets: &[Ipv6Addr], cfg: &YarrpConfig) -> u64 {
    if targets.is_empty() || cfg.ttl_max < cfg.ttl_min {
        return 0;
    }
    targets.len() as u64 * (cfg.ttl_max - cfg.ttl_min + 1) as u64
}

/// The sequential kernel: probes the permuted indices in `range`.
fn trace_indices<P: Prober>(
    prober: &P,
    targets: &[Ipv6Addr],
    cfg: &YarrpConfig,
    range: std::ops::Range<u64>,
) -> YarrpResult {
    let mut result = YarrpResult::default();
    if targets.is_empty() || cfg.ttl_max < cfg.ttl_min {
        return result;
    }
    let ttl_span = (cfg.ttl_max - cfg.ttl_min + 1) as u64;
    let domain = targets.len() as u64 * ttl_span;
    let perm = IndexPermutation::new(domain, cfg.seed);
    let src = prober.source();

    for i in range {
        let j = perm.apply(i);
        let target = targets[(j / ttl_span) as usize];
        let ttl = cfg.ttl_min + (j % ttl_span) as u8;
        let t = cfg.start + SimDuration(i / cfg.rate_pps.max(1));
        result.sent += 1;

        match prober.probe(target, ttl, t) {
            ProbeOutcome::TimeExceeded { from, .. } => {
                // Reconstruct the quoted invoking packet the router would
                // send back, then recover (target, ttl) statelessly.
                let invoking = probe_payload(cfg.seed, target, ttl);
                let te = Icmpv6Message::TimeExceeded {
                    invoking: invoking.clone(),
                }
                .encode(from, src);
                match Icmpv6Message::decode(from, src, &te) {
                    Ok(Icmpv6Message::TimeExceeded { invoking }) => {
                        match parse_payload(cfg.seed, target, &invoking) {
                            Some(orig_ttl) => result.hops.push(HopRecord {
                                target,
                                ttl: orig_ttl,
                                hop: from,
                            }),
                            None => result.discarded += 1,
                        }
                    }
                    _ => result.discarded += 1,
                }
            }
            ProbeOutcome::EchoReply { from } if from == target => {
                result.reached.push((target, ttl, t));
            }
            ProbeOutcome::EchoReply { .. } => result.discarded += 1,
            ProbeOutcome::Unreachable { .. } | ProbeOutcome::NoResponse => {}
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::{FnProber, WorldProber};
    use v6netsim::{World, WorldConfig};

    #[test]
    fn payload_round_trips() {
        let t: Ipv6Addr = "2a00:1::9".parse().unwrap();
        let p = probe_payload(7, t, 5);
        assert_eq!(parse_payload(7, t, &p), Some(5));
        // Wrong key or wrong target → rejected.
        assert_eq!(parse_payload(8, t, &p), None);
        let other: Ipv6Addr = "2a00:1::a".parse().unwrap();
        assert_eq!(parse_payload(7, other, &p), None);
        assert_eq!(parse_payload(7, t, &p[..8]), None);
    }

    #[test]
    fn reconstructs_paths_from_synthetic_topology() {
        // Hop k replies for TTL k (k in 1..=3); destination at TTL >= 4.
        let hop = |k: u8| -> Ipv6Addr { format!("2a00:aaaa::{k}").parse().unwrap() };
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), move |dst, ttl, _| {
            if ttl <= 3 {
                ProbeOutcome::TimeExceeded {
                    from: hop(ttl),
                    hop: ttl,
                }
            } else {
                ProbeOutcome::EchoReply { from: dst }
            }
        });
        let targets: Vec<Ipv6Addr> =
            vec!["2a00:1::1".parse().unwrap(), "2a00:2::1".parse().unwrap()];
        let cfg = YarrpConfig {
            ttl_max: 6,
            ..Default::default()
        };
        let r = trace(&p, &targets, &cfg);
        assert_eq!(r.sent, 12);
        assert_eq!(r.discarded, 0);
        for &t in &targets {
            let path = r.path_to(t);
            assert_eq!(path.len(), 3);
            assert_eq!(path[0], (1, hop(1)));
            assert_eq!(path[2], (3, hop(3)));
            // Destination reached at TTLs 4..=6.
            assert_eq!(r.reached.iter().filter(|&&(a, _, _)| a == t).count(), 3);
        }
        // Discovered = 3 hops + 2 targets.
        assert_eq!(r.discovered_addresses().len(), 5);
    }

    #[test]
    fn against_world_discovers_transit_routers() {
        let w = World::build(WorldConfig::tiny(), 44);
        let prober = WorldProber::new(&w, 0);
        let t = SimTime(0);
        // Trace toward ::1 of a handful of customer /48s.
        let targets: Vec<Ipv6Addr> = w
            .ases
            .iter()
            .filter(|a| a.info.kind == v6netsim::AsKind::EyeballIsp)
            .take(5)
            .map(|a| a.customer33().subprefix(48, 0).offset(1))
            .collect();
        let cfg = YarrpConfig {
            start: t,
            ..Default::default()
        };
        let r = trace(&prober, &targets, &cfg);
        assert!(!r.hops.is_empty(), "no hops discovered");
        // Hops must be router interfaces (low-byte IIDs) or CPE WAN addrs.
        let transit_hits = r
            .hops
            .iter()
            .filter(|h| {
                w.as_index_of(h.hop)
                    .map(|i| w.ases[i as usize].info.kind == v6netsim::AsKind::Transit)
                    .unwrap_or(false)
            })
            .count();
        assert!(transit_hits > 0, "no transit routers on any path");
    }

    #[test]
    fn empty_targets_no_probes() {
        let p = FnProber::new("2a00:ffff::1".parse().unwrap(), |_, _, _| {
            ProbeOutcome::NoResponse
        });
        let r = trace(&p, &[], &YarrpConfig::default());
        assert_eq!(r.sent, 0);
    }
}
