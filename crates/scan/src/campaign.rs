//! End-to-end active measurement campaigns: the paper's two baselines.
//!
//! * [`run_hitlist_campaign`] emulates the **TUM IPv6 Hitlist** (§3):
//!   weekly cycles that seed from public server addresses, expand with a
//!   TGA and low-IID probing, traceroute into routed space (discovering
//!   routers and CPE), detect aliased prefixes, filter, and publish the
//!   responsive set.
//! * [`run_caida_campaign`] emulates the **CAIDA routed /48** dataset
//!   (§3): one Yarrp pass over the `::1` of every (sampled) routed /48.
//!
//! Both run against the same synthetic world the passive NTP collection
//! observes, so Table 1's cross-dataset comparison compares
//! *methodologies*, as the paper does.

use std::collections::BTreeSet;
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use v6addr::Prefix;
use v6netsim::{ProbeKind, SimDuration, SimTime, World};

use crate::alias::{AliasDetector, AliasList};
use crate::prober::WorldProber;
use crate::target_gen::{caida_routed48_targets, low_iid_targets, PatternTga};
use crate::yarrp::{trace_with_threads, YarrpConfig};
use crate::zmap6::{scan_with_threads, Zmap6Config};

/// Cached `scan.*` handles in the global `v6obs` registry.
///
/// All counters are recorded at the orchestration level, from totals the
/// campaign already computed with order-preserving merges — so every one
/// of them is thread-count invariant. The sweep-latency histograms are
/// timing observations and are not.
struct ScanMetrics {
    zmap6_targets: v6obs::Counter,
    zmap6_probes: v6obs::Counter,
    zmap6_responsive: v6obs::Counter,
    yarrp_targets: v6obs::Counter,
    yarrp_probes: v6obs::Counter,
    yarrp_hops: v6obs::Counter,
    yarrp_reached: v6obs::Counter,
    alias_candidates: v6obs::Counter,
    alias_detected: v6obs::Counter,
    campaign_weeks: v6obs::Counter,
    campaign_discoveries: v6obs::Counter,
    campaign_published_new: v6obs::Counter,
    zmap6_sweep_latency: v6obs::Histogram,
    yarrp_sweep_latency: v6obs::Histogram,
    alias_sweep_latency: v6obs::Histogram,
}

fn scan_metrics() -> &'static ScanMetrics {
    static METRICS: std::sync::OnceLock<ScanMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ScanMetrics {
        zmap6_targets: v6obs::counter("scan.zmap6.targets"),
        zmap6_probes: v6obs::counter("scan.zmap6.probes"),
        zmap6_responsive: v6obs::counter("scan.zmap6.responsive"),
        yarrp_targets: v6obs::counter("scan.yarrp.targets"),
        yarrp_probes: v6obs::counter("scan.yarrp.probes"),
        yarrp_hops: v6obs::counter("scan.yarrp.hops"),
        yarrp_reached: v6obs::counter("scan.yarrp.reached"),
        alias_candidates: v6obs::counter("scan.alias.candidates"),
        alias_detected: v6obs::counter("scan.alias.detected"),
        campaign_weeks: v6obs::counter("scan.campaign.weeks"),
        campaign_discoveries: v6obs::counter("scan.campaign.discoveries"),
        campaign_published_new: v6obs::counter("scan.campaign.published_new"),
        zmap6_sweep_latency: v6obs::histogram("scan.zmap6.sweep_latency"),
        yarrp_sweep_latency: v6obs::histogram("scan.yarrp.sweep_latency"),
        alias_sweep_latency: v6obs::histogram("scan.alias.sweep_latency"),
    })
}

/// One timestamped discovery by an active campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Discovery {
    /// The responsive (or hop) address.
    pub addr: Ipv6Addr,
    /// When it was observed.
    pub t: SimTime,
}

/// Output of an active campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// All discoveries (may repeat addresses across weeks).
    pub discoveries: Vec<Discovery>,
    /// The alias list the campaign accumulated.
    pub aliased: Vec<Prefix>,
    /// Probes sent in total.
    pub probes_sent: u64,
    /// New unique addresses per weekly cycle (diagnostics).
    pub weekly_new: Vec<u64>,
}

impl CampaignResult {
    /// Distinct discovered addresses.
    pub fn unique_addresses(&self) -> Vec<Ipv6Addr> {
        let mut v: Vec<u128> = self
            .discoveries
            .iter()
            .map(|d| u128::from(d.addr))
            .collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(Ipv6Addr::from).collect()
    }
}

/// Hitlist campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitlistCampaignConfig {
    /// Number of weekly cycles (the paper compares Feb–Aug ≈ 28 weeks).
    pub weeks: u32,
    /// Low-IID probes per routed /32 per week (spread over its /48s).
    pub low_iid_per_as: u64,
    /// TGA candidate budget per week.
    pub tga_budget: usize,
    /// Yarrp targets per week (traceroutes into routed space).
    pub yarrp_targets: usize,
    /// Campaign-wide scan key.
    pub seed: u64,
}

impl Default for HitlistCampaignConfig {
    fn default() -> Self {
        HitlistCampaignConfig {
            weeks: 8,
            low_iid_per_as: 64,
            tga_budget: 4_096,
            yarrp_targets: 2_048,
            seed: 0x41c7_13e1,
        }
    }
}

/// Runs the IPv6-Hitlist-style campaign from vantage point `vp_id`.
pub fn run_hitlist_campaign(
    world: &World,
    vp_id: u16,
    cfg: &HitlistCampaignConfig,
) -> CampaignResult {
    run_hitlist_campaign_with_threads(world, vp_id, cfg, v6par::threads())
}

/// [`run_hitlist_campaign`] with the per-/48 probing, traceroutes and
/// alias sweeps sharded across `threads` workers.
///
/// Weeks stay sequential (each week's targets depend on the previous
/// week's discoveries), but everything inside a week that is
/// embarrassingly parallel — low-IID target generation per routed
/// prefix, the ZMap6 passes, the Yarrp pass, and alias detection — runs
/// sharded with order-preserving merges. Output is bit-identical to the
/// sequential campaign at any thread count.
pub fn run_hitlist_campaign_with_threads(
    world: &World,
    vp_id: u16,
    cfg: &HitlistCampaignConfig,
    threads: usize,
) -> CampaignResult {
    let prober = WorldProber::new(world, vp_id);
    let mut result = CampaignResult::default();
    let mut known: BTreeSet<u128> = BTreeSet::new();
    let mut alias_list = AliasList::new();
    let detector = AliasDetector::default();
    let routed = world.routed_prefixes();

    // Seeds: addresses public in DNS/CT — the Hitlist's bootstrap corpus.
    let seeds: Vec<Ipv6Addr> = world.public_servers();
    let metrics = scan_metrics();

    for week in 0..cfg.weeks {
        let _week_span = v6obs::span("campaign.week");
        metrics.campaign_weeks.inc();
        let t0 = SimTime::START + SimDuration(SimDuration::WEEK.as_secs() * week as u64);
        let mut targets: Vec<Ipv6Addr> = Vec::new();
        targets.extend(&seeds);
        // Re-probe everything previously responsive (weekly refresh).
        targets.extend(known.iter().map(|&b| Ipv6Addr::from(b)));
        // Low-IID probing across routed space: spread this week's budget
        // over each AS's /48s, hash-scattering the probed window so both
        // infrastructure and customer halves get coverage over time.
        // Each routed prefix's window is independent, so the per-/48
        // expansion fans out across workers; concatenating per-prefix
        // target lists in prefix order reproduces the sequential order.
        // Cost hint: `low_iid_per_as` hashed /48 picks plus two target
        // expansions each, ~300 ns per pick.
        let prefix_cost =
            v6par::Cost::per_item_ns(cfg.low_iid_per_as.max(1) * 300).labeled("scan.lowiid");
        let per_prefix = v6par::par_map_cost(threads, &routed, prefix_cost, |_, (p, _)| {
            let n48 = p.subprefix_count(48).min(1 << 16);
            let mut out = Vec::with_capacity(cfg.low_iid_per_as as usize * 2);
            for k in 0..cfg.low_iid_per_as {
                let idx = v6netsim::rng::hash64(
                    cfg.seed ^ (week as u64) << 32,
                    &(p.bits() as u64 ^ k).to_be_bytes(),
                ) % n48;
                let p48 = p.subprefix(48, idx);
                out.extend(low_iid_targets(&p48, 2));
            }
            out
        });
        for mut chunk in per_prefix {
            targets.append(&mut chunk);
        }
        // TGA expansion trained on everything known so far.
        let mut tga = PatternTga::new();
        tga.observe_all(known.iter().map(|&b| Ipv6Addr::from(b)));
        tga.observe_all(seeds.iter().copied());
        targets.extend(tga.generate(cfg.tga_budget));

        // Drop targets inside known aliased prefixes (best practice §4.2).
        targets.retain(|a| !alias_list.contains(*a));
        targets.sort_unstable_by_key(|a| u128::from(*a));
        targets.dedup();

        // ZMap6 passes — one per protocol the Hitlist scans (§3). The
        // union of responsive targets feeds publication; ICMP-quiet web
        // servers only ever appear via the TCP passes.
        let mut responsive: Vec<crate::zmap6::Responsive> = Vec::new();
        for (i, probe) in [
            ProbeKind::IcmpEcho,
            ProbeKind::TcpSyn(80),
            ProbeKind::TcpSyn(443),
            ProbeKind::UdpDatagram(53),
        ]
        .into_iter()
        .enumerate()
        {
            let zcfg = Zmap6Config {
                seed: cfg.seed ^ ((week as u64) << 8) ^ i as u64,
                rate_pps: 100_000,
                start: t0 + SimDuration::hours(i as u64),
                probe,
            };
            let zr = metrics
                .zmap6_sweep_latency
                .time(|| scan_with_threads(&prober, &targets, &zcfg, threads));
            metrics.zmap6_targets.add(targets.len() as u64);
            metrics.zmap6_probes.add(zr.stats.sent);
            metrics.zmap6_responsive.add(zr.responsive.len() as u64);
            result.probes_sent += zr.stats.sent;
            responsive.extend(zr.responsive);
        }
        responsive.sort_by_key(|r| (u128::from(r.target), r.t));
        responsive.dedup_by_key(|r| u128::from(r.target));
        let zr = crate::zmap6::ScanResult {
            responsive,
            stats: Default::default(),
        };

        // Yarrp pass: trace toward a hash-sample of this week's probe
        // targets. Every trace crosses transit (router discovery); traces
        // entering active customer delegations reveal the CPE periphery
        // no echo scan would find.
        let yarrp_targets: Vec<Ipv6Addr> = if targets.len() <= cfg.yarrp_targets {
            targets.clone()
        } else {
            let step = targets.len() / cfg.yarrp_targets;
            targets.iter().step_by(step.max(1)).copied().collect()
        };
        let ycfg = YarrpConfig {
            seed: cfg.seed ^ 0x7000 ^ week as u64,
            start: t0 + SimDuration::hours(12),
            ..Default::default()
        };
        let yr = metrics
            .yarrp_sweep_latency
            .time(|| trace_with_threads(&prober, &yarrp_targets, &ycfg, threads));
        metrics.yarrp_targets.add(yarrp_targets.len() as u64);
        metrics.yarrp_probes.add(yr.sent);
        metrics.yarrp_hops.add(yr.hops.len() as u64);
        metrics.yarrp_reached.add(yr.reached.len() as u64);
        result.probes_sent += yr.sent;

        // Alias detection on /48s with implausibly broad responsiveness.
        let mut hot48: BTreeSet<u128> = BTreeSet::new();
        for r in &zr.responsive {
            hot48.insert(Prefix::of(r.target, 48).bits());
        }
        let candidates: Vec<Prefix> = hot48
            .iter()
            .map(|&b| Prefix::from_bits(b, 48))
            .filter(|p| !alias_list.covers_prefix(p))
            .collect();
        let detected = metrics.alias_sweep_latency.time(|| {
            detector.sweep_with_threads(&prober, &candidates, t0 + SimDuration::DAY, threads)
        });
        metrics.alias_candidates.add(candidates.len() as u64);
        metrics.alias_detected.add(detected.len() as u64);
        // Generalize upward (the Hitlist publishes the broadest fully
        // aliased prefix): keep halving the prefix length while the
        // parent still detects as aliased. Each detected prefix broadens
        // independently; inserting in sweep order keeps the alias list
        // identical to the sequential pass.
        // Cost hint: up to four parent-detection attempts per prefix,
        // each a 16-probe sweep.
        let broaden_cost = v6par::Cost::per_item_ns(64_000).labeled("scan.broaden");
        let broadened = v6par::par_map_cost(threads, &detected, broaden_cost, |_, &p| {
            let mut broadest = p;
            for len in [44u8, 40, 36, 33] {
                if len >= broadest.len() {
                    continue;
                }
                let parent = broadest.truncate(len);
                if detector.detect(&prober, &parent, t0 + SimDuration::DAY) {
                    broadest = parent;
                } else {
                    break;
                }
            }
            broadest
        });
        for p in broadened {
            alias_list.insert(p);
        }

        // Publish this week's responsive set, alias-filtered.
        let mut new_this_week = 0u64;
        let mut publish = |addr: Ipv6Addr, t: SimTime| {
            if alias_list.contains(addr) {
                return;
            }
            if known.insert(u128::from(addr)) {
                new_this_week += 1;
            }
            result.discoveries.push(Discovery { addr, t });
        };
        for r in &zr.responsive {
            publish(r.target, r.t);
        }
        for h in &yr.hops {
            publish(h.hop, t0 + SimDuration::hours(12));
        }
        for &(a, _, t) in &yr.reached {
            publish(a, t);
        }
        metrics.campaign_published_new.add(new_this_week);
        result.weekly_new.push(new_this_week);
    }
    metrics
        .campaign_discoveries
        .add(result.discoveries.len() as u64);
    result.aliased = alias_list.prefixes();
    result
}

/// CAIDA campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaidaCampaignConfig {
    /// Probe every `stride`-th /48 (1 = full methodology).
    pub stride: u64,
    /// Scan key.
    pub seed: u64,
    /// Campaign start.
    pub start: SimTime,
    /// Campaign length (the real one ran ~9 weeks, Feb–Apr 2022).
    pub duration: SimDuration,
}

impl Default for CaidaCampaignConfig {
    fn default() -> Self {
        CaidaCampaignConfig {
            stride: 64,
            seed: 0xca1d_a048,
            start: SimTime::START + SimDuration::days(9), // Feb 3 in paper time
            duration: SimDuration::days(62),
        }
    }
}

/// Runs the CAIDA routed-/48 Yarrp campaign from vantage point `vp_id`.
pub fn run_caida_campaign(world: &World, vp_id: u16, cfg: &CaidaCampaignConfig) -> CampaignResult {
    run_caida_campaign_with_threads(world, vp_id, cfg, v6par::threads())
}

/// [`run_caida_campaign`] with the per-/48 traceroutes sharded across
/// `threads` workers. Bit-identical to the sequential campaign.
pub fn run_caida_campaign_with_threads(
    world: &World,
    vp_id: u16,
    cfg: &CaidaCampaignConfig,
    threads: usize,
) -> CampaignResult {
    let prober = WorldProber::new(world, vp_id);
    let routed = world.routed_prefixes();
    let targets = caida_routed48_targets(&routed, cfg.stride);
    // Pace the whole campaign across its duration.
    let probes = targets.len() as u64 * 12;
    let rate = (probes / cfg.duration.as_secs().max(1)).max(1);
    let ycfg = YarrpConfig {
        seed: cfg.seed,
        ttl_min: 1,
        ttl_max: 12,
        rate_pps: rate,
        start: cfg.start,
    };
    let metrics = scan_metrics();
    let yr = metrics
        .yarrp_sweep_latency
        .time(|| trace_with_threads(&prober, &targets, &ycfg, threads));
    metrics.yarrp_targets.add(targets.len() as u64);
    metrics.yarrp_probes.add(yr.sent);
    metrics.yarrp_hops.add(yr.hops.len() as u64);
    metrics.yarrp_reached.add(yr.reached.len() as u64);
    let mut result = CampaignResult {
        probes_sent: yr.sent,
        ..Default::default()
    };
    for h in &yr.hops {
        result.discoveries.push(Discovery {
            addr: h.hop,
            t: cfg.start,
        });
    }
    for &(a, _, t) in &yr.reached {
        result.discoveries.push(Discovery { addr: a, t });
    }
    metrics
        .campaign_discoveries
        .add(result.discoveries.len() as u64);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::{AsKind, WorldConfig};

    fn world() -> World {
        World::build(WorldConfig::tiny(), 66)
    }

    #[test]
    fn hitlist_campaign_finds_servers_and_infrastructure() {
        let w = world();
        let cfg = HitlistCampaignConfig {
            weeks: 2,
            ..Default::default()
        };
        let r = run_hitlist_campaign(&w, 0, &cfg);
        let unique = r.unique_addresses();
        assert!(!unique.is_empty());
        // Must rediscover a good share of the public servers.
        let servers = w.public_servers();
        let found = servers.iter().filter(|s| unique.contains(s)).count();
        assert!(
            found as f64 / servers.len() as f64 > 0.7,
            "{found}/{} public servers found",
            servers.len()
        );
        // Must include transit-router hops (traceroute fodder).
        let transit = unique
            .iter()
            .filter(|a| {
                w.as_index_of(**a)
                    .map(|i| w.ases[i as usize].info.kind == AsKind::Transit)
                    .unwrap_or(false)
            })
            .count();
        assert!(transit > 0, "no transit routers discovered");
    }

    #[test]
    fn hitlist_detects_hosting_aliases() {
        let w = world();
        let cfg = HitlistCampaignConfig {
            weeks: 1,
            ..Default::default()
        };
        let r = run_hitlist_campaign(&w, 0, &cfg);
        // The TGA/low-iid probing hits hosting alias space eventually; at
        // minimum the alias list must not contain clean eyeball /48s.
        for p in &r.aliased {
            let ai = w.as_index_of(p.network()).unwrap() as usize;
            let asr = &w.ases[ai];
            let ok = asr.info.clients_aliased()
                || asr
                    .alias_48s
                    .iter()
                    .any(|a| a.contains_prefix(p) || p.contains_prefix(a));
            assert!(ok, "false alias {p} in {}", asr.info.name);
        }
    }

    #[test]
    fn hitlist_discoveries_are_alias_filtered() {
        let w = world();
        let r = run_hitlist_campaign(
            &w,
            0,
            &HitlistCampaignConfig {
                weeks: 2,
                ..Default::default()
            },
        );
        let list = AliasList::from_prefixes(r.aliased.iter().copied());
        for d in &r.discoveries {
            assert!(
                !list.contains(d.addr) || !list.covers_prefix(&Prefix::of(d.addr, 48)),
                "published aliased address {}",
                d.addr
            );
        }
    }

    #[test]
    fn caida_campaign_discovers_about_one_addr_per_48() {
        let w = world();
        let cfg = CaidaCampaignConfig {
            stride: 1024,
            ..Default::default()
        };
        let r = run_caida_campaign(&w, 0, &cfg);
        let unique = r.unique_addresses();
        assert!(!unique.is_empty());
        // The signature of the CAIDA dataset (Table 1): average addresses
        // per /48 ≈ 1.
        let set = v6addr::AddrSet::from_addrs(unique.iter().copied());
        let density = set.density(48);
        assert!(
            density < 3.0,
            "CAIDA-style discovery should be sparse, got {density:.1} per /48"
        );
        // And dominated by low-entropy infrastructure addresses.
        // Dominated by low-entropy infrastructure addresses (a small CPE
        // share sneaks in via periphery hops, as in reality).
        let low = unique
            .iter()
            .filter(|a| v6addr::iid_entropy(v6addr::iid(**a)) < 0.25)
            .count();
        assert!(
            low as f64 / unique.len() as f64 > 0.7,
            "{low}/{} low-entropy",
            unique.len()
        );
    }

    #[test]
    fn multi_protocol_finds_icmp_quiet_servers() {
        use crate::prober::{Prober, WorldProber};
        use v6netsim::{DeviceKind, ServerRole, SimTime};
        let w = world();
        let prober = WorldProber::new(&w, 0);
        let t = SimTime(0);
        // Ground truth: pick ICMP-quiet web servers.
        let quiet: Vec<std::net::Ipv6Addr> = w
            .devices
            .iter()
            .filter(|d| d.kind == DeviceKind::Server)
            .filter(|d| ServerRole::of_seed(d.seed) == ServerRole::QuietWeb)
            .filter_map(|d| d.fixed_addr)
            .collect();
        assert!(!quiet.is_empty(), "no quiet web servers in tiny world");
        let mut ping_hits = 0;
        let mut tcp_hits = 0;
        for &a in &quiet {
            if prober.probe_kind(a, ProbeKind::IcmpEcho, t).is_echo() {
                ping_hits += 1;
            }
            if prober.probe_kind(a, ProbeKind::TcpSyn(443), t).is_echo() {
                tcp_hits += 1;
            }
        }
        assert_eq!(ping_hits, 0, "quiet servers answered ping");
        assert!(
            tcp_hits as f64 / quiet.len() as f64 > 0.7,
            "{tcp_hits}/{} answered TCP 443",
            quiet.len()
        );
        // And the full campaign (which scans TCP) publishes some of them.
        let r = run_hitlist_campaign(
            &w,
            0,
            &HitlistCampaignConfig {
                weeks: 1,
                ..Default::default()
            },
        );
        let unique = r.unique_addresses();
        let found = quiet.iter().filter(|a| unique.contains(a)).count();
        assert!(found > 0, "campaign never found an ICMP-quiet server");
    }

    #[test]
    fn caida_sees_more_ases_than_it_probes_responsively() {
        let w = world();
        let r = run_caida_campaign(
            &w,
            0,
            &CaidaCampaignConfig {
                stride: 2048,
                ..Default::default()
            },
        );
        // Hop discovery pulls in transit ASes: the distinct-AS count of
        // discoveries must exceed the hosting-AS count of the vantage.
        let ases: BTreeSet<u16> = r
            .unique_addresses()
            .iter()
            .filter_map(|a| w.as_index_of(*a))
            .collect();
        let transit: usize = ases
            .iter()
            .filter(|&&i| w.ases[i as usize].info.kind == AsKind::Transit)
            .count();
        assert!(transit >= 5, "only {transit} transit ASes seen");
    }
}
