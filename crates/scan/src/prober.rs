//! The probing abstraction scanners are written against.
//!
//! Scanners don't know they're running against a simulator: they see a
//! [`Prober`] that accepts an ICMPv6 echo toward a destination with a hop
//! limit and eventually yields an outcome. [`WorldProber`] adapts the
//! synthetic Internet's probe surface; tests use closures.

use std::net::Ipv6Addr;

use v6netsim::{ProbeKind, ProbeOutcome, SimTime, VantagePoint, World};

/// Something that can emit ICMPv6 echoes and observe what comes back.
pub trait Prober {
    /// The source address probes are sent from.
    fn source(&self) -> Ipv6Addr;

    /// Sends one echo request with the given hop limit at time `t`.
    fn probe(&self, dst: Ipv6Addr, ttl: u8, t: SimTime) -> ProbeOutcome;

    /// Sends a probe of an arbitrary kind (full TTL). The default only
    /// understands ICMPv6; transport-capable probers override it.
    fn probe_kind(&self, dst: Ipv6Addr, kind: ProbeKind, t: SimTime) -> ProbeOutcome {
        match kind {
            ProbeKind::IcmpEcho => self.probe(dst, 64, t),
            _ => ProbeOutcome::NoResponse,
        }
    }
}

/// A prober rooted at one of the world's vantage points.
pub struct WorldProber<'w> {
    world: &'w World,
    vp: VantagePoint,
}

impl<'w> WorldProber<'w> {
    /// Probes from vantage point `vp_id`.
    ///
    /// # Panics
    /// Panics if `vp_id` does not exist.
    pub fn new(world: &'w World, vp_id: u16) -> Self {
        let vp = world
            .vantage_points
            .iter()
            .find(|v| v.id == vp_id)
            .expect("unknown vantage point")
            .clone();
        WorldProber { world, vp }
    }

    /// The underlying world.
    pub fn world(&self) -> &World {
        self.world
    }

    /// The vantage point.
    pub fn vantage(&self) -> &VantagePoint {
        &self.vp
    }
}

impl Prober for WorldProber<'_> {
    fn source(&self) -> Ipv6Addr {
        self.vp.addr
    }

    fn probe(&self, dst: Ipv6Addr, ttl: u8, t: SimTime) -> ProbeOutcome {
        self.world.probe_ttl(self.vp.as_index, dst, ttl, t)
    }

    fn probe_kind(&self, dst: Ipv6Addr, kind: ProbeKind, t: SimTime) -> ProbeOutcome {
        self.world.probe_kind(self.vp.as_index, dst, kind, t)
    }
}

/// A prober defined by a closure (for tests and synthetic topologies).
pub struct FnProber<F> {
    src: Ipv6Addr,
    f: F,
}

impl<F: Fn(Ipv6Addr, u8, SimTime) -> ProbeOutcome> FnProber<F> {
    /// Wraps a closure as a prober.
    pub fn new(src: Ipv6Addr, f: F) -> Self {
        FnProber { src, f }
    }
}

impl<F: Fn(Ipv6Addr, u8, SimTime) -> ProbeOutcome> Prober for FnProber<F> {
    fn source(&self) -> Ipv6Addr {
        self.src
    }

    fn probe(&self, dst: Ipv6Addr, ttl: u8, t: SimTime) -> ProbeOutcome {
        (self.f)(dst, ttl, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::WorldConfig;

    #[test]
    fn world_prober_probes_from_vp() {
        let w = World::build(WorldConfig::tiny(), 21);
        let p = WorldProber::new(&w, 0);
        assert_eq!(p.source(), w.vantage_points[0].addr);
        // An alias prefix always echoes, independent of vantage.
        let alias = w.aliased_prefixes()[0].offset(42);
        assert!(p.probe(alias, 64, SimTime(0)).is_echo());
    }

    #[test]
    fn fn_prober_delegates() {
        let src: Ipv6Addr = "2a00:1::1".parse().unwrap();
        let p = FnProber::new(src, |dst, _ttl, _t| ProbeOutcome::EchoReply { from: dst });
        assert_eq!(p.source(), src);
        let dst: Ipv6Addr = "2a00:2::2".parse().unwrap();
        assert_eq!(
            p.probe(dst, 64, SimTime(0)),
            ProbeOutcome::EchoReply { from: dst }
        );
    }

    #[test]
    #[should_panic]
    fn unknown_vp_panics() {
        let w = World::build(WorldConfig::tiny(), 21);
        WorldProber::new(&w, 999);
    }
}
