//! ICMPv6 packet codec (RFC 4443).
//!
//! Active campaigns (ZMap6, Yarrp) and the backscanning experiment all
//! speak ICMPv6 — the paper uses ICMPv6 exclusively for backscans "to
//! minimize potential disruption" (§3). This codec covers the four
//! message types those tools exchange, with real Internet checksums over
//! the IPv6 pseudo-header.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv6Addr;

/// ICMPv6 type: destination unreachable.
pub const TYPE_DEST_UNREACHABLE: u8 = 1;
/// ICMPv6 type: time exceeded.
pub const TYPE_TIME_EXCEEDED: u8 = 3;
/// ICMPv6 type: echo request.
pub const TYPE_ECHO_REQUEST: u8 = 128;
/// ICMPv6 type: echo reply.
pub const TYPE_ECHO_REPLY: u8 = 129;

/// A decoded ICMPv6 message (the subset measurement tools use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv6Message {
    /// Echo request (ping). `ident`/`seq` carry scanner validation state.
    EchoRequest {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Echo reply.
    EchoReply {
        /// Identifier (echoed).
        ident: u16,
        /// Sequence number (echoed).
        seq: u16,
        /// Payload (echoed).
        payload: Bytes,
    },
    /// Time exceeded (hop-limit 0 in transit) — what traceroute lives on.
    /// Carries the invoking packet so stateless tools can match it.
    TimeExceeded {
        /// Leading bytes of the packet whose hop limit expired.
        invoking: Bytes,
    },
    /// Destination unreachable.
    DestUnreachable {
        /// RFC 4443 code (0 = no route, 1 = prohibited, 3 = addr
        /// unreachable, 4 = port unreachable).
        code: u8,
        /// Leading bytes of the invoking packet.
        invoking: Bytes,
    },
}

/// Errors decoding an ICMPv6 message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpError {
    /// Shorter than the 8-byte minimum (4 header + 4 body).
    Truncated,
    /// Checksum mismatch.
    BadChecksum {
        /// Checksum carried in the packet.
        got: u16,
        /// Checksum computed over the received bytes.
        want: u16,
    },
    /// A type this codec does not model.
    UnsupportedType(u8),
}

impl fmt::Display for IcmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpError::Truncated => f.write_str("ICMPv6 message truncated"),
            IcmpError::BadChecksum { got, want } => {
                write!(f, "ICMPv6 checksum {got:#06x} != computed {want:#06x}")
            }
            IcmpError::UnsupportedType(t) => write!(f, "unsupported ICMPv6 type {t}"),
        }
    }
}

impl std::error::Error for IcmpError {}

/// Computes the ICMPv6 checksum: one's-complement sum over the IPv6
/// pseudo-header (src, dst, length, next-header 58) and the message.
pub fn checksum(src: Ipv6Addr, dst: Ipv6Addr, msg: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut add16 = |v: u16| sum += v as u32;
    for seg in src.segments() {
        add16(seg);
    }
    for seg in dst.segments() {
        add16(seg);
    }
    let len = msg.len() as u32;
    add16((len >> 16) as u16);
    add16(len as u16);
    add16(58); // next header = ICMPv6
    let mut chunks = msg.chunks_exact(2);
    for c in &mut chunks {
        add16(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        add16(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Icmpv6Message {
    /// The ICMPv6 type byte for this message.
    pub fn type_byte(&self) -> u8 {
        match self {
            Icmpv6Message::EchoRequest { .. } => TYPE_ECHO_REQUEST,
            Icmpv6Message::EchoReply { .. } => TYPE_ECHO_REPLY,
            Icmpv6Message::TimeExceeded { .. } => TYPE_TIME_EXCEEDED,
            Icmpv6Message::DestUnreachable { .. } => TYPE_DEST_UNREACHABLE,
        }
    }

    /// Encodes with a correct checksum for the given address pair.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            Icmpv6Message::EchoRequest {
                ident,
                seq,
                payload,
            }
            | Icmpv6Message::EchoReply {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(self.type_byte());
                buf.put_u8(0); // code
                buf.put_u16(0); // checksum placeholder
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            Icmpv6Message::TimeExceeded { invoking } => {
                buf.put_u8(TYPE_TIME_EXCEEDED);
                buf.put_u8(0); // code 0: hop limit exceeded in transit
                buf.put_u16(0);
                buf.put_u32(0); // unused
                buf.put_slice(invoking);
            }
            Icmpv6Message::DestUnreachable { code, invoking } => {
                buf.put_u8(TYPE_DEST_UNREACHABLE);
                buf.put_u8(*code);
                buf.put_u16(0);
                buf.put_u32(0); // unused
                buf.put_slice(invoking);
            }
        }
        let ck = checksum(src, dst, &buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        buf.freeze()
    }

    /// Decodes and verifies the checksum for the given address pair.
    pub fn decode(src: Ipv6Addr, dst: Ipv6Addr, wire: &[u8]) -> Result<Self, IcmpError> {
        if wire.len() < 8 {
            return Err(IcmpError::Truncated);
        }
        let got = u16::from_be_bytes([wire[2], wire[3]]);
        let mut zeroed = wire.to_vec();
        zeroed[2] = 0;
        zeroed[3] = 0;
        let want = checksum(src, dst, &zeroed);
        if got != want {
            return Err(IcmpError::BadChecksum { got, want });
        }
        let mut body = &wire[4..];
        match wire[0] {
            TYPE_ECHO_REQUEST | TYPE_ECHO_REPLY => {
                let ident = body.get_u16();
                let seq = body.get_u16();
                let payload = Bytes::copy_from_slice(body);
                Ok(if wire[0] == TYPE_ECHO_REQUEST {
                    Icmpv6Message::EchoRequest {
                        ident,
                        seq,
                        payload,
                    }
                } else {
                    Icmpv6Message::EchoReply {
                        ident,
                        seq,
                        payload,
                    }
                })
            }
            TYPE_TIME_EXCEEDED => {
                body.advance(4);
                Ok(Icmpv6Message::TimeExceeded {
                    invoking: Bytes::copy_from_slice(body),
                })
            }
            TYPE_DEST_UNREACHABLE => {
                body.advance(4);
                Ok(Icmpv6Message::DestUnreachable {
                    code: wire[1],
                    invoking: Bytes::copy_from_slice(body),
                })
            }
            t => Err(IcmpError::UnsupportedType(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2a00:1::1".parse().unwrap(),
            "2a00:2::dead:beef".parse().unwrap(),
        )
    }

    #[test]
    fn echo_round_trip() {
        let (s, d) = pair();
        let m = Icmpv6Message::EchoRequest {
            ident: 0xbeef,
            seq: 7,
            payload: Bytes::from_static(b"zmap6"),
        };
        let wire = m.encode(s, d);
        assert_eq!(wire[0], TYPE_ECHO_REQUEST);
        assert_eq!(Icmpv6Message::decode(s, d, &wire).unwrap(), m);
    }

    #[test]
    fn reply_round_trip() {
        let (s, d) = pair();
        let m = Icmpv6Message::EchoReply {
            ident: 1,
            seq: 2,
            payload: Bytes::new(),
        };
        let wire = m.encode(d, s);
        assert_eq!(Icmpv6Message::decode(d, s, &wire).unwrap(), m);
    }

    #[test]
    fn time_exceeded_round_trip() {
        let (s, d) = pair();
        let m = Icmpv6Message::TimeExceeded {
            invoking: Bytes::from_static(&[0x60, 0, 0, 0, 1, 2, 3, 4]),
        };
        let wire = m.encode(s, d);
        assert_eq!(Icmpv6Message::decode(s, d, &wire).unwrap(), m);
    }

    #[test]
    fn dest_unreachable_codes() {
        let (s, d) = pair();
        for code in [0u8, 1, 3, 4] {
            let m = Icmpv6Message::DestUnreachable {
                code,
                invoking: Bytes::from_static(b"x"),
            };
            let wire = m.encode(s, d);
            assert_eq!(Icmpv6Message::decode(s, d, &wire).unwrap(), m);
        }
    }

    #[test]
    fn checksum_depends_on_addresses() {
        let (s, d) = pair();
        let m = Icmpv6Message::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::new(),
        };
        let wire = m.encode(s, d);
        // Same bytes "received" at a different destination: checksum fails.
        let other: Ipv6Addr = "2a00:3::1".parse().unwrap();
        assert!(matches!(
            Icmpv6Message::decode(s, other, &wire),
            Err(IcmpError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corrupted_byte_detected() {
        let (s, d) = pair();
        let m = Icmpv6Message::EchoRequest {
            ident: 0x1234,
            seq: 1,
            payload: Bytes::from_static(b"payload!"),
        };
        let mut wire = m.encode(s, d).to_vec();
        wire[9] ^= 0x40;
        assert!(matches!(
            Icmpv6Message::decode(s, d, &wire),
            Err(IcmpError::BadChecksum { .. })
        ));
    }

    #[test]
    fn odd_length_payload_checksums() {
        let (s, d) = pair();
        let m = Icmpv6Message::EchoRequest {
            ident: 5,
            seq: 6,
            payload: Bytes::from_static(b"odd"),
        };
        let wire = m.encode(s, d);
        assert_eq!(Icmpv6Message::decode(s, d, &wire).unwrap(), m);
    }

    #[test]
    fn truncated_and_unsupported() {
        let (s, d) = pair();
        assert_eq!(
            Icmpv6Message::decode(s, d, &[128, 0, 0]),
            Err(IcmpError::Truncated)
        );
        // Type 135 (neighbor solicitation) with a valid checksum.
        let mut raw = vec![135u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum(s, d, &raw);
        raw[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(
            Icmpv6Message::decode(s, d, &raw),
            Err(IcmpError::UnsupportedType(135))
        );
    }
}
