//! Property-based tests for the active-measurement tooling.

use proptest::prelude::*;
use std::net::Ipv6Addr;

use v6netsim::{ProbeOutcome, SimTime};
use v6scan::{scan, AliasList, FnProber, IcmpError, Icmpv6Message, Zmap6Config};

fn addr(bits: u128) -> Ipv6Addr {
    Ipv6Addr::from(bits)
}

proptest! {
    /// ICMPv6 echo messages round-trip through encode/decode for any
    /// ident/seq/payload and any address pair.
    #[test]
    fn icmp_echo_round_trip(
        src in any::<u128>(),
        dst in any::<u128>(),
        ident in any::<u16>(),
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let (s, d) = (addr(src), addr(dst));
        let m = Icmpv6Message::EchoRequest {
            ident,
            seq,
            payload: bytes::Bytes::from(payload),
        };
        let wire = m.encode(s, d);
        prop_assert_eq!(Icmpv6Message::decode(s, d, &wire).unwrap(), m);
    }

    /// Any single-bit corruption of an encoded message is caught by the
    /// checksum (or changes it into another *valid-checksum* message,
    /// which one's-complement arithmetic makes impossible for one flip).
    #[test]
    fn icmp_checksum_catches_bit_flips(
        src in any::<u128>(),
        dst in any::<u128>(),
        payload in prop::collection::vec(any::<u8>(), 1..32),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let (s, d) = (addr(src), addr(dst));
        let m = Icmpv6Message::EchoRequest {
            ident: 7,
            seq: 9,
            payload: bytes::Bytes::from(payload),
        };
        let mut wire = m.encode(s, d).to_vec();
        let idx = flip_byte % wire.len();
        wire[idx] ^= 1 << flip_bit;
        match Icmpv6Message::decode(s, d, &wire) {
            Err(IcmpError::BadChecksum { .. }) | Err(IcmpError::UnsupportedType(_)) => {}
            Err(IcmpError::Truncated) => prop_assert!(false, "length did not change"),
            Ok(decoded) => {
                // Flipping a bit of the type byte between 128↔129 keeps
                // the checksum valid only if the checksum field was also
                // what we flipped; any surviving decode must differ from
                // the original message.
                prop_assert_ne!(decoded, m, "corruption undetected at byte {}", idx);
            }
        }
    }

    /// The decoder never panics on arbitrary input bytes.
    #[test]
    fn icmp_decode_total(src in any::<u128>(), dst in any::<u128>(),
                         bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = Icmpv6Message::decode(addr(src), addr(dst), &bytes);
    }

    /// The scanner probes every target exactly once, in an order that is
    /// a permutation of the input, and reports exactly the responsive
    /// subset.
    #[test]
    fn scanner_covers_targets_exactly_once(n in 1usize..400, modulus in 2u128..7) {
        let targets: Vec<Ipv6Addr> = (0..n as u128)
            .map(|i| addr((0x2a01u128 << 112) | (i * 0x9e37) | i << 64))
            .collect();
        let probed = std::sync::Mutex::new(Vec::new());
        let prober = FnProber::new(addr(1), |dst, _, _| {
            probed.lock().unwrap().push(dst);
            if u128::from(dst) % modulus == 0 {
                ProbeOutcome::EchoReply { from: dst }
            } else {
                ProbeOutcome::NoResponse
            }
        });
        let r = scan(&prober, &targets, &Zmap6Config::default());
        let mut got = probed.lock().unwrap().clone();
        got.sort_unstable();
        let mut want = targets.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let expected_hits = targets.iter().filter(|a| u128::from(**a) % modulus == 0).count();
        prop_assert_eq!(r.responsive.len(), expected_hits);
        prop_assert_eq!(r.stats.validated, expected_hits as u64);
    }

    /// An alias list contains an address iff some listed prefix covers it.
    #[test]
    fn alias_list_cover_semantics(
        prefixes in prop::collection::vec((any::<u128>(), 16u8..64), 1..20),
        probe in any::<u128>(),
    ) {
        let list = AliasList::from_prefixes(
            prefixes.iter().map(|&(b, l)| v6addr::Prefix::from_bits(b, l)),
        );
        let a = addr(probe);
        let expected = prefixes
            .iter()
            .any(|&(b, l)| v6addr::Prefix::from_bits(b, l).contains(a));
        prop_assert_eq!(list.contains(a), expected);
    }
}

#[test]
fn fnprober_time_is_passed_through() {
    // Plain test: the prober must receive the scanner's paced timestamps.
    let seen = std::sync::Mutex::new(Vec::new());
    let prober = FnProber::new(addr(1), |_, _, t| {
        seen.lock().unwrap().push(t);
        ProbeOutcome::NoResponse
    });
    let targets: Vec<Ipv6Addr> = (0..10u128).map(|i| addr(i << 64)).collect();
    let cfg = Zmap6Config {
        rate_pps: 2,
        start: SimTime(50),
        ..Default::default()
    };
    scan(&prober, &targets, &cfg);
    let ts = seen.lock().unwrap();
    assert!(ts.iter().all(|t| (50..56).contains(&t.as_secs())));
}
