//! Kill-and-recover suite for the injected write-path fault sites.
//!
//! Each test injects one fault class at a scripted site, "crashes" by
//! dropping the log with the damage still on disk, and asserts that
//! recovery lands on a previously published epoch with the
//! truncate/quarantine report matching the injected fault exactly:
//!
//! - `store.append.<epoch>` + `Error`  → torn write (frame cut mid-way)
//! - `store.append.<epoch>` + `Panic`  → partial flush (tail page lost)
//! - `store.bitrot.<epoch>`            → silent bit flip, caught at recovery
//! - `store.checkpoint.<epoch>`        → torn checkpoint, log fallback

use std::sync::Arc;

use v6chaos::{ScriptedChaos, SiteScript};
use v6obs::Registry;
use v6store::{recover, EpochLog, EpochView, StoreConfig};

fn view(epoch: u64, entries: &[(u128, u32)]) -> EpochView<'_> {
    EpochView {
        epoch,
        week: epoch,
        content_checksum: 0xc0de_0000 + epoch,
        missing_shards: &[],
        entries,
        aliases: &[],
    }
}

fn store_with(dir: &std::path::Path, interval: u64, chaos: ScriptedChaos) -> EpochLog {
    let cfg = StoreConfig::new(dir)
        .checkpoint_every(interval)
        .with_fsync(false);
    EpochLog::create_with(cfg, "chaos", 1, &Registry::new(), Arc::new(chaos)).expect("create")
}

#[test]
fn torn_write_fails_the_append_and_recovery_keeps_the_prior_epoch() {
    let dir = v6store::scratch_dir("chaos-torn");
    let chaos = ScriptedChaos::new().with("store.append.2", SiteScript::transient(1));
    let mut log = store_with(&dir, 0, chaos);
    log.append(view(1, &[(10, 0)])).unwrap();
    let err = log.append(view(2, &[(10, 0), (20, 1)])).unwrap_err();
    assert!(err.to_string().contains("torn write"), "{err}");
    drop(log); // crash with the torn frame on disk

    let rec = recover(&dir).unwrap();
    assert_eq!(rec.state.epoch, 1);
    assert_eq!(rec.state.content_checksum, 0xc0de_0001);
    assert_eq!(rec.state.entries, vec![(10, 0)]);
    assert!(
        rec.report.truncated_bytes > 0,
        "torn bytes must be reported"
    );
    assert_eq!(rec.report.quarantined, 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn partial_flush_fails_the_append_and_recovery_keeps_the_prior_epoch() {
    let dir = v6store::scratch_dir("chaos-flush");
    let chaos = ScriptedChaos::new().with("store.append.2", SiteScript::transient_panic(1));
    let mut log = store_with(&dir, 0, chaos);
    log.append(view(1, &[(10, 0)])).unwrap();
    let err = log.append(view(2, &[(10, 0), (20, 1)])).unwrap_err();
    assert!(err.to_string().contains("partial flush"), "{err}");
    drop(log);

    let rec = recover(&dir).unwrap();
    assert_eq!(rec.state.epoch, 1);
    assert!(rec.report.truncated_bytes > 0);
    assert_eq!(rec.report.quarantined, 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bitrot_is_silent_at_append_time_and_quarantined_at_recovery() {
    let dir = v6store::scratch_dir("chaos-rot");
    let chaos = ScriptedChaos::new().with("store.bitrot.2", SiteScript::transient(1));
    let mut log = store_with(&dir, 0, chaos);
    log.append(view(1, &[(10, 0)])).unwrap();
    // The corrupted append *succeeds* — that is what makes bit rot
    // dangerous — and only recovery notices.
    log.append(view(2, &[(10, 0), (20, 1)])).unwrap();
    assert_eq!(log.epoch(), 2);
    drop(log);

    let rec = recover(&dir).unwrap();
    assert_eq!(rec.state.epoch, 1, "rotten epoch must not be served");
    assert_eq!(rec.state.content_checksum, 0xc0de_0001);
    assert_eq!(rec.report.quarantined, 1);
    assert!(rec.report.truncated_bytes > 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn torn_checkpoint_is_skipped_and_the_log_still_replays() {
    let dir = v6store::scratch_dir("chaos-ckpt");
    let chaos = ScriptedChaos::new().with("store.checkpoint.2", SiteScript::transient(1));
    let mut log = store_with(&dir, 2, chaos);
    log.append(view(1, &[(10, 0)])).unwrap();
    let receipt = log.append(view(2, &[(10, 0), (20, 1)])).unwrap();
    assert!(
        !receipt.checkpointed,
        "faulted checkpoint must not count as compaction"
    );
    drop(log);

    let rec = recover(&dir).unwrap();
    assert_eq!(rec.report.corrupt_checkpoints, 1);
    assert_eq!(rec.report.checkpoint_epoch, None, "fell back to the log");
    assert_eq!(rec.report.replayed, 2);
    assert_eq!(rec.state.epoch, 2);
    assert_eq!(rec.state.entries, vec![(10, 0), (20, 1)]);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn failed_append_self_heals_on_the_next_append() {
    let dir = v6store::scratch_dir("chaos-heal");
    let chaos = ScriptedChaos::new().with("store.append.2", SiteScript::transient(1));
    let mut log = store_with(&dir, 0, chaos);
    log.append(view(1, &[(10, 0)])).unwrap();
    log.append(view(2, &[(10, 0), (20, 1)])).unwrap_err();
    // The process survived the write error; the next epoch truncates
    // the torn bytes before appending, so the log stays parseable.
    log.append(view(3, &[(10, 0), (30, 2)])).unwrap();
    drop(log);

    let rec = recover(&dir).unwrap();
    assert_eq!(rec.state.epoch, 3);
    assert_eq!(rec.state.entries, vec![(10, 0), (30, 2)]);
    assert_eq!(rec.report.truncated_bytes, 0, "self-heal left no garbage");
    assert_eq!(rec.report.quarantined, 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn write_path_metrics_land_in_the_registry() {
    let dir = v6store::scratch_dir("chaos-metrics");
    let registry = Registry::new();
    let cfg = StoreConfig::new(&dir).checkpoint_every(2).with_fsync(false);
    let mut log =
        EpochLog::create_with(cfg, "metrics", 0, &registry, Arc::new(v6chaos::NoChaos)).unwrap();
    log.append(view(1, &[(1, 0)])).unwrap();
    log.append(view(2, &[(1, 0), (2, 0)])).unwrap();
    drop(log);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("store.log.appends"), Some(2));
    assert_eq!(snap.counter("store.log.checkpoints"), Some(1));
    assert!(snap.counter("store.log.bytes").unwrap() > 0);

    let rec_registry = Registry::new();
    v6store::recover_with(&dir, None, &rec_registry).unwrap();
    let snap = rec_registry.snapshot();
    // The checkpoint compacted everything: nothing left to replay.
    assert_eq!(snap.counter("store.recover.replayed"), Some(0));
    assert_eq!(snap.counter("store.recover.truncated"), Some(0));
    assert_eq!(snap.counter("store.recover.quarantined"), Some(0));
    std::fs::remove_dir_all(dir).ok();
}
