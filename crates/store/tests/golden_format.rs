//! Golden-file test pinning on-disk format v1 byte-for-byte.
//!
//! The fixture under `tests/golden/store_format_v1/` (repo root) is a
//! complete store directory — a delta log plus a compacted checkpoint —
//! produced by a fixed publication sequence. Any change to the header,
//! frame layout, payload encoding, checksum, or compaction behavior
//! shows up as a byte diff here and fails CI instead of silently
//! orphaning previously written data.
//!
//! To regenerate after an *intentional* format-version bump:
//!
//! ```sh
//! V6STORE_REGEN_GOLDEN=1 cargo test -p v6store --test golden_format
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use v6store::{recover, AliasEntry, EpochLog, EpochView, StoreConfig};

/// The two files the fixture sequence must produce, exactly.
const FIXTURE_FILES: [&str; 2] = ["epochs.v6log", "checkpoint-00000000000000000002.v6ck"];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/store_format_v1")
}

/// Replays the pinned publication sequence into `dir`: three epochs with
/// adds, a week upgrade, a removal, an alias, a degraded shard — one of
/// every delta feature — with a checkpoint compaction after epoch 2.
fn build_fixture(dir: &Path) {
    let base: u128 = 0x2001_0db8 << 96;
    let cfg = StoreConfig::new(dir).checkpoint_every(2).with_fsync(false);
    let mut log = EpochLog::create(cfg, "golden", 2).expect("create fixture store");
    log.append(EpochView {
        epoch: 1,
        week: 0,
        content_checksum: 0x1111_0001,
        missing_shards: &[],
        entries: &[(base | 1, 0), (base | 2, 0), (base | 0x30, 0)],
        aliases: &[],
    })
    .expect("epoch 1");
    // Epoch 2: one removal, one week upgrade, one add, one alias, one
    // degraded shard — then the interval-2 checkpoint compacts the log.
    log.append(EpochView {
        epoch: 2,
        week: 1,
        content_checksum: 0x1111_0002,
        missing_shards: &[3],
        entries: &[(base | 1, 0), (base | 0x30, 1), (base | 0x41, 1)],
        aliases: &[AliasEntry {
            bits: base,
            len: 48,
            week: 1,
        }],
    })
    .expect("epoch 2");
    // Epoch 3 lands in the freshly reset log.
    log.append(EpochView {
        epoch: 3,
        week: 2,
        content_checksum: 0x1111_0003,
        missing_shards: &[],
        entries: &[
            (base | 1, 0),
            (base | 0x30, 1),
            (base | 0x41, 1),
            (base | 0x52, 2),
        ],
        aliases: &[AliasEntry {
            bits: base,
            len: 48,
            week: 1,
        }],
    })
    .expect("epoch 3");
}

#[test]
fn on_disk_format_matches_golden_fixture() {
    let scratch = v6store::scratch_dir("golden-format");
    build_fixture(&scratch);

    let mut produced: Vec<String> = fs::read_dir(&scratch)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    produced.sort();
    let mut expected: Vec<String> = FIXTURE_FILES.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(produced, expected, "fixture file set changed");

    let golden = golden_dir();
    if std::env::var("V6STORE_REGEN_GOLDEN").is_ok() {
        fs::create_dir_all(&golden).unwrap();
        for name in FIXTURE_FILES {
            fs::copy(scratch.join(name), golden.join(name)).unwrap();
        }
        fs::remove_dir_all(&scratch).ok();
        panic!("golden fixture regenerated under {golden:?}; rerun without V6STORE_REGEN_GOLDEN");
    }

    for name in FIXTURE_FILES {
        let got = fs::read(scratch.join(name)).unwrap();
        let want = fs::read(golden.join(name)).unwrap_or_else(|e| {
            panic!("missing golden file {name} ({e}); regenerate with V6STORE_REGEN_GOLDEN=1")
        });
        assert_eq!(
            got, want,
            "{name} bytes diverged from format-v1 golden — if the format change is \
             intentional, bump FORMAT_VERSION and regenerate"
        );
    }
    fs::remove_dir_all(&scratch).ok();
}

#[test]
fn golden_fixture_still_recovers() {
    // Reading the *committed* fixture (not freshly written bytes) proves
    // today's reader still understands yesterday's data.
    let rec = recover(&golden_dir()).expect("golden fixture must recover");
    assert_eq!(rec.state.epoch, 3);
    assert_eq!(rec.state.week, 2);
    assert_eq!(rec.state.content_checksum, 0x1111_0003);
    assert_eq!(rec.state.name, "golden");
    assert_eq!(rec.state.shard_bits, 2);
    assert_eq!(rec.state.entries.len(), 4);
    assert_eq!(rec.state.aliases.len(), 1);
    assert_eq!(rec.report.checkpoint_epoch, Some(2));
    assert_eq!(rec.report.replayed, 1);
    assert_eq!(rec.report.truncated_bytes, 0);
    assert_eq!(rec.report.quarantined, 0);
}
