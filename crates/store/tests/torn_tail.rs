//! Torn-tail recovery property: truncating a valid epoch log at *every*
//! byte offset — and flipping arbitrary bits — never panics recovery
//! and never yields a state that was not previously published.
//!
//! This is the crash-consistency contract stated operationally: a crash
//! can stop a write after any byte, and media can corrupt any byte, so
//! for every such prefix/corruption the recovered `content_checksum`
//! must equal the checksum of some epoch the writer completed (or the
//! empty epoch 0). A recovered epoch must also carry exactly the
//! content that epoch had when it was published.

use std::collections::BTreeMap;
use std::fs;

use proptest::prelude::*;

use v6store::{recover, EpochLog, EpochView, StoreConfig};

/// Address-bits strategy over a small domain so epochs overlap.
fn bits() -> impl Strategy<Value = u128> {
    (0u64..64).prop_map(|n| (0x2001_0db8u128 << 96) | u128::from(n))
}

/// Writes one log from cumulative epoch contents; returns, per epoch
/// 0..=N, the `(content_checksum, entry_count)` that was published.
fn write_log(dir: &std::path::Path, weekly: &[Vec<(u128, u32)>]) -> Vec<(u64, usize)> {
    let cfg = StoreConfig::new(dir).checkpoint_every(0).with_fsync(false);
    let mut log = EpochLog::create(cfg, "torn", 1).expect("create");
    let mut published = vec![(0u64, 0usize)]; // epoch 0: empty store
    let mut content: BTreeMap<u128, u32> = BTreeMap::new();
    for (i, adds) in weekly.iter().enumerate() {
        for &(b, w) in adds {
            let e = content.entry(b).or_insert(w);
            *e = (*e).min(w);
        }
        let entries: Vec<(u128, u32)> = content.iter().map(|(&b, &w)| (b, w)).collect();
        let epoch = (i + 1) as u64;
        let checksum = v6netsim::rng::hash64(epoch, b"torn-tail-checksum");
        log.append(EpochView {
            epoch,
            week: epoch,
            content_checksum: checksum,
            missing_shards: &[],
            entries: &entries,
            aliases: &[],
        })
        .expect("append");
        published.push((checksum, entries.len()));
    }
    published
}

/// Asserts the recovered state is exactly some previously published
/// epoch — matching checksum *and* matching content size.
fn assert_previously_published(dir: &std::path::Path, published: &[(u64, usize)]) {
    let rec = recover(dir).expect("recovery must not fail on a torn/corrupt tail");
    let epoch = rec.state.epoch as usize;
    assert!(
        epoch < published.len(),
        "recovered epoch {epoch} was never published"
    );
    let (checksum, len) = published[epoch];
    assert_eq!(
        rec.state.content_checksum, checksum,
        "epoch {epoch} recovered with a checksum that was never published"
    );
    assert_eq!(
        rec.state.entries.len(),
        len,
        "epoch {epoch} recovered with the wrong content"
    );
    assert_eq!(rec.report.recovered_epoch, rec.state.epoch);
}

proptest! {
    #[test]
    fn truncation_at_every_offset_recovers_a_published_epoch(
        weekly in prop::collection::vec(
            prop::collection::vec((bits(), 0u32..4), 1..10),
            1..5,
        ),
    ) {
        let dir = v6store::scratch_dir("torn-prop");
        let published = write_log(&dir, &weekly);
        let full = fs::read(dir.join(v6store::LOG_FILE)).unwrap();

        for cut in 0..=full.len() {
            fs::write(dir.join(v6store::LOG_FILE), &full[..cut]).unwrap();
            assert_previously_published(&dir, &published);
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn arbitrary_bit_flips_recover_a_published_epoch(
        weekly in prop::collection::vec(
            prop::collection::vec((bits(), 0u32..4), 1..10),
            1..5,
        ),
        flips in prop::collection::vec((any::<u64>(), 0u8..8), 1..6),
    ) {
        let dir = v6store::scratch_dir("rot-prop");
        let published = write_log(&dir, &weekly);
        let full = fs::read(dir.join(v6store::LOG_FILE)).unwrap();

        for &(pos, bit) in &flips {
            let mut rotten = full.clone();
            let idx = (pos % rotten.len() as u64) as usize;
            rotten[idx] ^= 1 << bit;
            fs::write(dir.join(v6store::LOG_FILE), &rotten).unwrap();
            assert_previously_published(&dir, &published);
        }
        fs::remove_dir_all(dir).ok();
    }
}
