//! v6store: durable epoch storage for the hitlist service.
//!
//! The serving layer ([`v6serve`]) holds every epoch in RAM; this crate
//! makes those epochs survive a restart. The design is the classic
//! write-ahead pair:
//!
//! - an **append-only epoch delta log** (`epochs.v6log`): every
//!   published epoch appends one checksummed frame holding the diff
//!   from the previous epoch, fsynced *before* the epoch becomes
//!   visible to readers;
//! - periodic **compacted checkpoints** (`checkpoint-<epoch>.v6ck`):
//!   the full state written atomically (temp file + rename), after
//!   which the log resets so replay cost and disk usage stay bounded.
//!
//! Startup recovery ([`recover()`]) loads the newest parseable checkpoint
//! and replays the log tail, with explicit truncate-and-report handling
//! for the two corruption classes a crash can leave behind: a **torn
//! tail** (incomplete final frame — truncated) and **bit rot** (a
//! complete frame whose FNV checksum fails — quarantined, and replay
//! stops so the recovered state always equals some previously published
//! epoch). The on-disk layout is versioned and pinned by golden-file
//! tests; see [`mod@format`] and DESIGN.md §11.
//!
//! The write path is instrumented with [`v6obs`] (`store.log.*`,
//! `store.recover.*`) and threaded with [`v6chaos`] fault sites
//! (`store.append.*`, `store.bitrot.*`, `store.checkpoint.*`) so crash
//! recovery is exercised deterministically in tests and CI rather than
//! hoped-for in production.
//!
//! ```
//! use v6store::{recover, EpochLog, EpochView, StoreConfig};
//!
//! let dir = v6store::scratch_dir("doc");
//! let cfg = StoreConfig::new(&dir).with_fsync(false);
//! let mut log = EpochLog::create(cfg, "doc-service", 2).unwrap();
//! log.append(EpochView {
//!     epoch: 1,
//!     week: 0,
//!     content_checksum: 0xfeed,
//!     missing_shards: &[],
//!     entries: &[(42, 0)],
//!     aliases: &[],
//! })
//! .unwrap();
//! drop(log); // "crash"
//!
//! let rec = recover(&dir).unwrap();
//! assert_eq!(rec.state.epoch, 1);
//! assert_eq!(rec.state.content_checksum, 0xfeed);
//! std::fs::remove_dir_all(dir).ok();
//! ```
//!
//! [`v6serve`]: ../v6serve/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod log;
pub mod recover;
pub mod replica;
pub mod tail;

pub use format::{AliasEntry, FORMAT_VERSION, MAGIC};
pub use log::DeltaRecord;
pub use log::{
    checkpoint_file, data_dir_from_env, parse_checkpoint_name, scratch_dir, AppendReceipt,
    EpochLog, EpochState, EpochView, StoreConfig, LOG_FILE,
};
pub use recover::{recover, recover_at, recover_with, RecoverError, Recovery, RecoveryReport};
pub use tail::{LogTailer, TailReport};
