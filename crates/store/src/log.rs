//! The write-ahead epoch log: append-only deltas plus compacted
//! checkpoints.
//!
//! A store directory contains one append-only log (`epochs.v6log`) and
//! zero or more checkpoint files (`checkpoint-<epoch>.v6ck`). Every
//! published epoch appends one delta frame — the difference between the
//! previous epoch's content and the new one — and is fsynced before the
//! caller may make the epoch visible (write-ahead ordering). Every
//! `checkpoint_interval` epochs the full state is compacted into a new
//! checkpoint file (written to a temp name, fsynced, renamed) and the
//! log is reset to its empty prelude, bounding replay work and disk
//! growth; `retain_checkpoints` older checkpoints are kept as fallbacks
//! against a corrupt newest checkpoint.
//!
//! # Fault injection
//!
//! The write path consults a [`v6chaos::Chaos`] source at three sites
//! per epoch, making crash-recovery testing deterministic:
//!
//! | site                      | fault decision → effect                          |
//! |---------------------------|--------------------------------------------------|
//! | `store.append.<epoch>`    | `Error` → torn write (frame cut mid-way, append fails); `Panic` → partial flush (frame written, tail page lost, append fails); `Stall` → delayed append |
//! | `store.bitrot.<epoch>`    | any failure → one bit of the written frame flips *silently*; the append still succeeds |
//! | `store.checkpoint.<epoch>`| any failure → the checkpoint file is written torn and the log is *not* reset; the append still succeeds |
//!
//! A failed append leaves the torn bytes on disk (that is the crash
//! being simulated); the next append first truncates back to the last
//! good offset, so a process that survives a write error self-heals.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use v6chaos::{Chaos, Fault, NoChaos};
use v6netsim::rng::hash64;
use v6obs::{Counter, Histogram, Registry};

use crate::format::{
    self, AliasEntry, Dec, Enc, FrameOutcome, HEADER_LEN, KIND_CHECKPOINT, KIND_LOG,
    TAG_CHECKPOINT, TAG_DELTA, TAG_META,
};

/// File name of the append-only epoch delta log inside a store directory.
pub const LOG_FILE: &str = "epochs.v6log";

/// Checkpoint file name for an epoch.
pub fn checkpoint_file(epoch: u64) -> String {
    format!("checkpoint-{epoch:020}.v6ck")
}

/// Parses the epoch out of a checkpoint file name.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".v6ck")?
        .parse()
        .ok()
}

/// The store directory, honoring a `V6_DATA_DIR` environment override.
///
/// Returns `default` when the variable is unset or empty.
pub fn data_dir_from_env(default: impl Into<PathBuf>) -> PathBuf {
    match std::env::var("V6_DATA_DIR") {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => default.into(),
    }
}

/// A fresh, unique scratch directory under the system temp dir — shared
/// by the tests and benches, which have no tempdir dependency.
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("v6store-{tag}-{}-{n}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Durability and compaction knobs for a store directory.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// The store directory (created on demand).
    pub dir: PathBuf,
    /// Epochs between checkpoint compactions (0 = never checkpoint).
    pub checkpoint_interval: u64,
    /// Checkpoint files kept on disk (the newest plus fallbacks); ≥ 1.
    pub retain_checkpoints: usize,
    /// fsync the log after every append and each checkpoint write.
    /// Disable only for benchmarks and tests where torn-tail coverage
    /// comes from injection rather than real crashes.
    pub fsync: bool,
}

impl StoreConfig {
    /// The default configuration for `dir`: checkpoint every 8 epochs,
    /// retain 2 checkpoints, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            checkpoint_interval: 8,
            retain_checkpoints: 2,
            fsync: true,
        }
    }

    /// The same configuration with a different checkpoint interval.
    pub fn checkpoint_every(mut self, epochs: u64) -> Self {
        self.checkpoint_interval = epochs;
        self
    }

    /// The same configuration with fsync toggled.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Path of the epoch delta log.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(LOG_FILE)
    }
}

/// One epoch's full content, as retained by the log writer and as
/// reconstructed by recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochState {
    /// Service name the store was created under.
    pub name: String,
    /// `log2(shard count)` of the owning store.
    pub shard_bits: u32,
    /// The epoch this state reflects (0 = nothing published yet).
    pub epoch: u64,
    /// Latest study week included.
    pub week: u64,
    /// The caller-supplied content checksum of this epoch (opaque to
    /// the store; the serving layer uses `Snapshot::content_checksum`).
    pub content_checksum: u64,
    /// Sorted shard indices serving stale (quarantined) content.
    pub missing_shards: Vec<u32>,
    /// All `(bits, first week)` entries, sorted ascending by bits.
    pub entries: Vec<(u128, u32)>,
    /// All alias registrations, sorted ascending by `(bits, len)`.
    pub aliases: Vec<AliasEntry>,
}

/// A borrowed view of one epoch to append: the full content, from which
/// the log computes and persists only the delta.
#[derive(Debug, Clone, Copy)]
pub struct EpochView<'a> {
    /// Epoch number; must be greater than the last appended epoch.
    pub epoch: u64,
    /// Latest study week included.
    pub week: u64,
    /// Content checksum the serving layer computed for this epoch.
    pub content_checksum: u64,
    /// Sorted shard indices serving stale content.
    pub missing_shards: &'a [u32],
    /// Full `(bits, first week)` content, sorted ascending by bits.
    pub entries: &'a [(u128, u32)],
    /// Full alias registrations, sorted ascending by `(bits, len)`.
    pub aliases: &'a [AliasEntry],
}

/// What one append persisted.
#[derive(Debug, Clone, Copy)]
pub struct AppendReceipt {
    /// The appended epoch.
    pub epoch: u64,
    /// On-disk frame size, bytes.
    pub frame_bytes: u64,
    /// Entries added or week-changed relative to the previous epoch.
    pub delta_added: usize,
    /// Entries removed relative to the previous epoch.
    pub delta_removed: usize,
    /// True when this append also compacted a checkpoint.
    pub checkpointed: bool,
    /// Wall time of the append (including fsync and any checkpoint).
    pub wall: Duration,
}

struct LogMetrics {
    appends: Counter,
    fsyncs: Counter,
    bytes: Counter,
    checkpoints: Counter,
    checkpoint_failures: Counter,
    append_latency: Histogram,
}

impl LogMetrics {
    fn from_registry(registry: &Registry) -> Self {
        LogMetrics {
            appends: registry.counter("store.log.appends"),
            fsyncs: registry.counter("store.log.fsyncs"),
            bytes: registry.counter("store.log.bytes"),
            checkpoints: registry.counter("store.log.checkpoints"),
            checkpoint_failures: registry.counter("store.log.checkpoint_failures"),
            append_latency: registry.histogram("store.log.append_latency"),
        }
    }
}

/// The open write-ahead epoch log for one store directory.
pub struct EpochLog {
    cfg: StoreConfig,
    file: File,
    /// Offset up to which the log is known good (frames fully written).
    good_len: u64,
    /// Length of the header + meta prelude an empty log consists of.
    prelude_len: u64,
    /// True after a failed append left torn bytes past `good_len`.
    dirty: bool,
    state: EpochState,
    last_checkpoint_epoch: u64,
    chaos: Arc<dyn Chaos>,
    metrics: LogMetrics,
}

impl std::fmt::Debug for EpochLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochLog")
            .field("dir", &self.cfg.dir)
            .field("epoch", &self.state.epoch)
            .field("good_len", &self.good_len)
            .field("dirty", &self.dirty)
            .finish()
    }
}

fn meta_payload(name: &str, shard_bits: u32) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(TAG_META);
    e.name(name);
    e.u32(shard_bits);
    e.into_bytes()
}

#[allow(clippy::too_many_arguments)] // one arg per delta-record field
pub(crate) fn delta_payload(
    epoch: u64,
    week: u64,
    checksum: u64,
    missing: &[u32],
    removed: &[u128],
    added: &[(u128, u32)],
    removed_aliases: &[(u128, u8)],
    added_aliases: &[AliasEntry],
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(TAG_DELTA);
    e.u64(epoch);
    e.u64(week);
    e.u64(checksum);
    e.shards(missing);
    e.removed(removed);
    e.entries(added);
    e.removed_aliases(removed_aliases);
    e.aliases(added_aliases);
    e.into_bytes()
}

pub(crate) fn checkpoint_payload(state: &EpochState) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(TAG_CHECKPOINT);
    e.name(&state.name);
    e.u32(state.shard_bits);
    e.u64(state.epoch);
    e.u64(state.week);
    e.u64(state.content_checksum);
    e.shards(&state.missing_shards);
    e.entries(&state.entries);
    e.aliases(&state.aliases);
    e.into_bytes()
}

/// Decodes a checkpoint payload (after the tag byte has been matched).
pub(crate) fn decode_checkpoint(payload: &[u8]) -> Option<EpochState> {
    let mut d = Dec::new(payload);
    if d.u8()? != TAG_CHECKPOINT {
        return None;
    }
    let state = EpochState {
        name: d.name()?,
        shard_bits: d.u32()?,
        epoch: d.u64()?,
        week: d.u64()?,
        content_checksum: d.u64()?,
        missing_shards: d.shards()?,
        entries: d.entries()?,
        aliases: d.aliases()?,
    };
    d.is_exhausted().then_some(state)
}

/// One epoch's diff from its predecessor — the unit the log persists
/// and (since ROADMAP item 4) the unit replicated node-to-node. See
/// [`crate::replica`] for the public replication API around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRecord {
    /// The epoch this delta produces when applied.
    pub epoch: u64,
    /// Latest study week included in the produced epoch.
    pub week: u64,
    /// Content checksum of the produced epoch.
    pub content_checksum: u64,
    /// Sorted shard indices serving stale content in the produced epoch.
    pub missing_shards: Vec<u32>,
    /// Address bits removed since the previous epoch, sorted ascending.
    pub removed: Vec<u128>,
    /// Entries added or week-changed since the previous epoch, sorted.
    pub added: Vec<(u128, u32)>,
    /// Alias keys `(bits, len)` removed since the previous epoch.
    pub removed_aliases: Vec<(u128, u8)>,
    /// Alias registrations added or week-changed, sorted.
    pub added_aliases: Vec<AliasEntry>,
}

pub(crate) fn decode_delta(payload: &[u8]) -> Option<DeltaRecord> {
    let mut d = Dec::new(payload);
    if d.u8()? != TAG_DELTA {
        return None;
    }
    let record = DeltaRecord {
        epoch: d.u64()?,
        week: d.u64()?,
        content_checksum: d.u64()?,
        missing_shards: d.shards()?,
        removed: d.removed()?,
        added: d.entries()?,
        removed_aliases: d.removed_aliases()?,
        added_aliases: d.aliases()?,
    };
    d.is_exhausted().then_some(record)
}

pub(crate) fn decode_meta(payload: &[u8]) -> Option<(String, u32)> {
    let mut d = Dec::new(payload);
    if d.u8()? != TAG_META {
        return None;
    }
    let name = d.name()?;
    let shard_bits = d.u32()?;
    d.is_exhausted().then_some((name, shard_bits))
}

/// Applies a delta record to a state in place (remove, then upsert).
pub(crate) fn apply_delta(state: &mut EpochState, record: &DeltaRecord) {
    state.epoch = record.epoch;
    state.week = record.week;
    state.content_checksum = record.content_checksum;
    state.missing_shards = record.missing_shards.clone();
    if !record.removed.is_empty() {
        let mut r = record.removed.iter().peekable();
        state.entries.retain(|&(bits, _)| {
            while let Some(&&next) = r.peek() {
                if next < bits {
                    r.next();
                } else {
                    break;
                }
            }
            r.peek() != Some(&&bits)
        });
    }
    if !record.added.is_empty() {
        let old = std::mem::take(&mut state.entries);
        state.entries = merge_upsert(&old, &record.added);
    }
    if !record.removed_aliases.is_empty() {
        let keys: &[(u128, u8)] = &record.removed_aliases;
        state
            .aliases
            .retain(|a| keys.binary_search(&(a.bits, a.len)).is_err());
    }
    if !record.added_aliases.is_empty() {
        let old = std::mem::take(&mut state.aliases);
        let mut out = Vec::with_capacity(old.len() + record.added_aliases.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() && j < record.added_aliases.len() {
            let a = old[i];
            let b = record.added_aliases[j];
            match (a.bits, a.len).cmp(&(b.bits, b.len)) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(b); // the delta's week wins
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&old[i..]);
        out.extend_from_slice(&record.added_aliases[j..]);
        state.aliases = out;
    }
}

/// Sorted merge of `old` and `upserts`, with `upserts` winning on equal
/// bits.
fn merge_upsert(old: &[(u128, u32)], upserts: &[(u128, u32)]) -> Vec<(u128, u32)> {
    let mut out = Vec::with_capacity(old.len() + upserts.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < upserts.len() {
        match old[i].0.cmp(&upserts[j].0) {
            std::cmp::Ordering::Less => {
                out.push(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(upserts[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(upserts[j]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&old[i..]);
    out.extend_from_slice(&upserts[j..]);
    out
}

/// The delta between two sorted entry sets.
pub(crate) fn diff_entries(
    old: &[(u128, u32)],
    new: &[(u128, u32)],
) -> (Vec<u128>, Vec<(u128, u32)>) {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        match old[i].0.cmp(&new[j].0) {
            std::cmp::Ordering::Less => {
                removed.push(old[i].0);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if old[i].1 != new[j].1 {
                    added.push(new[j]); // week changed: upsert
                }
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(old[i..].iter().map(|&(b, _)| b));
    added.extend_from_slice(&new[j..]);
    (removed, added)
}

/// The delta between two sorted alias sets.
pub(crate) fn diff_aliases(
    old: &[AliasEntry],
    new: &[AliasEntry],
) -> (Vec<(u128, u8)>, Vec<AliasEntry>) {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        let a = old[i];
        let b = new[j];
        match (a.bits, a.len).cmp(&(b.bits, b.len)) {
            std::cmp::Ordering::Less => {
                removed.push((a.bits, a.len));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(b);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if a.week != b.week {
                    added.push(b);
                }
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(old[i..].iter().map(|a| (a.bits, a.len)));
    added.extend_from_slice(&new[j..]);
    (removed, added)
}

impl EpochLog {
    /// Creates a fresh store in `cfg.dir`, wiping any existing store
    /// files, and fsyncs the empty log prelude so a crash immediately
    /// after creation recovers to an empty epoch-0 store.
    pub fn create(cfg: StoreConfig, name: &str, shard_bits: u32) -> io::Result<Self> {
        Self::create_with(cfg, name, shard_bits, v6obs::global(), Arc::new(NoChaos))
    }

    /// [`EpochLog::create`] recording metrics into `registry` and
    /// consulting `chaos` at the write-path fault sites.
    pub fn create_with(
        cfg: StoreConfig,
        name: &str,
        shard_bits: u32,
        registry: &Registry,
        chaos: Arc<dyn Chaos>,
    ) -> io::Result<Self> {
        assert!(cfg.retain_checkpoints >= 1, "must retain >= 1 checkpoint");
        fs::create_dir_all(&cfg.dir)?;
        // Wipe previous store files so "create" always means fresh.
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname == LOG_FILE || parse_checkpoint_name(&fname).is_some() {
                fs::remove_file(entry.path())?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(cfg.log_path())?;
        let mut prelude = format::header(KIND_LOG);
        prelude.extend_from_slice(&format::frame(&meta_payload(name, shard_bits)));
        file.write_all(&prelude)?;
        if cfg.fsync {
            file.sync_data()?;
        }
        let prelude_len = prelude.len() as u64;
        Ok(EpochLog {
            metrics: LogMetrics::from_registry(registry),
            cfg,
            file,
            good_len: prelude_len,
            prelude_len,
            dirty: false,
            state: EpochState {
                name: name.to_string(),
                shard_bits,
                ..EpochState::default()
            },
            last_checkpoint_epoch: 0,
            chaos,
        })
    }

    /// Reopens the log of a recovered store for appending, truncating
    /// any torn or quarantined tail past the last valid frame (the
    /// truncate half of truncate-and-report; the report half is the
    /// [`crate::RecoveryReport`] recovery produced).
    pub fn resume(
        cfg: StoreConfig,
        state: EpochState,
        report: &crate::RecoveryReport,
        registry: &Registry,
        chaos: Arc<dyn Chaos>,
    ) -> io::Result<Self> {
        assert!(cfg.retain_checkpoints >= 1, "must retain >= 1 checkpoint");
        let prelude_len =
            (HEADER_LEN + 4 + meta_payload(&state.name, state.shard_bits).len() + 8) as u64;
        let path = cfg.log_path();
        let needs_prelude = report.log_good_len < prelude_len || !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(needs_prelude)
            .open(&path)?;
        let good_len = if needs_prelude {
            let mut prelude = format::header(KIND_LOG);
            prelude.extend_from_slice(&format::frame(&meta_payload(&state.name, state.shard_bits)));
            file.write_all(&prelude)?;
            prelude.len() as u64
        } else {
            file.set_len(report.log_good_len)?;
            report.log_good_len
        };
        if cfg.fsync {
            file.sync_data()?;
        }
        Ok(EpochLog {
            metrics: LogMetrics::from_registry(registry),
            cfg,
            file,
            good_len,
            prelude_len,
            dirty: false,
            last_checkpoint_epoch: report.checkpoint_epoch.unwrap_or(0),
            state,
            chaos,
        })
    }

    /// The epoch of the last successfully appended frame.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// The full content state the log believes is durable.
    pub fn state(&self) -> &EpochState {
        &self.state
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Appends one epoch. The frame is durable (fsynced, when enabled)
    /// before this returns `Ok` — the write-ahead contract: a caller
    /// must not make the epoch visible to readers until then.
    ///
    /// An `Err` means the epoch is NOT durable and must not be made
    /// visible; the file may hold a torn frame (exactly what a crash
    /// would leave), which the next append truncates away.
    pub fn append(&mut self, view: EpochView<'_>) -> io::Result<AppendReceipt> {
        let started = Instant::now();
        if view.epoch <= self.state.epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "epoch {} not after last appended epoch {}",
                    view.epoch, self.state.epoch
                ),
            ));
        }
        if self.dirty {
            // Self-heal after a prior failed append: drop the torn tail.
            self.file.set_len(self.good_len)?;
            if self.cfg.fsync {
                self.file.sync_data()?;
                self.metrics.fsyncs.inc();
            }
            self.dirty = false;
        }

        let (removed, added) = diff_entries(&self.state.entries, view.entries);
        let (removed_aliases, added_aliases) = diff_aliases(&self.state.aliases, view.aliases);
        let payload = delta_payload(
            view.epoch,
            view.week,
            view.content_checksum,
            view.missing_shards,
            &removed,
            &added,
            &removed_aliases,
            &added_aliases,
        );
        let frame = format::frame(&payload);

        self.file.seek(SeekFrom::Start(self.good_len))?;
        match self
            .chaos
            .decide(&format!("store.append.{}", view.epoch), 0)
        {
            Fault::None => self.file.write_all(&frame)?,
            Fault::Stall(d) => {
                std::thread::sleep(d);
                self.file.write_all(&frame)?;
            }
            Fault::Error => {
                // Torn write: the process "crashed" mid-frame. Cut at a
                // deterministic offset so replays reproduce the tear.
                let cut = 1 + (hash64(view.epoch, b"store.torn") % (frame.len() as u64 - 1));
                self.file.write_all(&frame[..cut as usize])?;
                self.file.sync_data().ok();
                self.dirty = true;
                return Err(io::Error::other(format!(
                    "injected torn write (store.append.{}, {} of {} bytes)",
                    view.epoch,
                    cut,
                    frame.len()
                )));
            }
            Fault::Panic => {
                // Partial flush: the frame was written but the final
                // page never reached disk.
                let lost =
                    1 + (hash64(view.epoch, b"store.flush") % (frame.len() as u64 - 1).min(64));
                self.file.write_all(&frame)?;
                self.file
                    .set_len(self.good_len + frame.len() as u64 - lost)?;
                self.file.sync_data().ok();
                self.dirty = true;
                return Err(io::Error::other(format!(
                    "injected partial flush (store.append.{}, lost {lost} tail bytes)",
                    view.epoch
                )));
            }
        }
        if self.chaos.fails(&format!("store.bitrot.{}", view.epoch), 0) {
            // Silent media corruption: flip one payload bit in place.
            // The append still "succeeds" — only recovery notices.
            let h = hash64(view.epoch, b"store.bitrot");
            let offset = self.good_len + 4 + (h % payload.len() as u64);
            let bit = 1u8 << ((h >> 32) % 8);
            let mut byte = [0u8; 1];
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(&mut byte)?;
            byte[0] ^= bit;
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(&byte)?;
        }
        if self.cfg.fsync {
            self.file.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        self.good_len += frame.len() as u64;
        self.metrics.appends.inc();
        self.metrics.bytes.add(frame.len() as u64);

        self.state.epoch = view.epoch;
        self.state.week = view.week;
        self.state.content_checksum = view.content_checksum;
        self.state.missing_shards = view.missing_shards.to_vec();
        self.state.entries = view.entries.to_vec();
        self.state.aliases = view.aliases.to_vec();

        let mut checkpointed = false;
        if self.cfg.checkpoint_interval > 0
            && view.epoch - self.last_checkpoint_epoch >= self.cfg.checkpoint_interval
        {
            checkpointed = self.checkpoint()?;
        }
        let wall = started.elapsed();
        self.metrics.append_latency.record_duration(wall);
        Ok(AppendReceipt {
            epoch: view.epoch,
            frame_bytes: frame.len() as u64,
            delta_added: added.len(),
            delta_removed: removed.len(),
            checkpointed,
            wall,
        })
    }

    /// Compacts the current state into a checkpoint file and resets the
    /// log to its empty prelude. Returns false when the checkpoint write
    /// was faulted (the log is left intact — nothing is lost, the next
    /// interval retries).
    fn checkpoint(&mut self) -> io::Result<bool> {
        let epoch = self.state.epoch;
        let mut bytes = format::header(KIND_CHECKPOINT);
        bytes.extend_from_slice(&format::frame(&checkpoint_payload(&self.state)));
        let final_path = self.cfg.dir.join(checkpoint_file(epoch));

        if self.chaos.fails(&format!("store.checkpoint.{epoch}"), 0) {
            // Torn checkpoint: the file appears but is incomplete. The
            // log is NOT reset, so no data is lost — recovery skips the
            // corrupt checkpoint and replays the intact log.
            let cut = HEADER_LEN as u64
                + 1
                + (hash64(epoch, b"store.ckpt") % (bytes.len() - HEADER_LEN - 1).max(1) as u64);
            fs::write(&final_path, &bytes[..cut as usize])?;
            self.metrics.checkpoint_failures.inc();
            return Ok(false);
        }

        let tmp_path = self.cfg.dir.join(format!("{}.tmp", checkpoint_file(epoch)));
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&bytes)?;
            if self.cfg.fsync {
                tmp.sync_data()?;
                self.metrics.fsyncs.inc();
            }
        }
        fs::rename(&tmp_path, &final_path)?;
        if self.cfg.fsync {
            if let Ok(dir) = File::open(&self.cfg.dir) {
                dir.sync_all().ok();
            }
        }
        // The checkpoint covers every logged delta: reset the log to its
        // prelude so replay length stays bounded.
        self.file.set_len(self.prelude_len)?;
        if self.cfg.fsync {
            self.file.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        self.good_len = self.prelude_len;
        self.last_checkpoint_epoch = epoch;
        self.metrics.checkpoints.inc();

        // Retention: keep the newest `retain_checkpoints`, drop the rest.
        let mut checkpoints: Vec<(u64, PathBuf)> = fs::read_dir(&self.cfg.dir)?
            .filter_map(|e| {
                let e = e.ok()?;
                let name = e.file_name();
                let epoch = parse_checkpoint_name(&name.to_string_lossy())?;
                Some((epoch, e.path()))
            })
            .collect();
        checkpoints.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (_, path) in checkpoints.into_iter().skip(self.cfg.retain_checkpoints) {
            fs::remove_file(path).ok();
        }
        Ok(true)
    }
}

/// Scans the frames region of a checkpoint file into a state, if valid.
pub(crate) fn parse_checkpoint_bytes(bytes: &[u8]) -> Option<EpochState> {
    if format::parse_header(bytes) != Some(KIND_CHECKPOINT) {
        return None;
    }
    match format::read_frame(&bytes[HEADER_LEN..]) {
        FrameOutcome::Valid { payload, .. } => decode_checkpoint(payload),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        epoch: u64,
        entries: &'a [(u128, u32)],
        aliases: &'a [AliasEntry],
    ) -> EpochView<'a> {
        EpochView {
            epoch,
            week: epoch,
            content_checksum: epoch * 1000,
            missing_shards: &[],
            entries,
            aliases,
        }
    }

    #[test]
    fn diff_and_apply_round_trip() {
        let old = vec![(1u128, 0u32), (5, 2), (9, 1)];
        let new = vec![(1, 0), (5, 1), (7, 3)];
        let (removed, added) = diff_entries(&old, &new);
        assert_eq!(removed, vec![9]);
        assert_eq!(added, vec![(5, 1), (7, 3)]);
        let mut state = EpochState {
            entries: old,
            ..EpochState::default()
        };
        let record = DeltaRecord {
            epoch: 2,
            week: 2,
            content_checksum: 42,
            missing_shards: vec![1],
            removed,
            added,
            removed_aliases: vec![],
            added_aliases: vec![],
        };
        apply_delta(&mut state, &record);
        assert_eq!(state.entries, new);
        assert_eq!(state.epoch, 2);
        assert_eq!(state.missing_shards, vec![1]);
    }

    #[test]
    fn alias_diff_and_apply() {
        let a = |bits: u128, len: u8, week: u32| AliasEntry { bits, len, week };
        let old = vec![a(1, 48, 0), a(2, 32, 1)];
        let new = vec![a(1, 48, 0), a(3, 48, 2)];
        let (removed, added) = diff_aliases(&old, &new);
        assert_eq!(removed, vec![(2, 32)]);
        assert_eq!(added, vec![a(3, 48, 2)]);
        let mut state = EpochState {
            aliases: old,
            ..EpochState::default()
        };
        let record = DeltaRecord {
            epoch: 1,
            week: 0,
            content_checksum: 0,
            missing_shards: vec![],
            removed: vec![],
            added: vec![],
            removed_aliases: removed,
            added_aliases: added,
        };
        apply_delta(&mut state, &record);
        assert_eq!(state.aliases, new);
    }

    #[test]
    fn create_append_retains_state() {
        let dir = scratch_dir("log-basic");
        let cfg = StoreConfig::new(&dir).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 2).unwrap();
        let entries = vec![(10u128, 0u32), (20, 1)];
        let receipt = log.append(view(1, &entries, &[])).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.delta_added, 2);
        assert_eq!(receipt.delta_removed, 0);
        assert!(!receipt.checkpointed);
        assert_eq!(log.epoch(), 1);
        assert_eq!(log.state().entries, entries);

        // Stale epochs are rejected.
        assert!(log.append(view(1, &entries, &[])).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_resets_log_and_retains() {
        let dir = scratch_dir("log-ckpt");
        let cfg = StoreConfig::new(&dir).checkpoint_every(2).with_fsync(false);
        let mut log = EpochLog::create(cfg.clone(), "svc", 0).unwrap();
        let mut entries: Vec<(u128, u32)> = Vec::new();
        let mut reset_len = None;
        for e in 1..=6u64 {
            entries.push((u128::from(e) << 16, e as u32));
            let receipt = log.append(view(e, &entries, &[])).unwrap();
            assert_eq!(receipt.checkpointed, e % 2 == 0, "epoch {e}");
            if e == 2 {
                reset_len = Some(std::fs::metadata(cfg.log_path()).unwrap().len());
            }
        }
        // After the epoch-6 checkpoint the log is back at its prelude.
        assert_eq!(
            std::fs::metadata(cfg.log_path()).unwrap().len(),
            reset_len.unwrap()
        );
        // Retention keeps 2: epochs 4 and 6.
        let mut found: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_checkpoint_name(&e.unwrap().file_name().to_string_lossy()))
            .collect();
        found.sort_unstable();
        assert_eq!(found, vec![4, 6]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_names_round_trip() {
        assert_eq!(parse_checkpoint_name(&checkpoint_file(17)), Some(17),);
        assert_eq!(parse_checkpoint_name("epochs.v6log"), None);
        assert_eq!(parse_checkpoint_name("checkpoint-x.v6ck"), None);
    }

    #[test]
    fn data_dir_env_default() {
        // V6_DATA_DIR unset in tests: the default wins.
        assert_eq!(
            data_dir_from_env("/tmp/fallback"),
            PathBuf::from("/tmp/fallback")
        );
    }
}
