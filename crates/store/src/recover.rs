//! Startup recovery: rebuild the last durable epoch from a store
//! directory.
//!
//! Recovery is **read-only** — it never modifies the directory, so it
//! can be run repeatedly (and used for time-travel inspection via
//! [`recover_at`]) without destroying forensic state. The physical
//! truncation of a torn or quarantined log tail happens only when the
//! store is reopened for writing ([`crate::EpochLog::resume`]), using
//! the `log_good_len` this module reports.
//!
//! # Algorithm
//!
//! 1. List `checkpoint-*.v6ck` files, newest epoch first. The first one
//!    that parses (header, frame checksum, payload decode) becomes the
//!    base state; corrupt ones are counted and skipped — an older
//!    checkpoint plus the intact log is always a consistent fallback.
//!    With no usable checkpoint the base is the empty epoch-0 state.
//! 2. Validate the log header and meta frame, then replay delta frames
//!    in order. Deltas at or below the base epoch are skipped (they are
//!    already compacted into the checkpoint); later deltas apply
//!    remove-then-upsert.
//! 3. Stop at the first bad frame. An incomplete frame is a **torn
//!    tail** (interrupted write): everything past the last valid frame
//!    is reported for truncation. A complete frame with a checksum
//!    mismatch is **bit rot**: the frame is quarantined and replay
//!    stops there too — deltas after a lost delta cannot be applied
//!    soundly, so the recovered state is always *some previously
//!    published epoch*, never a gap-jumping invention.

use std::fmt;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

use v6obs::Registry;

use crate::format::{self, FrameOutcome, HEADER_LEN, KIND_LOG};
use crate::log::{
    apply_delta, decode_delta, decode_meta, parse_checkpoint_bytes, parse_checkpoint_name,
    EpochState, LOG_FILE,
};

/// Truncate-and-report: what recovery found and what reopening the log
/// for writing will physically drop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint used as the replay base, if any.
    pub checkpoint_epoch: Option<u64>,
    /// Newer checkpoint files that failed validation and were skipped.
    pub corrupt_checkpoints: u32,
    /// Delta frames applied on top of the base state.
    pub replayed: u64,
    /// Valid delta frames skipped (already compacted into the base, or
    /// past a [`recover_at`] target epoch).
    pub skipped: u64,
    /// Bytes past the last valid frame that reopening will truncate
    /// (torn tail and/or quarantined frames and anything after them).
    pub truncated_bytes: u64,
    /// Frames whose checksum failed (bit rot) — quarantined, not
    /// replayed; replay stops at the first one.
    pub quarantined: u32,
    /// Log offset up to which frames are valid; the reopen truncation
    /// point.
    pub log_good_len: u64,
    /// The epoch the recovered state reflects (0 = empty store).
    pub recovered_epoch: u64,
    /// Wall time recovery took.
    pub wall: Duration,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered epoch {} (ckpt {}, replayed {}, skipped {}, truncated {} B, quarantined {})",
            self.recovered_epoch,
            self.checkpoint_epoch
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            self.replayed,
            self.skipped,
            self.truncated_bytes,
            self.quarantined,
        )
    }
}

/// A recovered store: the reconstructed state plus the report.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The last durable epoch's full content.
    pub state: EpochState,
    /// What recovery found on the way.
    pub report: RecoveryReport,
}

/// Why a store directory could not be recovered.
#[derive(Debug)]
pub enum RecoverError {
    /// The directory holds neither a usable log nor any checkpoint.
    NoStore(std::path::PathBuf),
    /// Filesystem error while reading store files.
    Io(io::Error),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NoStore(dir) => {
                write!(f, "no v6store files in {}", dir.display())
            }
            RecoverError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// Recovers the newest durable epoch from `dir`, recording metrics into
/// the global registry.
pub fn recover(dir: &Path) -> Result<Recovery, RecoverError> {
    recover_with(dir, None, v6obs::global())
}

/// Time-travel recovery: reconstructs the state as of `epoch` (the
/// newest durable epoch ≤ `epoch`), provided a checkpoint at or below
/// it — or the un-compacted log — still covers it.
pub fn recover_at(dir: &Path, epoch: u64) -> Result<Recovery, RecoverError> {
    recover_with(dir, Some(epoch), v6obs::global())
}

/// [`recover`] with an optional target epoch and an explicit metrics
/// registry (`store.recover.*`).
pub fn recover_with(
    dir: &Path,
    up_to_epoch: Option<u64>,
    registry: &Registry,
) -> Result<Recovery, RecoverError> {
    let started = Instant::now();
    let target = up_to_epoch.unwrap_or(u64::MAX);
    let mut report = RecoveryReport::default();

    // 1. Newest parseable checkpoint at or below the target epoch.
    let mut checkpoints: Vec<(u64, std::path::PathBuf)> = std::fs::read_dir(dir)
        .map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                RecoverError::NoStore(dir.to_path_buf())
            } else {
                RecoverError::Io(e)
            }
        })?
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name();
            let epoch = parse_checkpoint_name(&name.to_string_lossy())?;
            (epoch <= target).then(|| (epoch, e.path()))
        })
        .collect();
    checkpoints.sort_by_key(|c| std::cmp::Reverse(c.0));
    let any_checkpoint = !checkpoints.is_empty();

    let mut state = EpochState::default();
    for (epoch, path) in checkpoints {
        match std::fs::read(&path) {
            Ok(bytes) => match parse_checkpoint_bytes(&bytes) {
                Some(parsed) => {
                    report.checkpoint_epoch = Some(epoch);
                    state = parsed;
                    break;
                }
                None => report.corrupt_checkpoints += 1,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(RecoverError::Io(e)),
        }
    }

    // 2. Replay the log tail on top.
    let log_path = dir.join(LOG_FILE);
    let log_bytes = match std::fs::read(&log_path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            if !any_checkpoint {
                return Err(RecoverError::NoStore(dir.to_path_buf()));
            }
            Vec::new()
        }
        Err(e) => return Err(RecoverError::Io(e)),
    };
    if !log_bytes.is_empty() {
        replay_log(&log_bytes, target, &mut state, &mut report);
    }

    report.recovered_epoch = state.epoch;
    report.wall = started.elapsed();
    registry
        .counter("store.recover.replayed")
        .add(report.replayed);
    registry
        .counter("store.recover.truncated")
        .add(report.truncated_bytes);
    registry
        .counter("store.recover.quarantined")
        .add(u64::from(report.quarantined));
    registry
        .histogram("store.recover.latency")
        .record_duration(report.wall);
    Ok(Recovery { state, report })
}

/// Scans the log bytes, applying valid deltas at or below `target` and
/// filling in the truncate-and-report fields. Never panics on corrupt
/// input: every malformed byte pattern maps to truncation or
/// quarantine.
fn replay_log(bytes: &[u8], target: u64, state: &mut EpochState, report: &mut RecoveryReport) {
    let total = bytes.len() as u64;
    // A log whose header or meta frame is unusable contributes nothing;
    // reopening rewrites the prelude from scratch (good_len 0).
    let quarantine_all = |report: &mut RecoveryReport, rotten: bool| {
        report.log_good_len = 0;
        report.truncated_bytes = total;
        if rotten {
            report.quarantined += 1;
        }
    };
    if format::parse_header(bytes) != Some(KIND_LOG) {
        quarantine_all(report, false);
        return;
    }
    let mut pos = HEADER_LEN;
    match format::read_frame(&bytes[pos..]) {
        FrameOutcome::Valid { payload, consumed } => match decode_meta(payload) {
            Some((name, shard_bits)) => {
                if report.checkpoint_epoch.is_none() {
                    state.name = name;
                    state.shard_bits = shard_bits;
                }
                pos += consumed;
            }
            None => {
                quarantine_all(report, true);
                return;
            }
        },
        FrameOutcome::Torn => {
            quarantine_all(report, false);
            return;
        }
        FrameOutcome::BitRot { .. } => {
            quarantine_all(report, true);
            return;
        }
    }

    loop {
        if pos == bytes.len() {
            break; // clean end of log
        }
        match format::read_frame(&bytes[pos..]) {
            FrameOutcome::Valid { payload, consumed } => match decode_delta(payload) {
                Some(delta) => {
                    if delta.epoch <= state.epoch || delta.epoch > target {
                        report.skipped += 1;
                    } else {
                        apply_delta(state, &delta);
                        report.replayed += 1;
                    }
                    pos += consumed;
                }
                None => {
                    // Checksum held but the payload is not a delta:
                    // structurally corrupt. Quarantine and stop.
                    report.quarantined += 1;
                    break;
                }
            },
            FrameOutcome::Torn => break,
            FrameOutcome::BitRot { .. } => {
                report.quarantined += 1;
                break;
            }
        }
    }
    report.log_good_len = pos as u64;
    report.truncated_bytes = total - pos as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{scratch_dir, EpochLog, EpochView, StoreConfig};

    fn publish(log: &mut EpochLog, epoch: u64, entries: &[(u128, u32)]) {
        log.append(EpochView {
            epoch,
            week: epoch,
            content_checksum: epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            missing_shards: &[],
            entries,
            aliases: &[],
        })
        .unwrap();
    }

    #[test]
    fn recover_empty_dir_is_no_store() {
        let dir = scratch_dir("rec-empty");
        assert!(matches!(recover(&dir), Err(RecoverError::NoStore(_))));
        assert!(matches!(
            recover(Path::new("/nonexistent/v6store")),
            Err(RecoverError::NoStore(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_replays_log_exactly() {
        let dir = scratch_dir("rec-replay");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 3).unwrap();
        let mut entries: Vec<(u128, u32)> = Vec::new();
        for e in 1..=5u64 {
            entries.push((u128::from(e) << 24, e as u32));
            publish(&mut log, e, &entries);
        }
        let expected = log.state().clone();
        drop(log);

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.state, expected);
        assert_eq!(rec.report.replayed, 5);
        assert_eq!(rec.report.skipped, 0);
        assert_eq!(rec.report.truncated_bytes, 0);
        assert_eq!(rec.report.quarantined, 0);
        assert_eq!(rec.report.checkpoint_epoch, None);
        assert_eq!(rec.report.recovered_epoch, 5);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_uses_checkpoint_and_tail() {
        let dir = scratch_dir("rec-ckpt");
        let cfg = StoreConfig::new(&dir).checkpoint_every(3).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 2).unwrap();
        let mut entries: Vec<(u128, u32)> = Vec::new();
        for e in 1..=5u64 {
            entries.push((u128::from(e) << 24, e as u32));
            publish(&mut log, e, &entries);
        }
        let expected = log.state().clone();
        drop(log);

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.state, expected);
        assert_eq!(rec.report.checkpoint_epoch, Some(3));
        assert_eq!(rec.report.replayed, 2); // epochs 4, 5 from the log
        assert_eq!(rec.state.name, "svc");
        assert_eq!(rec.state.shard_bits, 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_at_time_travels() {
        let dir = scratch_dir("rec-at");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 0).unwrap();
        let mut checksums = vec![0u64]; // epoch 0 = empty
        let mut entries: Vec<(u128, u32)> = Vec::new();
        for e in 1..=6u64 {
            entries.push((u128::from(e), 0));
            publish(&mut log, e, &entries);
            checksums.push(log.state().content_checksum);
        }
        drop(log);
        for (epoch, &sum) in checksums.iter().enumerate() {
            let rec = recover_at(&dir, epoch as u64).unwrap();
            assert_eq!(rec.state.epoch, epoch as u64);
            assert_eq!(rec.state.content_checksum, sum, "epoch {epoch}");
            assert_eq!(rec.state.entries.len(), epoch);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_truncate_and_report() {
        let dir = scratch_dir("rec-torn");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg.clone(), "svc", 0).unwrap();
        publish(&mut log, 1, &[(7, 0)]);
        let good = log.state().clone();
        drop(log);
        // Simulate a crash mid-append: append 9 garbage bytes.
        let path = cfg.log_path();
        let full = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 9]);
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.state, good);
        assert_eq!(rec.report.truncated_bytes, 9);
        assert_eq!(rec.report.log_good_len, full);
        assert_eq!(rec.report.quarantined, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_rot_quarantines_and_stops() {
        let dir = scratch_dir("rec-rot");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg.clone(), "svc", 0).unwrap();
        publish(&mut log, 1, &[(7, 0)]);
        let len_after_1 = std::fs::metadata(cfg.log_path()).unwrap().len();
        let good = log.state().clone();
        publish(&mut log, 2, &[(7, 0), (9, 1)]);
        drop(log);
        // Flip a bit inside epoch 2's frame payload.
        let path = cfg.log_path();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = len_after_1 as usize + 10;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        // Replay stopped before the rotten epoch 2: state is epoch 1.
        assert_eq!(rec.state, good);
        assert_eq!(rec.report.quarantined, 1);
        assert_eq!(rec.report.log_good_len, len_after_1);
        assert_eq!(rec.report.truncated_bytes, bytes.len() as u64 - len_after_1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back() {
        let dir = scratch_dir("rec-fallback");
        let cfg = StoreConfig::new(&dir).checkpoint_every(2).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 0).unwrap();
        let mut entries: Vec<(u128, u32)> = Vec::new();
        for e in 1..=4u64 {
            entries.push((u128::from(e), 0));
            publish(&mut log, e, &entries);
        }
        drop(log);
        // Corrupt the newest checkpoint (epoch 4); epoch-2 remains, but
        // the post-4 log reset means only epoch 2 is recoverable.
        let newest = dir.join(crate::log::checkpoint_file(4));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.corrupt_checkpoints, 1);
        assert_eq!(rec.report.checkpoint_epoch, Some(2));
        assert_eq!(rec.state.epoch, 2);
        assert_eq!(rec.state.entries.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_after_recovery_continues_the_log() {
        let dir = scratch_dir("rec-resume");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg.clone(), "svc", 1).unwrap();
        publish(&mut log, 1, &[(3, 0)]);
        drop(log);
        // Torn tail on disk.
        let path = cfg.log_path();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x11; 5]);
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        let mut log = EpochLog::resume(
            cfg.clone(),
            rec.state,
            &rec.report,
            v6obs::global(),
            std::sync::Arc::new(v6chaos::NoChaos),
        )
        .unwrap();
        // The torn bytes are physically gone.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            rec.report.log_good_len
        );
        publish(&mut log, 2, &[(3, 0), (4, 1)]);
        drop(log);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.state.epoch, 2);
        assert_eq!(rec.state.entries, vec![(3, 0), (4, 1)]);
        assert_eq!(rec.report.truncated_bytes, 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
