//! Node-to-node epoch replication primitives.
//!
//! The write-ahead log ([`crate::log`]) already knows how to express an
//! epoch as a diff from its predecessor and how to replay those diffs;
//! this module exposes that machinery as a public API so a cluster
//! leader can ship the *same* delta records it persists over a
//! [`v6wire`]-style transport, and a follower can replay them into a
//! byte-identical mirror:
//!
//! * [`delta_between`] — compute the [`DeltaRecord`] carrying a mirror
//!   from one epoch's full content to the next;
//! * [`apply`] — replay a record into a mirror in place (remove, then
//!   upsert — exactly what log recovery does);
//! * [`encode_delta`] / [`decode_delta`] — the record's byte codec,
//!   identical to the on-disk delta frame payload, so a follower's
//!   catch-up stream and the leader's log speak one format;
//! * [`encode_state`] / [`decode_state`] — a full-state codec (the
//!   checkpoint payload) for bootstrap when a follower is too far
//!   behind for delta catch-up.
//!
//! Framing (length prefix + FNV-1a 64 checksum) is the transport's
//! concern — `v6wire::frame` wraps these payloads on the wire exactly
//! as the log wraps them on disk.
//!
//! ```
//! use v6store::replica::{apply, decode_delta, delta_between, encode_delta};
//! use v6store::{EpochState, EpochView};
//!
//! let mut leader = EpochState {
//!     name: "doc".into(),
//!     entries: vec![(7, 0)],
//!     ..Default::default()
//! };
//! let mut follower = leader.clone();
//!
//! let next = EpochView {
//!     epoch: 1,
//!     week: 1,
//!     content_checksum: 0xbeef,
//!     missing_shards: &[],
//!     entries: &[(7, 0), (9, 1)],
//!     aliases: &[],
//! };
//! let delta = delta_between(&leader, &next);
//! apply(&mut leader, &delta);
//!
//! // Ship the encoded record; the follower replays it bit-for-bit.
//! let wire = encode_delta(&delta);
//! apply(&mut follower, &decode_delta(&wire).unwrap());
//! assert_eq!(leader, follower);
//! ```
//!
//! [`v6wire`]: ../../v6wire/index.html

use crate::log::{self, EpochState, EpochView};

pub use crate::log::DeltaRecord;

/// Computes the delta record that carries a mirror at `prev` to the
/// epoch content in `next`.
///
/// Both sides must be sorted (ascending by bits; aliases by
/// `(bits, len)`) — which [`EpochState`] and [`EpochView`] already
/// guarantee everywhere the store produces them.
pub fn delta_between(prev: &EpochState, next: &EpochView<'_>) -> DeltaRecord {
    let (removed, added) = log::diff_entries(&prev.entries, next.entries);
    let (removed_aliases, added_aliases) = log::diff_aliases(&prev.aliases, next.aliases);
    DeltaRecord {
        epoch: next.epoch,
        week: next.week,
        content_checksum: next.content_checksum,
        missing_shards: next.missing_shards.to_vec(),
        removed,
        added,
        removed_aliases,
        added_aliases,
    }
}

/// Replays a delta record into a mirror in place: remove, then upsert,
/// then adopt the record's epoch/week/checksum/missing-shard header.
pub fn apply(state: &mut EpochState, record: &DeltaRecord) {
    log::apply_delta(state, record);
}

/// Encodes a delta record as the on-disk/on-wire delta payload.
pub fn encode_delta(record: &DeltaRecord) -> Vec<u8> {
    log::delta_payload(
        record.epoch,
        record.week,
        record.content_checksum,
        &record.missing_shards,
        &record.removed,
        &record.added,
        &record.removed_aliases,
        &record.added_aliases,
    )
}

/// Decodes a delta payload produced by [`encode_delta`] (or read back
/// from an epoch log). `None` on truncation, trailing bytes, or a
/// foreign tag.
pub fn decode_delta(payload: &[u8]) -> Option<DeltaRecord> {
    log::decode_delta(payload)
}

/// Encodes a full epoch state as the checkpoint payload — the bootstrap
/// path when a follower is too far behind to catch up by deltas.
pub fn encode_state(state: &EpochState) -> Vec<u8> {
    log::checkpoint_payload(state)
}

/// Decodes a full-state payload produced by [`encode_state`].
pub fn decode_state(payload: &[u8]) -> Option<EpochState> {
    log::decode_checkpoint(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::AliasEntry;

    fn view(state: &EpochState) -> EpochView<'_> {
        EpochView {
            epoch: state.epoch,
            week: state.week,
            content_checksum: state.content_checksum,
            missing_shards: &state.missing_shards,
            entries: &state.entries,
            aliases: &state.aliases,
        }
    }

    #[test]
    fn delta_round_trip_reconstructs_state() {
        let prev = EpochState {
            name: "t".into(),
            epoch: 3,
            entries: vec![(1, 0), (5, 0), (9, 2)],
            aliases: vec![AliasEntry {
                bits: 1 << 80,
                len: 48,
                week: 0,
            }],
            ..Default::default()
        };
        let next = EpochState {
            name: "t".into(),
            epoch: 4,
            week: 7,
            shard_bits: 0,
            content_checksum: 0xabcd,
            missing_shards: vec![2],
            entries: vec![(1, 0), (9, 3), (12, 7)],
            aliases: vec![
                AliasEntry {
                    bits: 1 << 80,
                    len: 48,
                    week: 0,
                },
                AliasEntry {
                    bits: 2 << 80,
                    len: 64,
                    week: 7,
                },
            ],
        };
        let record = delta_between(&prev, &view(&next));
        assert_eq!(record.removed, vec![5]);
        assert_eq!(record.added, vec![(9, 3), (12, 7)]);

        let decoded = decode_delta(&encode_delta(&record)).expect("codec round trip");
        assert_eq!(decoded, record);

        let mut mirror = prev.clone();
        apply(&mut mirror, &decoded);
        assert_eq!(mirror, next);
    }

    #[test]
    fn empty_delta_still_advances_the_header() {
        let prev = EpochState {
            name: "t".into(),
            epoch: 1,
            entries: vec![(42, 0)],
            ..Default::default()
        };
        let mut next_view = view(&prev);
        next_view.epoch = 2;
        next_view.content_checksum = 0xfeed;
        let record = delta_between(&prev, &next_view);
        assert!(record.removed.is_empty() && record.added.is_empty());
        let mut mirror = prev.clone();
        apply(&mut mirror, &record);
        assert_eq!(mirror.epoch, 2);
        assert_eq!(mirror.content_checksum, 0xfeed);
        assert_eq!(mirror.entries, prev.entries);
    }

    #[test]
    fn state_codec_round_trips_and_rejects_deltas() {
        let state = EpochState {
            name: "svc".into(),
            shard_bits: 3,
            epoch: 11,
            week: 4,
            content_checksum: 99,
            missing_shards: vec![1, 6],
            entries: vec![(3, 1), (8, 2)],
            aliases: vec![],
        };
        let bytes = encode_state(&state);
        assert_eq!(decode_state(&bytes), Some(state.clone()));
        // The two payload kinds are tagged; each decoder rejects the
        // other's bytes instead of misparsing them.
        assert_eq!(decode_delta(&bytes), None);
        let record = delta_between(&EpochState::default(), &view(&state));
        assert_eq!(decode_state(&encode_delta(&record)), None);
    }
}
