//! Tailing the epoch log: the delta-consumption API behind streaming
//! analytics.
//!
//! A [`LogTailer`] follows a store directory's `epochs.v6log` and
//! yields every [`DeltaRecord`] appended since the previous poll, in
//! append order. It is strictly read-only (like [`crate::recover()`])
//! and tolerant of concurrent writers:
//!
//! * a **torn tail** (an append in progress, or a crash mid-frame)
//!   simply ends the poll — the frame is re-examined next time;
//! * a **bit-rotten frame** ends the poll permanently at that offset
//!   (the bad frame is counted once and never delivered — the writer's
//!   own recovery path will truncate it);
//! * a **log reset** (the writer compacted into a checkpoint and
//!   restarted the log) is detected by the file shrinking below the
//!   tailer's offset; the tailer rescans from the top, and the
//!   monotonic epoch filter keeps already-delivered deltas from being
//!   re-emitted.
//!
//! Consumers that need gap *detection* (a delta lost to compaction
//! before it was polled, or bit rot ahead of the cursor) verify the
//! chain themselves — [`DeltaRecord::content_checksum`] makes a lost
//! predecessor visible to anyone mirroring the state (see
//! `v6stream::StreamDriver`).

use std::io;
use std::path::{Path, PathBuf};

use crate::format::{self, FrameOutcome, HEADER_LEN, KIND_LOG};
use crate::log::{decode_delta, DeltaRecord, LOG_FILE};

/// What one [`LogTailer::poll`] found, beyond the records themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Delta frames decoded and returned.
    pub delivered: u64,
    /// Valid frames skipped because their epoch was at or below the
    /// tailer's high-water mark (re-scan after a log reset).
    pub skipped: u64,
    /// True when the log file shrank and the tailer rescanned from the
    /// top (checkpoint compaction reset the log).
    pub reset: bool,
    /// Frames whose checksum failed (bit rot); the tailer stops in
    /// front of the first one and will not advance past it.
    pub quarantined: u32,
}

/// A read-only cursor over a store directory's epoch log.
///
/// ```
/// use v6store::{EpochLog, EpochView, LogTailer, StoreConfig};
///
/// let dir = v6store::scratch_dir("tail-doc");
/// let cfg = StoreConfig::new(&dir).with_fsync(false);
/// let mut log = EpochLog::create(cfg, "doc", 1).unwrap();
/// let mut tail = LogTailer::new(&dir);
/// log.append(EpochView {
///     epoch: 1,
///     week: 0,
///     content_checksum: 7,
///     missing_shards: &[],
///     entries: &[(42, 0)],
///     aliases: &[],
/// })
/// .unwrap();
/// let (records, _) = tail.poll().unwrap();
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].epoch, 1);
/// let (records, _) = tail.poll().unwrap(); // nothing new
/// assert!(records.is_empty());
/// std::fs::remove_dir_all(dir).ok();
/// ```
#[derive(Debug)]
pub struct LogTailer {
    path: PathBuf,
    /// Byte offset of the next unread frame.
    pos: usize,
    /// Highest epoch delivered so far; re-scanned frames at or below
    /// this are suppressed.
    last_epoch: u64,
    /// Set when a bit-rotten frame pinned the cursor: the tailer
    /// refuses to advance until the file is reset or truncated under
    /// it (the writer's recovery path does exactly that).
    pinned: bool,
}

impl LogTailer {
    /// A tailer at the start of `dir`'s log. The directory (and the
    /// log) need not exist yet; polls simply return nothing until the
    /// writer creates it.
    pub fn new(dir: impl AsRef<Path>) -> LogTailer {
        LogTailer {
            path: dir.as_ref().join(LOG_FILE),
            pos: 0,
            last_epoch: 0,
            pinned: false,
        }
    }

    /// Epoch of the last delivered delta (0 before the first).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Reads every delta appended since the previous poll.
    pub fn poll(&mut self) -> io::Result<(Vec<DeltaRecord>, TailReport)> {
        let mut report = TailReport::default();
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), report)),
            Err(e) => return Err(e),
        };
        if bytes.len() < self.pos {
            // Checkpoint compaction reset the log: rescan, relying on
            // the epoch high-water mark to suppress re-delivery.
            self.pos = 0;
            self.pinned = false;
            report.reset = true;
        }
        if self.pinned {
            return Ok((Vec::new(), report));
        }
        if self.pos == 0 {
            // Validate the prelude (header + meta frame) before the
            // first delta. An incomplete prelude ends the poll; the
            // writer is still setting the file up.
            if format::parse_header(&bytes) != Some(KIND_LOG) {
                return Ok((Vec::new(), report));
            }
            match format::read_frame(&bytes[HEADER_LEN..]) {
                FrameOutcome::Valid { consumed, .. } => self.pos = HEADER_LEN + consumed,
                FrameOutcome::Torn => return Ok((Vec::new(), report)),
                FrameOutcome::BitRot { .. } => {
                    report.quarantined += 1;
                    self.pinned = true;
                    return Ok((Vec::new(), report));
                }
            }
        }
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            match format::read_frame(&bytes[self.pos..]) {
                FrameOutcome::Valid { payload, consumed } => match decode_delta(payload) {
                    Some(record) => {
                        if record.epoch > self.last_epoch {
                            self.last_epoch = record.epoch;
                            report.delivered += 1;
                            out.push(record);
                        } else {
                            report.skipped += 1;
                        }
                        self.pos += consumed;
                    }
                    None => {
                        // Checksum held but the payload is not a
                        // delta: structurally corrupt. Pin here.
                        report.quarantined += 1;
                        self.pinned = true;
                        break;
                    }
                },
                FrameOutcome::Torn => break, // append in progress
                FrameOutcome::BitRot { .. } => {
                    report.quarantined += 1;
                    self.pinned = true;
                    break;
                }
            }
        }
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{scratch_dir, EpochLog, EpochView, StoreConfig};

    fn publish(log: &mut EpochLog, epoch: u64, entries: &[(u128, u32)]) {
        log.append(EpochView {
            epoch,
            week: epoch,
            content_checksum: epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            missing_shards: &[],
            entries,
            aliases: &[],
        })
        .unwrap();
    }

    #[test]
    fn tails_appends_incrementally() {
        let dir = scratch_dir("tail-incr");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 1).unwrap();
        let mut tail = LogTailer::new(&dir);
        let mut entries: Vec<(u128, u32)> = Vec::new();
        for e in 1..=3u64 {
            entries.push((u128::from(e) << 16, e as u32));
            publish(&mut log, e, &entries);
            let (records, report) = tail.poll().unwrap();
            assert_eq!(records.len(), 1, "epoch {e}");
            assert_eq!(records[0].epoch, e);
            assert_eq!(report.delivered, 1);
        }
        let (records, _) = tail.poll().unwrap();
        assert!(records.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_then_created_log() {
        let dir = scratch_dir("tail-missing");
        let mut tail = LogTailer::new(&dir);
        let (records, _) = tail.poll().unwrap();
        assert!(records.is_empty());
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 0).unwrap();
        publish(&mut log, 1, &[(9, 0)]);
        let (records, _) = tail.poll().unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn log_reset_rescans_without_redelivery() {
        let dir = scratch_dir("tail-reset");
        // Checkpoint every 2 epochs: the log resets mid-run, and the
        // checkpointed epochs' frames are compacted away *before* the
        // tailer polls them. Those epochs are genuine replay gaps —
        // never re-delivered, never delivered twice — and the consumer
        // is expected to detect them via the delta chain's content
        // checksums and resync from a recovered state.
        let cfg = StoreConfig::new(&dir).checkpoint_every(2).with_fsync(false);
        let mut log = EpochLog::create(cfg, "svc", 0).unwrap();
        let mut tail = LogTailer::new(&dir);
        let mut entries: Vec<(u128, u32)> = Vec::new();
        let mut seen = Vec::new();
        let mut resets = 0u32;
        for e in 1..=6u64 {
            entries.push((u128::from(e), e as u32));
            publish(&mut log, e, &entries);
            let (records, report) = tail.poll().unwrap();
            seen.extend(records.iter().map(|r| r.epoch));
            resets += u32::from(report.reset);
        }
        // Epochs 2/4/6 were compacted into checkpoints before the poll:
        // delivered strictly once each, strictly increasing, no
        // duplicates across the log resets.
        assert_eq!(seen, vec![1, 3, 5]);
        assert!(resets >= 2, "the log reset under the tailer");
        assert_eq!(tail.last_epoch(), 5);
        // The gaps are recoverable: the store itself still knows the
        // full state (checkpoint + tail replay).
        assert_eq!(crate::recover(&dir).unwrap().state.epoch, 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_retries_next_poll() {
        let dir = scratch_dir("tail-torn");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg.clone(), "svc", 0).unwrap();
        publish(&mut log, 1, &[(7, 0)]);
        let mut tail = LogTailer::new(&dir);
        let (records, _) = tail.poll().unwrap();
        assert_eq!(records.len(), 1);

        // Torn garbage at the tail: nothing delivered, cursor not stuck.
        let path = cfg.log_path();
        let good = std::fs::read(&path).unwrap();
        let mut torn = good.clone();
        torn.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &torn).unwrap();
        let (records, report) = tail.poll().unwrap();
        assert!(records.is_empty());
        assert_eq!(report.quarantined, 0);

        // The append "completes" (torn bytes replaced by a real frame):
        // delivery resumes from the same cursor.
        std::fs::write(&path, &good).unwrap();
        publish(&mut log, 2, &[(7, 0), (8, 1)]);
        let (records, _) = tail.poll().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_rot_pins_the_cursor() {
        let dir = scratch_dir("tail-rot");
        let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
        let mut log = EpochLog::create(cfg.clone(), "svc", 0).unwrap();
        publish(&mut log, 1, &[(7, 0)]);
        let len_after_1 = std::fs::metadata(cfg.log_path()).unwrap().len() as usize;
        publish(&mut log, 2, &[(7, 0), (9, 1)]);
        drop(log);
        // Flip a bit inside epoch 2's frame payload.
        let path = cfg.log_path();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[len_after_1 + 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut tail = LogTailer::new(&dir);
        let (records, report) = tail.poll().unwrap();
        assert_eq!(records.len(), 1, "epoch 1 is intact");
        assert_eq!(report.quarantined, 1);
        // The cursor is pinned in front of the rotten frame.
        let (records, report) = tail.poll().unwrap();
        assert!(records.is_empty());
        assert_eq!(report.quarantined, 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
