//! The versioned on-disk record format (format v1).
//!
//! Both store files — the epoch delta log and each checkpoint — share
//! one layout: a fixed 16-byte header followed by length-prefixed,
//! checksummed *frames*. All integers are little-endian.
//!
//! ```text
//! header  := magic(8 = "V6STORE1") kind(u32: 1=log, 2=checkpoint) version(u32 = 1)
//! frame   := payload_len(u32) payload(payload_len bytes) fnv64(payload)
//! payload := tag(u8) body
//! ```
//!
//! Payload tags:
//!
//! | tag | record     | body                                                             |
//! |-----|------------|------------------------------------------------------------------|
//! | 1   | epoch delta| epoch u64, week u64, checksum u64, missing, removed, added, removed_aliases, added_aliases |
//! | 2   | checkpoint | name, shard_bits u32, epoch u64, week u64, checksum u64, missing, entries, aliases |
//! | 3   | log meta   | name, shard_bits u32                                             |
//!
//! where `name` is `u16 length + UTF-8 bytes`, `missing` is
//! `u32 count + count × u32`, `removed` is `u32 count + count × u128`
//! (address bits dropped since the previous epoch), `added`/`entries`
//! are `u32 count + count × (bits u128, week u32)` sorted ascending by
//! bits, `removed_aliases` is `u32 count + count × (bits u128, len u8)`,
//! and `aliases` are `u32 count + count × (bits u128, len u8, week u32)`
//! sorted ascending by `(bits, len)`. A delta's `added` list carries
//! both genuinely new addresses and addresses whose first-seen week
//! changed; applying a delta is remove-then-upsert.
//!
//! The frame checksum is FNV-1a 64 over the payload bytes only; the
//! length prefix is validated structurally (a frame that does not fit in
//! the remaining file is a torn tail). A frame that fits but whose
//! checksum fails is *bit rot* and is quarantined by recovery rather
//! than replayed.

/// The 8-byte file magic. The trailing `1` is the on-disk generation:
/// readers reject files whose magic does not match exactly.
pub const MAGIC: [u8; 8] = *b"V6STORE1";

/// Current format version, written to and checked in every header.
pub const FORMAT_VERSION: u32 = 1;

/// Header `kind` for the append-only epoch delta log.
pub const KIND_LOG: u32 = 1;

/// Header `kind` for a compacted checkpoint.
pub const KIND_CHECKPOINT: u32 = 2;

/// Total header size: magic + kind + version.
pub const HEADER_LEN: usize = 16;

/// Payload tag of an epoch delta record.
pub const TAG_DELTA: u8 = 1;

/// Payload tag of a checkpoint record.
pub const TAG_CHECKPOINT: u8 = 2;

/// Payload tag of the log's store-identity meta record.
pub const TAG_META: u8 = 3;

/// Sanity ceiling on a single frame's payload (256 MiB). A length
/// prefix above this is treated as torn/corrupt rather than allocated.
pub const MAX_FRAME_PAYLOAD: u32 = 256 << 20;

/// FNV-1a 64 over `bytes` — the per-record checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One registered aliased prefix: network bits, prefix length, and the
/// study week it became effective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AliasEntry {
    /// Network bits (host bits zero).
    pub bits: u128,
    /// Prefix length in bits.
    pub len: u8,
    /// Week the alias registration became effective.
    pub week: u32,
}

/// Little-endian byte-buffer encoder for payloads.
#[derive(Debug, Default)]
pub struct Enc(Vec<u8>);

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc(Vec::new())
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string (`u16` length).
    ///
    /// # Panics
    /// Panics if the string is longer than `u16::MAX` bytes.
    pub fn name(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("store name longer than 64 KiB");
        self.u16(len);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u32`-counted list of `(bits, week)` entries.
    pub fn entries(&mut self, entries: &[(u128, u32)]) {
        self.u32(entries.len() as u32);
        for &(bits, week) in entries {
            self.u128(bits);
            self.u32(week);
        }
    }

    /// Appends a `u32`-counted list of alias entries.
    pub fn aliases(&mut self, aliases: &[AliasEntry]) {
        self.u32(aliases.len() as u32);
        for a in aliases {
            self.u128(a.bits);
            self.u8(a.len);
            self.u32(a.week);
        }
    }

    /// Appends a `u32`-counted list of raw `u128` values.
    pub fn u128_list(&mut self, values: &[u128]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.u128(v);
        }
    }

    /// Appends a `u32`-counted list of `u32` values.
    pub fn u32_list(&mut self, values: &[u32]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.u32(v);
        }
    }

    /// Appends a `u32`-counted list of removed address bits.
    pub fn removed(&mut self, removed: &[u128]) {
        self.u128_list(removed);
    }

    /// Appends a `u32`-counted list of removed alias keys.
    pub fn removed_aliases(&mut self, removed: &[(u128, u8)]) {
        self.u32(removed.len() as u32);
        for &(bits, len) in removed {
            self.u128(bits);
            self.u8(len);
        }
    }

    /// Appends a `u32`-counted list of shard indices.
    pub fn shards(&mut self, shards: &[u32]) {
        self.u32_list(shards);
    }
}

/// Little-endian cursor decoder; every read is bounds-checked and a
/// short or malformed buffer yields `None` (the caller maps that to a
/// corrupt-record outcome, never a panic).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// True when every byte has been consumed (well-formed payloads
    /// decode exactly).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|s| u128::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn name(&mut self) -> Option<String> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Reads a `u32`-counted list of `(bits, week)` entries.
    pub fn entries(&mut self) -> Option<Vec<(u128, u32)>> {
        let n = self.counted(20)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u128()?, self.u32()?));
        }
        Some(out)
    }

    /// Reads a `u32`-counted list of alias entries.
    pub fn aliases(&mut self) -> Option<Vec<AliasEntry>> {
        let n = self.counted(21)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(AliasEntry {
                bits: self.u128()?,
                len: self.u8()?,
                week: self.u32()?,
            });
        }
        Some(out)
    }

    /// Reads a `u32`-counted list of raw `u128` values.
    pub fn u128_list(&mut self) -> Option<Vec<u128>> {
        let n = self.counted(16)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u128()?);
        }
        Some(out)
    }

    /// Reads a `u32`-counted list of `u32` values.
    pub fn u32_list(&mut self) -> Option<Vec<u32>> {
        let n = self.counted(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Some(out)
    }

    /// Reads a `u32`-counted list of removed address bits.
    pub fn removed(&mut self) -> Option<Vec<u128>> {
        self.u128_list()
    }

    /// Reads a `u32`-counted list of removed alias keys.
    pub fn removed_aliases(&mut self) -> Option<Vec<(u128, u8)>> {
        let n = self.counted(17)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u128()?, self.u8()?));
        }
        Some(out)
    }

    /// Reads a `u32`-counted list of shard indices.
    pub fn shards(&mut self) -> Option<Vec<u32>> {
        self.u32_list()
    }

    /// Reads a list count and bounds it against the bytes actually
    /// remaining (`item_size` bytes each), so a corrupt count can never
    /// drive an over-allocation.
    fn counted(&mut self, item_size: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(item_size)? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }
}

/// Encodes the 16-byte file header for `kind`.
pub fn header(kind: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out
}

/// Validates a file header, returning its `kind`.
pub fn parse_header(buf: &[u8]) -> Option<u32> {
    if buf.len() < HEADER_LEN || buf[..8] != MAGIC {
        return None;
    }
    let kind = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let version = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    if version != FORMAT_VERSION {
        return None;
    }
    Some(kind)
}

/// Wraps a payload in a frame: length prefix + payload + FNV checksum.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// What scanning one frame out of a buffer produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameOutcome<'a> {
    /// A complete frame with a valid checksum; `consumed` is its total
    /// on-disk size (length prefix + payload + checksum).
    Valid {
        /// The payload bytes.
        payload: &'a [u8],
        /// Bytes this frame occupies on disk.
        consumed: usize,
    },
    /// The remaining bytes cannot hold a complete frame (or the length
    /// prefix is itself implausible): a torn tail from an interrupted
    /// write. Everything from here on is dropped by recovery.
    Torn,
    /// A complete frame whose checksum does not match: bit rot.
    /// `consumed` is the frame's full on-disk size.
    BitRot {
        /// Bytes the corrupt frame occupies on disk.
        consumed: usize,
    },
}

/// Scans one frame from the front of `buf`.
pub fn read_frame(buf: &[u8]) -> FrameOutcome<'_> {
    if buf.len() < 4 {
        return FrameOutcome::Torn;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return FrameOutcome::Torn;
    }
    let len = len as usize;
    let total = 4 + len + 8;
    if buf.len() < total {
        return FrameOutcome::Torn;
    }
    let payload = &buf[4..4 + len];
    let sum = u64::from_le_bytes(buf[4 + len..total].try_into().unwrap());
    if fnv64(payload) != sum {
        return FrameOutcome::BitRot { consumed: total };
    }
    FrameOutcome::Valid {
        payload,
        consumed: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // FNV-1a 64 published test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let h = header(KIND_LOG);
        assert_eq!(h.len(), HEADER_LEN);
        assert_eq!(parse_header(&h), Some(KIND_LOG));
        assert_eq!(
            parse_header(&header(KIND_CHECKPOINT)),
            Some(KIND_CHECKPOINT)
        );
        assert_eq!(parse_header(&h[..12]), None);
        let mut bad = h.clone();
        bad[0] ^= 0xff;
        assert_eq!(parse_header(&bad), None);
        let mut wrong_version = h;
        wrong_version[12] = 99;
        assert_eq!(parse_header(&wrong_version), None);
    }

    #[test]
    fn frames_round_trip() {
        let f = frame(b"hello");
        match read_frame(&f) {
            FrameOutcome::Valid { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, f.len());
            }
            other => panic!("expected valid frame, got {other:?}"),
        }
    }

    #[test]
    fn torn_and_rotten_frames_classified() {
        let f = frame(b"payload");
        // Every strict prefix is torn, never a panic.
        for cut in 0..f.len() {
            assert_eq!(read_frame(&f[..cut]), FrameOutcome::Torn, "cut={cut}");
        }
        // A flipped payload bit is bit rot, with the frame length intact.
        let mut rotten = f.clone();
        rotten[5] ^= 0x10;
        assert_eq!(
            read_frame(&rotten),
            FrameOutcome::BitRot { consumed: f.len() }
        );
        // An absurd length prefix is torn, not an allocation attempt.
        let mut huge = f;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(read_frame(&huge), FrameOutcome::Torn);
    }

    #[test]
    fn enc_dec_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.name("svc");
        e.u32(42);
        e.u64(1 << 40);
        e.entries(&[(5, 1), (9, 2)]);
        e.aliases(&[AliasEntry {
            bits: 0xff00,
            len: 48,
            week: 3,
        }]);
        e.shards(&[0, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.name().as_deref(), Some("svc"));
        assert_eq!(d.u32(), Some(42));
        assert_eq!(d.u64(), Some(1 << 40));
        assert_eq!(d.entries(), Some(vec![(5, 1), (9, 2)]));
        assert_eq!(
            d.aliases(),
            Some(vec![AliasEntry {
                bits: 0xff00,
                len: 48,
                week: 3
            }])
        );
        assert_eq!(d.shards(), Some(vec![0, 3]));
        assert!(d.is_exhausted());
    }

    #[test]
    fn dec_rejects_corrupt_counts() {
        // A count claiming more items than bytes remain must not allocate.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).entries(), None);
        assert_eq!(Dec::new(&bytes).aliases(), None);
        assert_eq!(Dec::new(&bytes).shards(), None);
        assert_eq!(Dec::new(&[1, 2]).u32(), None);
    }
}
