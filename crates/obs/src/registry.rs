//! Named metrics: counters, gauges, and fixed-bucket latency histograms,
//! collected in a [`Registry`] with deterministic text/JSON exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log2 latency buckets. Bucket `i` holds values whose
/// bit-length is `i`, i.e. the range `[2^(i-1), 2^i - 1]` nanoseconds
/// (bucket 0 holds the value 0). The last bucket saturates, covering
/// everything from ~39 hours up.
const BUCKETS: usize = 48;

/// A monotonically increasing `u64` metric. Cloning is cheap: all clones
/// share one atomic cell, so handles can be cached across threads.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous metric (queue depths, high-water marks).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger than the current value
    /// (atomic max — used for high-water marks like peak queue depth).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket (log2) latency histogram over nanosecond samples.
///
/// Recording touches two or three relaxed atomics; quantiles are computed
/// on demand from the bucket array and reported as the inclusive upper
/// bound of the bucket containing the requested rank (so `p50_ns` of a
/// histogram whose samples all fall in `[512, 1023]` is `1023`).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a nanosecond sample: its bit length, clamped.
fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    (1u64 << i) - 1
}

impl Histogram {
    /// Record one sample, in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(ns, Ordering::Relaxed);
        self.0.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one sample from a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time a closure and record its wall time; returns the closure result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample in nanoseconds (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`) in
    /// nanoseconds; 0 if the histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        self.max_ns()
    }

    /// Snapshot the histogram into a plain-data summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum_ns: self.sum_ns(),
            max_ns: self.max_ns(),
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p99_ns: self.quantile_ns(0.99),
        }
    }
}

/// Plain-data summary of a [`Histogram`] at a point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Largest sample (ns, exact).
    pub max_ns: u64,
    /// Median upper-bound estimate (ns).
    pub p50_ns: u64,
    /// 90th percentile upper-bound estimate (ns).
    pub p90_ns: u64,
    /// 99th percentile upper-bound estimate (ns).
    pub p99_ns: u64,
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A namespace of metrics keyed by name.
///
/// Lookup (`counter`/`gauge`/`histogram`) takes a mutex, so callers on hot
/// paths should fetch a handle once and cache it; the handles themselves
/// record through relaxed atomics only. Registering the same name as two
/// different metric kinds panics — names are a global contract.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the counter `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().expect("metrics lock poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Fetch the gauge `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("metrics lock poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Fetch the histogram `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or gauge.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.lock().expect("metrics lock poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshot every metric into plain sorted data.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("metrics lock poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.summary())),
            }
        }
        snap
    }

    /// Deterministic Prometheus-style text exposition: one `name value`
    /// line per metric, lines sorted lexicographically by name. Histograms
    /// expand to `<name>_count`, `<name>_max_ns`, `<name>_p50_ns`,
    /// `<name>_p90_ns`, `<name>_p99_ns`, and `<name>_sum_ns` lines.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let mut lines: Vec<String> = Vec::new();
        for (name, v) in &snap.counters {
            lines.push(format!("{name} {v}"));
        }
        for (name, v) in &snap.gauges {
            lines.push(format!("{name} {v}"));
        }
        for (name, s) in &snap.histograms {
            lines.push(format!("{name}_count {}", s.count));
            lines.push(format!("{name}_max_ns {}", s.max_ns));
            lines.push(format!("{name}_p50_ns {}", s.p50_ns));
            lines.push(format!("{name}_p90_ns {}", s.p90_ns));
            lines.push(format!("{name}_p99_ns {}", s.p99_ns));
            lines.push(format!("{name}_sum_ns {}", s.sum_ns));
        }
        lines.sort_unstable();
        let mut out = String::new();
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// JSON snapshot: `{"counters":{...},"gauges":{...},"histograms":{...}}`
    /// with keys sorted by metric name. Hand-rolled so the crate stays
    /// dependency-free; metric names are escaped per the JSON string rules.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// Plain-data snapshot of a [`Registry`], each section sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Merges several labeled snapshots into one, prefixing every
    /// metric of source `label` as `<label>.<name>`.
    ///
    /// This is how a cluster folds its per-node registries into a
    /// single snapshot: `merge_prefixed([("n0", a), ("n1", b)])` yields
    /// `n0.store.log.appends`, `n1.store.log.appends`, … — each
    /// section sorted by the prefixed name, so the merged snapshot is
    /// deterministic whenever its inputs are.
    pub fn merge_prefixed<'a, I>(parts: I) -> MetricsSnapshot
    where
        I: IntoIterator<Item = (&'a str, &'a MetricsSnapshot)>,
    {
        let mut out = MetricsSnapshot::default();
        for (label, snap) in parts {
            let tag = |name: &str| format!("{label}.{name}");
            out.counters
                .extend(snap.counters.iter().map(|(n, v)| (tag(n), *v)));
            out.gauges
                .extend(snap.gauges.iter().map(|(n, v)| (tag(n), *v)));
            out.histograms
                .extend(snap.histograms.iter().map(|(n, s)| (tag(n), *s)));
        }
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Value of the counter `name`, if present in the snapshot.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Counters whose names start with `prefix`, as `(name, value)` pairs.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Per-counter deltas `self - earlier` for every counter present in
    /// `self`, treating counters absent from `earlier` as zero. Sorted by
    /// name; counters with a zero delta are omitted.
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, v)| {
                let before = earlier.counter(name).unwrap_or(0);
                let delta = v.saturating_sub(before);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }

    /// Serialize the snapshot as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                json_string(name),
                s.count,
                s.sum_ns,
                s.max_ns,
                s.p50_ns,
                s.p90_ns,
                s.p99_ns
            );
        }
        out.push_str("}}");
        out
    }
}

/// Quote and escape a string per JSON rules.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prefixed_labels_and_sorts() {
        let a = Registry::new();
        a.counter("store.log.appends").add(3);
        a.gauge("serve.bytes").set(10);
        let b = Registry::new();
        b.counter("store.log.appends").add(5);
        b.histogram("lat").record(100);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let merged = MetricsSnapshot::merge_prefixed([("n1", &sb), ("n0", &sa)]);
        assert_eq!(merged.counter("n0.store.log.appends"), Some(3));
        assert_eq!(merged.counter("n1.store.log.appends"), Some(5));
        assert_eq!(merged.gauges, vec![("n0.serve.bytes".to_string(), 10)]);
        assert_eq!(merged.histograms.len(), 1);
        assert_eq!(merged.histograms[0].0, "n1.lat");
        // Sections sort by prefixed name regardless of input order.
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Handles are shared: a second lookup sees the same cell.
        assert_eq!(r.counter("a.count").get(), 10);

        let g = r.gauge("a.depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set_max(7);
        g.set_max(1);
        assert_eq!(g.get(), 7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [0u64, 1, 2, 3, 700, 800, 900, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.sum_ns(), 1_002_406);
        // p50 rank 4 lands in the [2,3] bucket -> upper bound 3.
        assert_eq!(h.quantile_ns(0.5), 3);
        // p75 rank 6 lands in the [512,1023] bucket -> upper bound 1023.
        assert_eq!(h.quantile_ns(0.75), 1023);
        // p99 rank 8 lands in the bucket holding 1_000_000 (2^19..2^20-1).
        assert_eq!(h.quantile_ns(0.99), (1 << 20) - 1);
        // Saturating bucket: enormous samples still land somewhere.
        h.record(u64::MAX);
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn bucket_of_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn render_text_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("zeta").add(1);
        r.counter("alpha").add(2);
        r.gauge("mid").set(-4);
        r.histogram("lat").record(100);
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "exposition lines must be sorted");
        assert!(text.contains("alpha 2\n"));
        assert!(text.contains("mid -4\n"));
        assert!(text.contains("lat_count 1\n"));
        assert!(text.contains("lat_max_ns 100\n"));
        // Rendering twice with no recording in between is byte-identical.
        assert_eq!(text, r.render_text());
    }

    #[test]
    fn json_snapshot_shape() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(-1);
        r.histogram("h").record(1);
        let json = r.render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"c\":3"));
        assert!(json.contains("\"g\":-1"));
        assert!(json.contains("\"h\":{\"count\":1"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn snapshot_deltas() {
        let r = Registry::new();
        let c = r.counter("d.events");
        c.add(2);
        let before = r.snapshot();
        c.add(5);
        r.counter("d.other"); // zero-delta counter is omitted
        let after = r.snapshot();
        assert_eq!(
            after.counter_deltas(&before),
            vec![("d.events".to_owned(), 5)]
        );
        assert_eq!(after.counter("d.events"), Some(7));
        assert_eq!(after.counters_with_prefix("d.").len(), 2);
    }
}
