//! Unified observability layer for the IPv6 hitlist pipeline.
//!
//! `v6obs` is a zero-dependency (std-only) crate providing two facilities
//! that every other workspace crate can lean on without pulling in an
//! external metrics or tracing stack:
//!
//! 1. **Metrics registry** ([`Registry`]): named [`Counter`]s, [`Gauge`]s,
//!    and fixed-bucket latency [`Histogram`]s (log2 buckets; p50/p90/p99/max
//!    summaries). A process-global registry is available through
//!    [`global`], with [`counter`]/[`gauge`]/[`histogram`] conveniences.
//!    [`Registry::render_text`] produces a deterministic Prometheus-style
//!    exposition (one `name value` line per metric, sorted by name) and
//!    [`Registry::render_json`] a JSON snapshot; [`Registry::snapshot`]
//!    yields a typed [`MetricsSnapshot`] for programmatic use.
//!
//! 2. **Span tracing** ([`span`]): lightweight hierarchical wall-clock
//!    spans recorded into per-thread buffers (no cross-thread locking on
//!    the hot path) and merged on demand into a [`TraceReport`] tree with
//!    per-span call counts, wall time, and child rollups. Tracing is off
//!    by default: [`span`] returns an inert guard after a single atomic
//!    load unless `V6_TRACE=1` is set in the environment (or
//!    [`set_enabled`] was called).
//!
//! # Determinism rule
//!
//! Metric **values derived from data** — addresses collected, probes sent,
//! queries served, faults injected — must be invariant under the worker
//! thread count (`V6_THREADS`); integration tests assert this. Timing
//! values (histogram quantiles, span wall times) and scheduling metrics
//! (`par.pool.*` chunk/steal counters, queue-depth gauges) are inherently
//! execution-dependent and are excluded from that contract, and from all
//! artifact digests.
//!
//! # Example
//!
//! ```
//! let c = v6obs::counter("example.addresses_in");
//! c.add(42);
//! let h = v6obs::histogram("example.latency");
//! h.record(1_500); // nanoseconds
//! let text = v6obs::render_text();
//! assert!(text.contains("example.addresses_in 42"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod registry;
mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use trace::{enabled, set_enabled, span, take_report, SpanGuard, TraceNode, TraceReport};

use std::sync::OnceLock;

/// The process-global metrics registry.
///
/// Most pipeline code records into this registry; `v6serve` keeps a
/// per-store [`Registry`] instead so that independent stores in one
/// process do not share counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Fetch (registering on first use) a counter from the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Fetch (registering on first use) a gauge from the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Fetch (registering on first use) a histogram from the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Render the global registry in the deterministic text exposition format.
pub fn render_text() -> String {
    global().render_text()
}

/// Render the global registry as a JSON object string.
pub fn render_json() -> String {
    global().render_json()
}
