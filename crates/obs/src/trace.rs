//! Hierarchical wall-clock span tracing with per-thread buffers.
//!
//! Each thread accumulates its spans into a thread-local tree (no
//! cross-thread synchronization while a span is open). When a thread
//! exits — or when [`take_report`] runs on the calling thread — the local
//! tree is merged under a process-global mutex into a single
//! [`TraceReport`], combining nodes by name and summing call counts and
//! wall time. Spans opened on worker threads therefore appear as root
//! nodes of the merged tree (one tree per thread, merged at the root).
//!
//! Tracing is disabled unless `V6_TRACE` is set to `1`/`true` (or
//! [`set_enabled`] was called): [`span`] then returns an inert guard
//! after one relaxed atomic load.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tri-state enable flag: 0 = not yet read from env, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is span tracing currently enabled?
///
/// The first call reads the `V6_TRACE` environment variable (`1` or
/// `true` enable tracing); subsequent calls are a single atomic load.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("V6_TRACE")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force tracing on or off, overriding `V6_TRACE` (used by benches/tests).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// One node of a local (per-thread) span tree.
#[derive(Debug)]
struct LocalNode {
    name: &'static str,
    calls: u64,
    wall_ns: u64,
    children: Vec<usize>,
}

/// Per-thread span buffer: an arena of nodes plus the open-span stack.
#[derive(Debug, Default)]
struct LocalTree {
    nodes: Vec<LocalNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl LocalTree {
    /// Open a span named `name` under the current top of stack, reusing an
    /// existing sibling node with the same name when present.
    fn open(&mut self, name: &'static str) -> usize {
        let siblings = match self.stack.last() {
            Some(&parent) => &self.nodes[parent].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let idx = match found {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(LocalNode {
                    name,
                    calls: 0,
                    wall_ns: 0,
                    children: Vec::new(),
                });
                match self.stack.last() {
                    Some(&parent) => self.nodes[parent].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.stack.push(idx);
        idx
    }

    /// Close the span `idx`, crediting `elapsed_ns` to it.
    fn close(&mut self, idx: usize, elapsed_ns: u64) {
        let node = &mut self.nodes[idx];
        node.calls += 1;
        node.wall_ns += elapsed_ns;
        // Guards drop LIFO under normal control flow; be lenient if an
        // outer guard was dropped early and pop through to `idx`.
        while let Some(top) = self.stack.pop() {
            if top == idx {
                break;
            }
        }
    }

    /// Convert the arena into an owned tree and hand it to the global
    /// merged report, leaving this buffer empty.
    fn flush(&mut self) {
        if self.nodes.is_empty() {
            return;
        }
        let roots = std::mem::take(&mut self.roots);
        let trees: Vec<TraceNode> = roots.iter().map(|&i| self.to_node(i)).collect();
        self.nodes.clear();
        self.stack.clear();
        let mut merged = MERGED.lock().expect("trace merge lock poisoned");
        merge_nodes(&mut merged, trees);
    }

    fn to_node(&self, idx: usize) -> TraceNode {
        let n = &self.nodes[idx];
        TraceNode {
            name: n.name.to_owned(),
            calls: n.calls,
            wall_ns: n.wall_ns,
            children: n.children.iter().map(|&c| self.to_node(c)).collect(),
        }
    }
}

impl Drop for LocalTree {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalTree> = RefCell::new(LocalTree::default());
}

/// Trees flushed from finished threads (and from [`take_report`] callers),
/// merged by name.
static MERGED: Mutex<Vec<TraceNode>> = Mutex::new(Vec::new());

/// Merge `src` trees into `dst`, combining nodes with equal names.
fn merge_nodes(dst: &mut Vec<TraceNode>, src: Vec<TraceNode>) {
    for node in src {
        match dst.iter_mut().find(|d| d.name == node.name) {
            Some(existing) => {
                existing.calls += node.calls;
                existing.wall_ns += node.wall_ns;
                merge_nodes(&mut existing.children, node.children);
            }
            None => dst.push(node),
        }
    }
}

/// RAII guard for an open span; the span closes (and its wall time is
/// recorded) when the guard drops. Inert when tracing is disabled.
///
/// Guards must be dropped on the thread that opened them.
#[must_use = "a span records nothing unless the guard is held to the end of the region"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Instant, usize)>,
}

/// Open a span named `name` on the current thread.
///
/// When tracing is disabled (no `V6_TRACE=1`, no [`set_enabled`]) this is
/// a single atomic load returning an inert guard.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let idx = LOCAL.with(|l| l.borrow_mut().open(name));
    SpanGuard {
        active: Some((Instant::now(), idx)),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, idx)) = self.active.take() {
            let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            // try_with: the TLS buffer may already be gone during thread
            // teardown, in which case the span is silently dropped.
            let _ = LOCAL.try_with(|l| l.borrow_mut().close(idx, elapsed));
        }
    }
}

/// One node of a merged trace tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Times a span with this name closed at this tree position.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds.
    pub wall_ns: u64,
    /// Child spans, sorted by name in a finished [`TraceReport`].
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total wall time of direct children, in nanoseconds.
    pub fn child_wall_ns(&self) -> u64 {
        self.children.iter().map(|c| c.wall_ns).sum()
    }

    /// Wall time not attributed to any child span (saturating).
    pub fn self_wall_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.child_wall_ns())
    }

    /// Direct child named `name`, if any.
    pub fn child(&self, name: &str) -> Option<&TraceNode> {
        self.children.iter().find(|c| c.name == name)
    }

    fn sort_recursive(&mut self) {
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in &mut self.children {
            c.sort_recursive();
        }
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let ms = self.wall_ns as f64 / 1e6;
        out.push_str(&format!(
            "{:indent$}{name}  calls={calls}  wall={ms:.3}ms",
            "",
            indent = depth * 2,
            name = self.name,
            calls = self.calls,
        ));
        if !self.children.is_empty() {
            let self_ms = self.self_wall_ns() as f64 / 1e6;
            out.push_str(&format!("  self={self_ms:.3}ms"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// A merged span tree: per-span wall time, child rollups, call counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Root spans. Spans opened on worker threads merge in at this level
    /// (each thread contributes its own roots).
    pub roots: Vec<TraceNode>,
}

impl TraceReport {
    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total wall time across all root spans, in nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.wall_ns).sum()
    }

    /// Walk `path` (root name, then child names) to a node, if present.
    pub fn find(&self, path: &[&str]) -> Option<&TraceNode> {
        let (first, rest) = path.split_first()?;
        let mut node = self.roots.iter().find(|r| &r.name == first)?;
        for name in rest {
            node = node.child(name)?;
        }
        Some(node)
    }

    /// Render the tree as an indented text listing, two spaces per level.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            r.render_into(0, &mut out);
        }
        out
    }
}

/// Drain all spans recorded so far into a [`TraceReport`].
///
/// Flushes the calling thread's buffer plus everything already merged
/// from finished threads, then resets the merged state. Live threads
/// other than the caller keep their in-progress buffers until they exit —
/// join workers before reporting. Call this outside any open span, or the
/// open span's partial data is dropped.
pub fn take_report() -> TraceReport {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
    let mut merged = MERGED.lock().expect("trace merge lock poisoned");
    let mut roots = std::mem::take(&mut *merged);
    drop(merged);
    roots.sort_by(|a, b| a.name.cmp(&b.name));
    for r in &mut roots {
        r.sort_recursive();
    }
    TraceReport { roots }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state (the enable flag, the merged tree) is process-global,
    // so all tracing assertions live in this single #[test]: cargo runs
    // unit tests of one binary in parallel threads.
    #[test]
    fn spans_record_merge_and_disable() {
        set_enabled(true);
        let _ = take_report(); // discard anything earlier tests recorded

        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        }
        let handle = std::thread::spawn(|| {
            let _w = span("worker");
            let _n = span("nested");
        });
        handle.join().unwrap();

        let report = take_report();
        assert!(!report.is_empty());
        let outer = report.find(&["outer"]).expect("outer span");
        assert_eq!(outer.calls, 1);
        let inner = report.find(&["outer", "inner"]).expect("inner span");
        assert_eq!(inner.calls, 3);
        assert!(outer.wall_ns >= inner.wall_ns);
        assert!(outer.self_wall_ns() <= outer.wall_ns);
        // The worker thread's spans merge in as a separate root.
        let worker = report.find(&["worker"]).expect("worker root");
        assert_eq!(worker.calls, 1);
        assert_eq!(worker.child("nested").map(|n| n.calls), Some(1));
        // Roots and children are sorted by name.
        let names: Vec<&str> = report.roots.iter().map(|r| r.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // Render shows the hierarchy.
        let text = report.render();
        assert!(text.contains("outer  calls=1"));
        assert!(text.contains("  inner  calls=3"));

        // Draining leaves the report empty.
        assert!(take_report().is_empty());

        // Same-name spans merge across take_report generations too.
        {
            let _a = span("again");
        }
        {
            let _a = span("again");
        }
        assert_eq!(take_report().find(&["again"]).map(|n| n.calls), Some(2));

        // Disabled: inert guards, nothing recorded.
        set_enabled(false);
        assert!(!enabled());
        {
            let _g = span("ghost");
        }
        set_enabled(true);
        assert!(take_report().find(&["ghost"]).is_none());
        set_enabled(false);
    }
}
