//! Golden test: `render_text` exposition is byte-stable — sorted by name,
//! histograms expanded to fixed `_count/_max_ns/_p50_ns/_p90_ns/_p99_ns/_sum_ns`
//! lines — so its output can be diffed across runs and machines.

use v6obs::Registry;

const GOLDEN: &str = include_str!("golden/render_text.txt");

#[test]
fn render_text_matches_golden() {
    let r = Registry::new();
    // Register deliberately out of lexicographic order: the exposition
    // must sort, not echo insertion order.
    r.gauge("serve.queue.depth_peak").set(12);
    r.counter("scan.zmap6.probes").add(4096);
    r.counter("collect.observations").add(1024);
    let h = r.histogram("serve.ingest.batch_latency");
    for ns in [300_000u64, 500_000, 700_000] {
        h.record(ns);
    }
    r.counter("scan.alias.detected").add(7);
    r.counter("collect.days").add(36);

    assert_eq!(r.render_text(), GOLDEN);
}

#[test]
fn render_json_is_deterministic() {
    let build = || {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.histogram("lat").record(900);
        r.render_json()
    };
    let j = build();
    assert_eq!(j, build());
    assert!(j.contains("\"a\":1"));
    assert!(j.contains("\"lat\":{\"count\":1"));
}
