//! Property-based tests for the v6addr foundation types.

use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6addr::ipv4_embed::Ipv4Encoding;
use v6addr::{iid_entropy, AddrSet, Iid, Mac, Prefix, PrefixMap};

proptest! {
    /// EUI-64 encode → decode is the identity on unicast MACs.
    #[test]
    fn eui64_round_trips(v in any::<u64>()) {
        let mac = Mac::from_u64(v & 0xffff_ffff_ffff);
        let iid = Iid::from_mac(mac);
        prop_assert!(iid.looks_like_eui64());
        prop_assert_eq!(iid.to_mac(), Some(mac));
    }

    /// Recovering a MAC then re-encoding reproduces the IID exactly.
    #[test]
    fn eui64_decode_then_encode(v in any::<u64>()) {
        let iid = Iid::new((v & 0xffff_ffff_0000_0000) | 0xff_fe00_0000 | (v & 0xff_ffff));
        prop_assert!(iid.looks_like_eui64());
        let mac = iid.to_mac().unwrap();
        prop_assert_eq!(Iid::from_mac(mac), iid);
    }

    /// Normalized entropy is always within [0, 1].
    #[test]
    fn entropy_in_unit_interval(v in any::<u64>()) {
        let h = iid_entropy(Iid::new(v));
        prop_assert!((0.0..=1.0).contains(&h));
    }

    /// Entropy is invariant under nibble permutation (it is a histogram
    /// property): reversing the nibble order preserves it.
    #[test]
    fn entropy_is_permutation_invariant(v in any::<u64>()) {
        let fwd = Iid::new(v);
        let mut rev = 0u64;
        for i in 0..16 {
            rev |= ((v >> (4 * i)) & 0xf) << (60 - 4 * i);
        }
        prop_assert!((iid_entropy(fwd) - iid_entropy(Iid::new(rev))).abs() < 1e-12);
    }

    /// A prefix contains exactly the addresses that share its top bits.
    #[test]
    fn prefix_contains_iff_masked_equal(bits in any::<u128>(), len in 0u8..=128, probe in any::<u128>()) {
        let p = Prefix::from_bits(bits, len);
        let addr = Ipv6Addr::from(probe);
        let expected = probe & Prefix::mask(len) == p.bits();
        prop_assert_eq!(p.contains(addr), expected);
    }

    /// Splitting a prefix yields disjoint covering subprefixes.
    #[test]
    fn prefix_split_partitions(bits in any::<u128>(), len in 0u8..=60, extra in 1u8..=8) {
        let p = Prefix::from_bits(bits, len);
        let sub = len + extra;
        let parts: Vec<Prefix> = p.split(sub).collect();
        prop_assert_eq!(parts.len() as u64, p.subprefix_count(sub));
        for w in parts.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(!w[0].contains_prefix(&w[1]));
        }
        for part in &parts {
            prop_assert!(p.contains_prefix(part));
        }
    }

    /// IPv4 embeddings decode back to what was encoded.
    #[test]
    fn ipv4_encodings_round_trip(v4 in 1u32..) {
        let addr = std::net::Ipv4Addr::from(v4);
        for enc in Ipv4Encoding::ALL {
            prop_assert_eq!(enc.decode(enc.encode(addr)), Some(addr));
        }
    }

    /// AddrSet set algebra obeys inclusion–exclusion on sizes.
    #[test]
    fn addrset_inclusion_exclusion(xs in prop::collection::vec(any::<u128>(), 0..200),
                                   ys in prop::collection::vec(any::<u128>(), 0..200)) {
        let x = AddrSet::from_bits(xs);
        let y = AddrSet::from_bits(ys);
        let i = x.intersection(&y);
        let u = x.union(&y);
        prop_assert_eq!(u.len() + i.len(), x.len() + y.len());
        prop_assert_eq!(i.len() as u64, x.intersection_count(&y));
        prop_assert_eq!(x.difference(&y).len() + i.len(), x.len());
        for addr in i.iter() {
            prop_assert!(x.contains(addr) && y.contains(addr));
        }
    }

    /// Aggregation counts sum to the set size and prefixes are distinct.
    #[test]
    fn addrset_aggregate_consistent(xs in prop::collection::vec(any::<u128>(), 0..200), len in 0u8..=128) {
        let s = AddrSet::from_bits(xs);
        let agg = s.aggregate(len);
        let total: u64 = agg.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total as usize, s.len());
        prop_assert_eq!(agg.len() as u64, s.distinct_prefixes(len));
        for w in agg.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Trie longest-match agrees with a brute-force scan over entries.
    #[test]
    fn trie_lpm_matches_bruteforce(entries in prop::collection::vec((any::<u128>(), 0u8..=64), 1..40),
                                   probe in any::<u128>()) {
        let mut m = PrefixMap::new();
        let mut list = Vec::new();
        for (i, (bits, len)) in entries.iter().enumerate() {
            let p = Prefix::from_bits(*bits, *len);
            m.insert(p, i);
            list.push(p);
        }
        let addr = Ipv6Addr::from(probe);
        let expect = list
            .iter()
            .filter(|p| p.contains(addr))
            .max_by_key(|p| p.len())
            .map(|p| p.len());
        prop_assert_eq!(m.longest_match(addr).map(|(p, _)| p.len()), expect);
    }

    /// MAC NIC offsets invert correctly within an OUI.
    #[test]
    fn mac_offset_inverts(base in any::<u64>(), off in -0x7f_ffffi64..=0x80_0000) {
        let mac = Mac::from_u64(base & 0xffff_ffff_ffff);
        let shifted = mac.wrapping_add_nic(off);
        prop_assert_eq!(shifted.oui(), mac.oui());
        let recovered = mac.nic_offset_to(shifted).unwrap();
        prop_assert_eq!(mac.wrapping_add_nic(recovered), shifted);
    }
}
