//! The 64-bit Interface Identifier — the lower half of an IPv6 address.

use crate::mac::Mac;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;

/// A 64-bit IPv6 Interface Identifier (the low 64 bits of an address).
///
/// ```
/// use v6addr::{Iid, Mac};
///
/// // EUI-64 SLAAC leaks the MAC address into the IID — and back out.
/// let mac: Mac = "00:12:34:56:78:9a".parse().unwrap();
/// let iid = Iid::from_mac(mac);
/// assert!(iid.looks_like_eui64());
/// assert_eq!(iid.to_mac(), Some(mac));
/// ```
///
/// How an IID was chosen is the paper's main fingerprinting signal:
/// privacy-extension clients randomize it, operators hand-assign tiny values
/// like `::1`, and EUI-64 SLAAC embeds the interface MAC address into it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Iid(u64);

impl Iid {
    /// The all-zeros IID (the subnet-router anycast address `::`).
    pub const ZERO: Iid = Iid(0);

    /// Wraps a raw 64-bit value as an IID.
    #[inline]
    pub const fn new(v: u64) -> Self {
        Iid(v)
    }

    /// Extracts the IID (low 64 bits) from a full IPv6 address.
    #[inline]
    pub fn from_addr(addr: Ipv6Addr) -> Self {
        Iid(u128::from(addr) as u64)
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The eight IID bytes, most significant first (byte 0 is bits 63..56).
    #[inline]
    pub const fn bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// The sixteen hex nibbles of the IID, most significant first.
    ///
    /// Entropy is computed over this nibble string, matching how the paper
    /// (and Entropy/IP before it) treat addresses as hex text.
    #[inline]
    pub fn nibbles(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, n) in out.iter_mut().enumerate() {
            *n = ((self.0 >> (60 - 4 * i)) & 0xf) as u8;
        }
        out
    }

    /// True when bytes 3 and 4 are `0xff 0xfe` — the signature that SLAAC
    /// EUI-64 inserts between the two MAC halves.
    ///
    /// A random IID matches with probability 2⁻¹⁶, which is exactly the
    /// false-positive bound the paper uses in §5.1.
    #[inline]
    pub const fn looks_like_eui64(self) -> bool {
        (self.0 >> 24) & 0xffff == 0xfffe
    }

    /// Recovers the embedded MAC address if this IID has the EUI-64 shape.
    ///
    /// Removes the `ff:fe` filler and flips the Universal/Local bit back.
    /// Returns `None` when [`looks_like_eui64`](Self::looks_like_eui64) is
    /// false. Note a `Some` result may still be a coincidence for truly
    /// random IIDs; callers de-noise statistically (see §5.1).
    pub fn to_mac(self) -> Option<Mac> {
        if !self.looks_like_eui64() {
            return None;
        }
        let b = self.bytes();
        Some(Mac::new([b[0] ^ 0x02, b[1], b[2], b[5], b[6], b[7]]))
    }

    /// Builds the EUI-64 IID that SLAAC derives from a MAC address.
    ///
    /// This is the inverse of [`to_mac`](Self::to_mac): insert `ff:fe`
    /// between the OUI and NIC halves, then flip the U/L bit.
    pub fn from_mac(mac: Mac) -> Self {
        let m = mac.bytes();
        Iid(u64::from_be_bytes([
            m[0] ^ 0x02,
            m[1],
            m[2],
            0xff,
            0xfe,
            m[3],
            m[4],
            m[5],
        ]))
    }

    /// True when every bit is zero (the "Zeroes" class of Figure 5).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True when only the least significant byte is set (and is nonzero) —
    /// the "Low Byte" class: operator-assigned addresses like `::1`.
    #[inline]
    pub const fn is_low_byte(self) -> bool {
        self.0 != 0 && self.0 <= 0xff
    }

    /// True when only the two least significant bytes are set, excluding
    /// values already covered by [`is_low_byte`](Self::is_low_byte) — the
    /// "Low 2 Bytes" class (e.g. `::1:0` or `::1234`).
    #[inline]
    pub const fn is_low_two_bytes(self) -> bool {
        self.0 > 0xff && self.0 <= 0xffff
    }

    /// Number of distinct nibble values appearing in the IID; a cheap
    /// structure signal used by tests and generators.
    pub fn distinct_nibbles(self) -> u32 {
        let mut seen = 0u16;
        for n in self.nibbles() {
            seen |= 1 << n;
        }
        seen.count_ones()
    }
}

impl fmt::Display for Iid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bytes();
        write!(
            f,
            "{:02x}{:02x}:{:02x}{:02x}:{:02x}{:02x}:{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]
        )
    }
}

impl fmt::Debug for Iid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Iid({self})")
    }
}

impl From<u64> for Iid {
    fn from(v: u64) -> Self {
        Iid(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_from_addr() {
        let a: Ipv6Addr = "2001:db8::0212:34ff:fe56:789a".parse().unwrap();
        let iid = Iid::from_addr(a);
        assert_eq!(iid.as_u64(), 0x0212_34ff_fe56_789a);
        assert!(iid.looks_like_eui64());
    }

    #[test]
    fn eui64_round_trip() {
        // Example straight from the paper's §3: flip bit 7 of byte 0,
        // insert ff:fe between bytes 3 and 4.
        let mac: Mac = "00:12:34:56:78:9a".parse().unwrap();
        let iid = Iid::from_mac(mac);
        assert_eq!(iid.as_u64(), 0x0212_34ff_fe56_789a);
        assert_eq!(iid.to_mac(), Some(mac));
    }

    #[test]
    fn eui64_round_trip_local_bit_set() {
        let mac: Mac = "02:00:00:00:00:01".parse().unwrap();
        let iid = Iid::from_mac(mac);
        // U/L flip clears the bit in the IID representation.
        assert_eq!(iid.bytes()[0], 0x00);
        assert_eq!(iid.to_mac(), Some(mac));
    }

    #[test]
    fn non_eui64_yields_no_mac() {
        assert_eq!(Iid::new(0x1234_5678_9abc_def0).to_mac(), None);
        assert!(!Iid::new(1).looks_like_eui64());
    }

    #[test]
    fn low_byte_classes() {
        assert!(Iid::ZERO.is_zero());
        assert!(!Iid::ZERO.is_low_byte());
        assert!(Iid::new(0x01).is_low_byte());
        assert!(Iid::new(0xff).is_low_byte());
        assert!(!Iid::new(0x100).is_low_byte());
        assert!(Iid::new(0x100).is_low_two_bytes());
        assert!(Iid::new(0xffff).is_low_two_bytes());
        assert!(!Iid::new(0x1_0000).is_low_two_bytes());
        assert!(!Iid::new(0x42).is_low_two_bytes());
    }

    #[test]
    fn nibbles_order() {
        let iid = Iid::new(0x0123_4567_89ab_cdef);
        assert_eq!(
            iid.nibbles(),
            [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf]
        );
        assert_eq!(iid.distinct_nibbles(), 16);
        assert_eq!(Iid::ZERO.distinct_nibbles(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            Iid::new(0x0212_34ff_fe56_789a).to_string(),
            "0212:34ff:fe56:789a"
        );
    }
}
