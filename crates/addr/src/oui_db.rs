//! A synthetic IEEE-OUI-registry-like database.
//!
//! The real study resolves embedded MACs against the IEEE OUI registry
//! (Table 2). We cannot ship that registry, so this module provides a
//! registry with the same *shape*: the paper's top-10 manufacturers with
//! realistic device-category tags, a long tail of generic vendors, and —
//! crucially — large unregistered ("Unlisted") OUI space, which dominates
//! the paper's observations (73.9% of embedded MACs).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::mac::Oui;

/// Broad device category a vendor predominantly ships.
///
/// Drives which addressing behaviours the simulator assigns to devices with
/// MACs from this vendor, and lets analyses report "makers of popular
/// mobile, smart home, and IoT devices" the way §5.1 does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VendorKind {
    /// Cloud/VM virtual NICs (Amazon in Table 2).
    Cloud,
    /// Smartphones (Samsung, vivo).
    MobilePhone,
    /// Smart-home / consumer audio (Sonos).
    SmartHome,
    /// Set-top boxes and TV sticks (Skyworth, Shenzhen Chuangwei-RGB).
    SetTopBox,
    /// Generic IoT modules (Sunnovo, Hui Zhou Gaoshengda).
    Iot,
    /// Network equipment / CPE routers (Huawei, AVM).
    Router,
    /// Anything else.
    Other,
}

/// One vendor's registry entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VendorInfo {
    /// Manufacturer name as the registry lists it.
    pub name: String,
    /// Predominant device category.
    pub kind: VendorKind,
}

/// An OUI → manufacturer database.
///
/// Lookups that miss return `None`; analyses report those MACs as
/// "Unlisted", mirroring the paper.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OuiDb {
    entries: BTreeMap<Oui, VendorInfo>,
}

impl OuiDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a vendor's OUI.
    pub fn insert(&mut self, oui: Oui, name: impl Into<String>, kind: VendorKind) {
        self.entries.insert(
            oui,
            VendorInfo {
                name: name.into(),
                kind,
            },
        );
    }

    /// Looks up the vendor that owns an OUI.
    pub fn lookup(&self, oui: Oui) -> Option<&VendorInfo> {
        self.entries.get(&oui)
    }

    /// The manufacturer name for an OUI, or `"Unlisted"`.
    pub fn name_or_unlisted(&self, oui: Oui) -> &str {
        self.lookup(oui)
            .map(|v| v.name.as_str())
            .unwrap_or("Unlisted")
    }

    /// Number of registered OUIs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no OUIs are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All OUIs registered to a vendor name (vendors own many blocks).
    pub fn ouis_of(&self, name: &str) -> Vec<Oui> {
        self.entries
            .iter()
            .filter(|(_, v)| v.name == name)
            .map(|(&o, _)| o)
            .collect()
    }

    /// Iterates over all `(oui, vendor)` entries in OUI order.
    pub fn iter(&self) -> impl Iterator<Item = (Oui, &VendorInfo)> {
        self.entries.iter().map(|(&o, v)| (o, v))
    }

    /// Builds the registry used throughout the reproduction.
    ///
    /// Contains the paper's Table 2 manufacturers — each with several OUI
    /// blocks, as real vendors have — plus a generic tail. OUI values are
    /// synthetic (we cannot ship the IEEE registry) except `f0:02:20`,
    /// which the paper calls out as the most common *unregistered* OUI and
    /// therefore deliberately does NOT appear here.
    pub fn builtin() -> Self {
        let mut db = OuiDb::new();
        // (name, kind, number of OUI blocks, base block id)
        let vendors: [(&str, VendorKind, u32, u32); 10] = [
            ("Amazon Technologies Inc.", VendorKind::Cloud, 8, 0x0c_47c9),
            (
                "Samsung Electronics Co.,Ltd",
                VendorKind::MobilePhone,
                12,
                0x08_d42b,
            ),
            ("Sonos, Inc.", VendorKind::SmartHome, 3, 0x00_0e58),
            (
                "vivo Mobile Communication Co., Ltd.",
                VendorKind::MobilePhone,
                6,
                0x50_29f5,
            ),
            (
                "Sunnovo International Limited",
                VendorKind::Iot,
                2,
                0x44_33a4,
            ),
            (
                "Hui Zhou Gaoshengda Technology Co.,LTD",
                VendorKind::Iot,
                4,
                0x18_8c21,
            ),
            ("Huawei Technologies", VendorKind::Router, 14, 0x28_def6),
            (
                "Shenzhen Chuangwei-RGB Electronics",
                VendorKind::SetTopBox,
                3,
                0x70_54b4,
            ),
            (
                "Skyworth Digital Technology (Shenzhen) Co.,Ltd",
                VendorKind::SetTopBox,
                3,
                0x94_ddf8,
            ),
            ("AVM GmbH", VendorKind::Router, 2, 0x3c_a62f),
        ];
        for (name, kind, blocks, base) in vendors {
            for i in 0..blocks {
                // Spread the vendor's blocks pseudo-deterministically
                // through OUI space so they don't collide.
                let oui = Oui::from_u32((base.wrapping_add(i.wrapping_mul(0x01_3377))) & 0xff_ffff);
                db.insert(oui, name, kind);
            }
        }
        // Generic long tail: 64 additional single-block vendors.
        for i in 0..64u32 {
            let oui = Oui::from_u32((0x5a_0000 + i * 0x02_0101) & 0xff_ffff);
            if db.lookup(oui).is_none() {
                db.insert(oui, format!("Generic Vendor {i:02}"), VendorKind::Other);
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_paper_vendors() {
        let db = OuiDb::builtin();
        for name in [
            "Amazon Technologies Inc.",
            "Samsung Electronics Co.,Ltd",
            "Sonos, Inc.",
            "vivo Mobile Communication Co., Ltd.",
            "Sunnovo International Limited",
            "Hui Zhou Gaoshengda Technology Co.,LTD",
            "Huawei Technologies",
            "Shenzhen Chuangwei-RGB Electronics",
            "Skyworth Digital Technology (Shenzhen) Co.,Ltd",
            "AVM GmbH",
        ] {
            assert!(!db.ouis_of(name).is_empty(), "missing vendor {name}");
        }
    }

    #[test]
    fn unregistered_oui_is_unlisted() {
        let db = OuiDb::builtin();
        // The paper's headline unregistered OUI must not resolve.
        let f00220: Oui = "f0:02:20".parse().unwrap();
        assert_eq!(db.lookup(f00220), None);
        assert_eq!(db.name_or_unlisted(f00220), "Unlisted");
    }

    #[test]
    fn vendors_own_multiple_blocks() {
        let db = OuiDb::builtin();
        assert!(db.ouis_of("Huawei Technologies").len() >= 10);
        assert!(db.ouis_of("AVM GmbH").len() >= 2);
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = OuiDb::new();
        assert!(db.is_empty());
        let oui: Oui = "aa:bb:cc".parse().unwrap();
        db.insert(oui, "TestCo", VendorKind::Other);
        assert_eq!(db.lookup(oui).unwrap().name, "TestCo");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn no_colliding_blocks_between_vendors() {
        let db = OuiDb::builtin();
        // Every OUI maps to exactly one vendor by construction (BTreeMap),
        // but also check the big vendors didn't overwrite each other.
        let total: usize = [
            "Amazon Technologies Inc.",
            "Samsung Electronics Co.,Ltd",
            "Huawei Technologies",
            "AVM GmbH",
        ]
        .iter()
        .map(|n| db.ouis_of(n).len())
        .sum();
        assert_eq!(total, 8 + 12 + 14 + 2);
    }
}
