//! The seven address classes of the paper's Figure 5.
//!
//! §4.3 buckets every observed address into exactly one of: Zeroes,
//! Low Byte, Low 2 Bytes, IPv4-mapped, and the three entropy bands. The
//! structural classes take precedence over the entropy bands, and the
//! IPv4-mapped class requires AS-level corroboration that this module can't
//! see — so classification is two-phase: [`classify_structural`] here, and
//! the IPv4 acceptance filter in `v6hitlist::analysis::patterns`.

use serde::{Deserialize, Serialize};

use crate::entropy::{iid_entropy, EntropyClass};
use crate::iid::Iid;
use crate::ipv4_embed;

/// One of the paper's seven mutually exclusive address classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AddressClass {
    /// All-zero IID (`::`).
    Zeroes,
    /// Only the least significant byte set (`::1` … `::ff`).
    LowByte,
    /// Only the two least significant bytes set (`::100` … `::ffff`).
    LowTwoBytes,
    /// An IPv4 address embedded in the IID (after AS-level acceptance).
    Ipv4Mapped,
    /// Normalized IID entropy `< 0.25`.
    LowEntropy,
    /// Normalized IID entropy in `[0.25, 0.75)`.
    MediumEntropy,
    /// Normalized IID entropy `>= 0.75`.
    HighEntropy,
}

impl AddressClass {
    /// All classes in the order the paper's Figure 5 lists them.
    pub const ALL: [AddressClass; 7] = [
        AddressClass::Zeroes,
        AddressClass::LowByte,
        AddressClass::LowTwoBytes,
        AddressClass::Ipv4Mapped,
        AddressClass::HighEntropy,
        AddressClass::MediumEntropy,
        AddressClass::LowEntropy,
    ];

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            AddressClass::Zeroes => "Zeroes",
            AddressClass::LowByte => "Low Byte",
            AddressClass::LowTwoBytes => "Low 2 Bytes",
            AddressClass::Ipv4Mapped => "IPv4 Mapped",
            AddressClass::LowEntropy => "Low Entropy",
            AddressClass::MediumEntropy => "Medium Entropy",
            AddressClass::HighEntropy => "High Entropy",
        }
    }
}

/// Result of the context-free classification pass over one IID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructuralClass {
    /// The class assuming the IPv4 candidacy is ultimately *rejected*.
    pub without_v4: AddressClass,
    /// True when at least one IPv4 encoding decodes; the AS-level filter
    /// decides whether to upgrade the class to [`AddressClass::Ipv4Mapped`].
    pub v4_candidate: bool,
}

/// Classifies one IID without AS context.
///
/// Precedence: Zeroes → Low Byte → Low 2 Bytes → entropy band. IPv4
/// candidacy is reported alongside rather than applied, because the paper
/// only accepts IPv4-mapped classifications with ≥100 instances in the AS
/// and >10% AS share (§4.3).
pub fn classify_structural(iid: Iid) -> StructuralClass {
    let without_v4 = if iid.is_zero() {
        AddressClass::Zeroes
    } else if iid.is_low_byte() {
        AddressClass::LowByte
    } else if iid.is_low_two_bytes() {
        AddressClass::LowTwoBytes
    } else {
        match EntropyClass::of_value(iid_entropy(iid)) {
            EntropyClass::Low => AddressClass::LowEntropy,
            EntropyClass::Medium => AddressClass::MediumEntropy,
            EntropyClass::High => AddressClass::HighEntropy,
        }
    };
    // Low-byte/low-2-byte/zero IIDs never count as IPv4 candidates: the
    // structural classes win and tiny values decode as degenerate v4s.
    let v4_candidate = matches!(
        without_v4,
        AddressClass::LowEntropy | AddressClass::MediumEntropy | AddressClass::HighEntropy
    ) && !ipv4_embed::decode_all(iid).is_empty();
    StructuralClass {
        without_v4,
        v4_candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4_embed::Ipv4Encoding;

    #[test]
    fn zeroes_class() {
        let c = classify_structural(Iid::ZERO);
        assert_eq!(c.without_v4, AddressClass::Zeroes);
        assert!(!c.v4_candidate);
    }

    #[test]
    fn low_byte_class() {
        let c = classify_structural(Iid::new(0x1));
        assert_eq!(c.without_v4, AddressClass::LowByte);
        assert!(!c.v4_candidate);
    }

    #[test]
    fn low_two_bytes_class() {
        let c = classify_structural(Iid::new(0x1234));
        assert_eq!(c.without_v4, AddressClass::LowTwoBytes);
    }

    #[test]
    fn entropy_bands() {
        assert_eq!(
            classify_structural(Iid::new(0x0123_4567_89ab_cdef)).without_v4,
            AddressClass::HighEntropy
        );
        assert_eq!(
            classify_structural(Iid::new(0x0001_0000_0001_0000)).without_v4,
            AddressClass::LowEntropy
        );
    }

    #[test]
    fn v4_candidate_flag() {
        let iid = Ipv4Encoding::LowHex.encode("192.0.2.55".parse().unwrap());
        let c = classify_structural(iid);
        assert!(c.v4_candidate);
        // Without AS acceptance the fallback class is its entropy band.
        assert!(matches!(
            c.without_v4,
            AddressClass::LowEntropy | AddressClass::MediumEntropy
        ));
    }

    #[test]
    fn random_iid_not_v4_candidate() {
        // High 32 bits set and hextets out of range for all encodings.
        let c = classify_structural(Iid::new(0xfedc_ba98_7654_3210));
        assert!(!c.v4_candidate);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(AddressClass::LowByte.label(), "Low Byte");
        assert_eq!(AddressClass::ALL.len(), 7);
    }
}
