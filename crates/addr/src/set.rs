//! Compact sorted sets of IPv6 addresses.
//!
//! Hitlist comparisons (Table 1) need set algebra over millions of
//! addresses: sizes, pairwise intersections, distinct /48 and /64 counts,
//! and per-prefix densities. A sorted `Vec<u128>` beats a hash set here —
//! half the memory, cache-friendly merge intersections, and prefix
//! aggregation is a single linear pass.

use std::net::Ipv6Addr;

use crate::prefix::Prefix;

/// An immutable, deduplicated, sorted set of IPv6 addresses.
///
/// ```
/// use v6addr::AddrSet;
///
/// let set: AddrSet = ["2001:db8:1::1", "2001:db8:1::2", "2001:db8:2::1"]
///     .iter()
///     .map(|s| s.parse().unwrap())
///     .collect();
/// assert_eq!(set.len(), 3);
/// assert_eq!(set.distinct_prefixes(48), 2);
/// assert_eq!(set.density(48), 1.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrSet {
    addrs: Vec<u128>,
}

impl AddrSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from any collection of addresses (sorts + dedups).
    pub fn from_addrs<I: IntoIterator<Item = Ipv6Addr>>(iter: I) -> Self {
        let mut addrs: Vec<u128> = iter.into_iter().map(u128::from).collect();
        addrs.sort_unstable();
        addrs.dedup();
        AddrSet { addrs }
    }

    /// Builds a set from raw 128-bit values (sorts + dedups).
    pub fn from_bits(mut addrs: Vec<u128>) -> Self {
        addrs.sort_unstable();
        addrs.dedup();
        AddrSet { addrs }
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.addrs.binary_search(&u128::from(addr)).is_ok()
    }

    /// Iterates addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.addrs.iter().map(|&b| Ipv6Addr::from(b))
    }

    /// The raw sorted bits (ascending, deduplicated).
    pub fn as_bits(&self) -> &[u128] {
        &self.addrs
    }

    /// Counts addresses present in both sets (linear merge walk).
    pub fn intersection_count(&self, other: &AddrSet) -> u64 {
        // Walk the smaller set with binary search when sizes are wildly
        // asymmetric (common: 10^7-address corpus vs 10^4 hitlist),
        // otherwise do a linear merge.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if large.len() / (small.len().max(1)) > 64 {
            return small
                .addrs
                .iter()
                .filter(|a| large.addrs.binary_search(a).is_ok())
                .count() as u64;
        }
        let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
        while i < small.addrs.len() && j < large.addrs.len() {
            match small.addrs[i].cmp(&large.addrs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// The intersection as a new set.
    pub fn intersection(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.addrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        AddrSet { addrs: out }
    }

    /// The union as a new set.
    pub fn union(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.addrs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.addrs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.addrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.addrs[i..]);
        out.extend_from_slice(&other.addrs[j..]);
        AddrSet { addrs: out }
    }

    /// Addresses in `self` but not `other`.
    pub fn difference(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.addrs.len() {
            if j >= other.addrs.len() {
                out.extend_from_slice(&self.addrs[i..]);
                break;
            }
            match self.addrs[i].cmp(&other.addrs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.addrs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        AddrSet { addrs: out }
    }

    /// Counts distinct enclosing prefixes of length `len` (one pass).
    ///
    /// `distinct_prefixes(48)` is Table 1's "/48s" column.
    pub fn distinct_prefixes(&self, len: u8) -> u64 {
        let mask = Prefix::mask(len);
        let mut n = 0u64;
        let mut last: Option<u128> = None;
        for &a in &self.addrs {
            let p = a & mask;
            if last != Some(p) {
                n += 1;
                last = Some(p);
            }
        }
        n
    }

    /// Aggregates to `(prefix, address count)` pairs at length `len`,
    /// in ascending prefix order.
    ///
    /// Table 1's "Avg. Addrs per /48" is `len() / aggregate(48).len()`;
    /// the public /48-level data release (§3 Ethics) is the prefix list.
    pub fn aggregate(&self, len: u8) -> Vec<(Prefix, u64)> {
        let mask = Prefix::mask(len);
        let mut out: Vec<(Prefix, u64)> = Vec::new();
        for &a in &self.addrs {
            let p = a & mask;
            match out.last_mut() {
                Some((last, n)) if last.bits() == p => *n += 1,
                _ => out.push((Prefix::from_bits(p, len), 1)),
            }
        }
        out
    }

    /// Mean addresses per distinct prefix of length `len`; 0.0 when empty.
    pub fn density(&self, len: u8) -> f64 {
        let p = self.distinct_prefixes(len);
        if p == 0 {
            0.0
        } else {
            self.len() as f64 / p as f64
        }
    }

    /// Addresses falling inside `prefix`, as a slice of the sorted bits.
    pub fn within(&self, prefix: &Prefix) -> &[u128] {
        let lo = prefix.bits();
        let hi = u128::from(prefix.last());
        let start = self.addrs.partition_point(|&a| a < lo);
        let end = self.addrs.partition_point(|&a| a <= hi);
        &self.addrs[start..end]
    }

    /// Splits into `2^shard_bits` shard sets keyed by [`shard48`].
    ///
    /// Every address lands in exactly one shard, all addresses of a /48
    /// stay together (so per-/48 aggregates remain shard-local), and the
    /// union of the shards is this set. Keying on the *low* bits of the
    /// /48 balances the shards even though announced space concentrates
    /// under `2000::/3`.
    pub fn shard_split(&self, shard_bits: u32) -> Vec<AddrSet> {
        let mut out: Vec<Vec<u128>> = vec![Vec::new(); 1usize << shard_bits];
        for &a in &self.addrs {
            out[shard48(a, shard_bits)].push(a);
        }
        // Each per-shard vec inherits the sorted order, so this is O(n).
        out.into_iter().map(|addrs| AddrSet { addrs }).collect()
    }
}

/// The shard index of an address among `2^shard_bits` shards.
///
/// The key is the low `shard_bits` bits of the address's /48 prefix
/// (address bits 80..80+`shard_bits`). High /48 bits would skew badly —
/// nearly all announced IPv6 space shares the `001` top bits — while the
/// low bits vary per allocation.
#[inline]
pub fn shard48(bits: u128, shard_bits: u32) -> usize {
    debug_assert!(shard_bits < 48, "shard key must fit inside the /48");
    ((bits >> 80) as usize) & ((1usize << shard_bits) - 1)
}

impl FromIterator<Ipv6Addr> for AddrSet {
    fn from_iter<I: IntoIterator<Item = Ipv6Addr>>(iter: I) -> Self {
        AddrSet::from_addrs(iter)
    }
}

/// Incremental builder for [`AddrSet`], for streaming collection pipelines.
///
/// Buffers insertions and periodically compacts, keeping memory bounded
/// near the final set size even when the stream contains heavy duplication
/// (NTP clients re-query constantly; the paper saw 7.9 B *unique* addresses
/// out of far more requests).
#[derive(Debug, Default)]
pub struct AddrSetBuilder {
    sorted: Vec<u128>,
    pending: Vec<u128>,
    compact_at: usize,
}

impl AddrSetBuilder {
    /// A new builder with a default compaction threshold.
    pub fn new() -> Self {
        AddrSetBuilder {
            sorted: Vec::new(),
            pending: Vec::new(),
            compact_at: 1 << 20,
        }
    }

    /// Adds one address (duplicates are fine).
    pub fn push(&mut self, addr: Ipv6Addr) {
        self.pending.push(u128::from(addr));
        if self.pending.len() >= self.compact_at {
            self.compact();
        }
    }

    fn compact(&mut self) {
        self.pending.sort_unstable();
        self.pending.dedup();
        let mut merged = Vec::with_capacity(self.sorted.len() + self.pending.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.sorted.len() && j < self.pending.len() {
            match self.sorted[i].cmp(&self.pending[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.sorted[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(self.pending[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.sorted[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&self.pending[j..]);
        self.sorted = merged;
        self.pending.clear();
    }

    /// Number of unique addresses accumulated so far (compacts to count).
    pub fn unique_len(&mut self) -> usize {
        self.compact();
        self.sorted.len()
    }

    /// Finalizes into an [`AddrSet`].
    pub fn build(mut self) -> AddrSet {
        self.compact();
        AddrSet { addrs: self.sorted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_addrs(addrs.iter().map(|s| a(s)))
    }

    #[test]
    fn dedup_and_sort() {
        let s = set(&["2001:db8::2", "2001:db8::1", "2001:db8::2"]);
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![a("2001:db8::1"), a("2001:db8::2")]);
    }

    #[test]
    fn contains() {
        let s = set(&["2001:db8::1", "2001:db8::5"]);
        assert!(s.contains(a("2001:db8::1")));
        assert!(!s.contains(a("2001:db8::2")));
    }

    #[test]
    fn intersection_ops() {
        let x = set(&["2001:db8::1", "2001:db8::2", "2001:db8::3"]);
        let y = set(&["2001:db8::2", "2001:db8::3", "2001:db8::4"]);
        assert_eq!(x.intersection_count(&y), 2);
        assert_eq!(x.intersection(&y).len(), 2);
        assert_eq!(x.union(&y).len(), 4);
        assert_eq!(
            x.difference(&y).iter().collect::<Vec<_>>(),
            vec![a("2001:db8::1")]
        );
        assert_eq!(
            y.difference(&x).iter().collect::<Vec<_>>(),
            vec![a("2001:db8::4")]
        );
    }

    #[test]
    fn intersection_asymmetric_uses_binary_search() {
        // Large set vs tiny set exercises the binary-search path.
        let large = AddrSet::from_bits((0..10_000u128).map(|i| i * 7).collect());
        let small = AddrSet::from_bits(vec![0, 7, 13, 70]);
        assert_eq!(large.intersection_count(&small), 3);
        assert_eq!(small.intersection_count(&large), 3);
    }

    #[test]
    fn empty_set_algebra() {
        let e = AddrSet::new();
        let s = set(&["2001:db8::1"]);
        assert_eq!(e.intersection_count(&s), 0);
        assert_eq!(e.union(&s), s);
        assert_eq!(s.difference(&e), s);
        assert_eq!(e.density(48), 0.0);
    }

    #[test]
    fn distinct_prefixes_and_density() {
        let s = set(&[
            "2001:db8:1::1",
            "2001:db8:1::2",
            "2001:db8:1::3",
            "2001:db8:2::1",
        ]);
        assert_eq!(s.distinct_prefixes(48), 2);
        assert_eq!(s.distinct_prefixes(32), 1);
        assert_eq!(s.distinct_prefixes(128), 4);
        assert!((s.density(48) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_counts() {
        let s = set(&["2001:db8:1::1", "2001:db8:1::2", "2001:db8:2::1"]);
        let agg = s.aggregate(48);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].0, "2001:db8:1::/48".parse().unwrap());
        assert_eq!(agg[0].1, 2);
        assert_eq!(agg[1].1, 1);
        let total: u64 = agg.iter().map(|(_, n)| n).sum();
        assert_eq!(total as usize, s.len());
    }

    #[test]
    fn within_prefix_slicing() {
        let s = set(&["2001:db8:1::1", "2001:db8:1:2::5", "2001:db8:2::1"]);
        let p: Prefix = "2001:db8:1::/48".parse().unwrap();
        assert_eq!(s.within(&p).len(), 2);
        let none: Prefix = "2001:db9::/48".parse().unwrap();
        assert!(s.within(&none).is_empty());
    }

    #[test]
    fn builder_streaming_dedup() {
        let mut b = AddrSetBuilder::new();
        for i in 0..1000u16 {
            b.push(a(&format!("2001:db8::{:x}", i % 100)));
        }
        assert_eq!(b.unique_len(), 100);
        let s = b.build();
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn builder_compaction_boundary() {
        let mut b = AddrSetBuilder::new();
        b.compact_at = 8;
        for i in 0..100u16 {
            b.push(a(&format!("2001:db8::{:x}", i % 10)));
        }
        assert_eq!(b.build().len(), 10);
    }

    #[test]
    fn shard_split_partitions_completely() {
        // Vary the /48's low bits so addresses spread across shards.
        let s = AddrSet::from_addrs((0..256u16).map(|i| a(&format!("2001:db8:{:x}::{:x}", i, i))));
        for shard_bits in [0u32, 2, 4] {
            let shards = s.shard_split(shard_bits);
            assert_eq!(shards.len(), 1 << shard_bits);
            let total: usize = shards.iter().map(|x| x.len()).sum();
            assert_eq!(total, s.len());
            let mut all: Vec<u128> = shards
                .iter()
                .flat_map(|x| x.as_bits().iter().copied())
                .collect();
            all.sort_unstable();
            assert_eq!(all, s.as_bits());
            for (i, shard) in shards.iter().enumerate() {
                for &bits in shard.as_bits() {
                    assert_eq!(shard48(bits, shard_bits), i);
                }
            }
        }
    }

    #[test]
    fn shard48_keeps_a_slash48_together() {
        let s = AddrSet::from_addrs((0..64u16).map(|i| a(&format!("2001:db8:7::{:x}", i))));
        let shards = s.shard_split(4);
        let nonempty: Vec<usize> = (0..shards.len())
            .filter(|&i| !shards[i].is_empty())
            .collect();
        assert_eq!(nonempty.len(), 1, "one /48 must land in exactly one shard");
        assert_eq!(shards[nonempty[0]].len(), s.len());
    }
}
