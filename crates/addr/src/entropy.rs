//! Normalized Shannon entropy of Interface Identifiers.
//!
//! The paper uses the entropy of the sixteen hex nibbles of an IID as a
//! device-type proxy (Figures 1–5): operator-assigned infrastructure
//! addresses (`::1`, `::2`) have near-zero entropy, while privacy-extension
//! client addresses are near 1.0. Entropy is *normalized* by the maximum
//! achievable over 16 nibbles, `log2(16) = 4` bits per nibble.

use serde::{Deserialize, Serialize};

use crate::iid::Iid;

/// Maximum raw Shannon entropy (bits/nibble) of a 16-nibble string.
///
/// With only 16 symbols, a 16-nibble string maxes out at 4 bits per nibble
/// (all nibbles distinct), so normalization divides by 4.
pub const MAX_NIBBLE_ENTROPY: f64 = 4.0;

/// Computes the normalized Shannon entropy of an IID's sixteen nibbles.
///
/// Returns a value in `[0, 1]`. `0.0` means all nibbles identical (e.g.
/// the all-zeros IID); `1.0` means all sixteen nibbles distinct.
///
/// Matches the paper's caveat: this is a proxy for randomness, not a test —
/// `0123:4567:89ab:cdef` scores 1.0 despite being an obvious pattern.
pub fn iid_entropy(iid: Iid) -> f64 {
    let mut counts = [0u8; 16];
    for n in iid.nibbles() {
        counts[n as usize] += 1;
    }
    let mut h = 0.0f64;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / 16.0;
            h -= p * p.log2();
        }
    }
    h / MAX_NIBBLE_ENTROPY
}

/// The paper's three-way entropy banding (Figures 2b and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntropyClass {
    /// Normalized entropy `< 0.25`: manually assigned / structured IIDs.
    Low,
    /// Normalized entropy in `[0.25, 0.75)`: partially structured IIDs.
    Medium,
    /// Normalized entropy `>= 0.75`: random-looking client IIDs.
    High,
}

impl EntropyClass {
    /// Bands a normalized entropy value using the paper's thresholds.
    pub fn of_value(h: f64) -> Self {
        if h < 0.25 {
            EntropyClass::Low
        } else if h < 0.75 {
            EntropyClass::Medium
        } else {
            EntropyClass::High
        }
    }

    /// Bands an IID directly.
    pub fn of_iid(iid: Iid) -> Self {
        Self::of_value(iid_entropy(iid))
    }

    /// Human-readable label as used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            EntropyClass::Low => "Low IID Entropy (< 0.25)",
            EntropyClass::Medium => "Medium IID Entropy (0.25 <= x < 0.75)",
            EntropyClass::High => "High IID Entropy (0.75 <=)",
        }
    }

    /// All classes in ascending order.
    pub const ALL: [EntropyClass; 3] =
        [EntropyClass::Low, EntropyClass::Medium, EntropyClass::High];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iid_has_zero_entropy() {
        assert_eq!(iid_entropy(Iid::ZERO), 0.0);
        assert_eq!(iid_entropy(Iid::new(0x1111_1111_1111_1111)), 0.0);
    }

    #[test]
    fn pandigital_iid_has_unit_entropy() {
        assert!((iid_entropy(Iid::new(0x0123_4567_89ab_cdef)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_byte_iid_is_low_entropy() {
        // ::1 — fifteen zero nibbles and one `1`.
        let h = iid_entropy(Iid::new(1));
        // H = -(15/16)log2(15/16) - (1/16)log2(1/16) ≈ 0.337 bits → 0.084.
        assert!(h > 0.0 && h < 0.25, "h = {h}");
        assert_eq!(EntropyClass::of_iid(Iid::new(1)), EntropyClass::Low);
    }

    #[test]
    fn two_symbol_half_split() {
        // Eight 0s and eight fs: exactly 1 bit/nibble → 0.25 normalized.
        let h = iid_entropy(Iid::new(0x0f0f_0f0f_0f0f_0f0f));
        assert!((h - 0.25).abs() < 1e-12);
        assert_eq!(EntropyClass::of_value(h), EntropyClass::Medium);
    }

    #[test]
    fn entropy_bounds() {
        for v in [
            0u64,
            1,
            0xff,
            0xdead_beef,
            u64::MAX,
            0x0212_34ff_fe56_789a,
            0x5555_5555_5555_5555,
        ] {
            let h = iid_entropy(Iid::new(v));
            assert!(
                (0.0..=1.0).contains(&h),
                "entropy {h} out of range for {v:#x}"
            );
        }
    }

    #[test]
    fn class_thresholds_are_half_open() {
        assert_eq!(EntropyClass::of_value(0.2499), EntropyClass::Low);
        assert_eq!(EntropyClass::of_value(0.25), EntropyClass::Medium);
        assert_eq!(EntropyClass::of_value(0.7499), EntropyClass::Medium);
        assert_eq!(EntropyClass::of_value(0.75), EntropyClass::High);
        assert_eq!(EntropyClass::of_value(1.0), EntropyClass::High);
    }

    #[test]
    fn eui64_iids_are_medium_to_high() {
        // EUI-64 IIDs contain the fixed ff:fe plus vendor structure; they
        // typically land in the medium band — distinguishable from both
        // manual and fully random addresses.
        let iid = Iid::new(0x0212_34ff_fe56_789a);
        let h = iid_entropy(iid);
        assert!(h >= 0.25, "h = {h}");
    }
}
