//! A binary radix trie keyed by IPv6 prefixes.
//!
//! Longest-prefix-match is everywhere in this reproduction: mapping an
//! address to its origin AS, checking probe targets against alias lists
//! (the IPv6 Hitlist's "aliased prefixes" filtering step), and the
//! MaxMind-style geolocation lookups. [`PrefixMap`] provides exact-match
//! insertion and LPM lookup over arbitrary values.

use crate::prefix::Prefix;
use std::net::Ipv6Addr;

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from IPv6 prefixes to values with longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixMap<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bit(bits: u128, i: u8) -> usize {
    ((bits >> (127 - i)) & 1) as usize
}

impl<T> PrefixMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        PrefixMap {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if it was present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup of one prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Removes a prefix, returning its value if it was present.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<T> {
        // Simple non-pruning removal: clears the value but keeps interior
        // nodes. Fine for our workloads, which never churn prefixes.
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix-match: the most specific stored prefix covering
    /// `addr`, with its value.
    pub fn longest_match(&self, addr: Ipv6Addr) -> Option<(Prefix, &T)> {
        let bits = u128::from(addr);
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..128u8 {
            match node.children[bit(bits, i)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::from_bits(bits, len), v))
    }

    /// True when any stored prefix covers `addr`.
    pub fn covers(&self, addr: Ipv6Addr) -> bool {
        self.longest_match(addr).is_some()
    }

    /// The most specific stored prefix covering `prefix` entirely
    /// (i.e. a stored prefix at least as short that contains it).
    pub fn covering_prefix(&self, prefix: &Prefix) -> Option<(Prefix, &T)> {
        let bits = prefix.bits();
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..prefix.len() {
            match node.children[bit(bits, i)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::from_bits(bits, len), v))
    }

    /// Iterates all `(prefix, value)` entries in lexicographic bit order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: vec![(&self.root, 0u128, 0u8)],
        }
    }
}

/// Iterator over a [`PrefixMap`]'s entries.
pub struct Iter<'a, T> {
    stack: Vec<(&'a Node<T>, u128, u8)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, bits, depth)) = self.stack.pop() {
            // Push right child first so the left (0) branch pops first.
            if let Some(c) = node.children[1].as_deref() {
                self.stack
                    .push((c, bits | (1u128 << (127 - depth)), depth + 1));
            }
            if let Some(c) = node.children[0].as_deref() {
                self.stack.push((c, bits, depth + 1));
            }
            if let Some(v) = node.value.as_ref() {
                return Some((Prefix::from_bits(bits, depth), v));
            }
        }
        None
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixMap<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut m = PrefixMap::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_exact() {
        let mut m = PrefixMap::new();
        assert_eq!(m.insert(p("2001:db8::/32"), 1), None);
        assert_eq!(m.insert(p("2001:db8::/32"), 2), Some(1));
        assert_eq!(m.get(&p("2001:db8::/32")), Some(&2));
        assert_eq!(m.get(&p("2001:db8::/33")), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut m = PrefixMap::new();
        m.insert(p("2001:db8::/32"), "coarse");
        m.insert(p("2001:db8:1::/48"), "fine");
        let (pre, v) = m.longest_match(a("2001:db8:1::42")).unwrap();
        assert_eq!(*v, "fine");
        assert_eq!(pre, p("2001:db8:1::/48"));
        let (pre, v) = m.longest_match(a("2001:db8:2::42")).unwrap();
        assert_eq!(*v, "coarse");
        assert_eq!(pre, p("2001:db8::/32"));
        assert!(m.longest_match(a("2001:db9::1")).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut m = PrefixMap::new();
        m.insert(Prefix::ALL, 0);
        assert!(m.covers(a("::1")));
        assert!(m.covers(a("ffff::1")));
    }

    #[test]
    fn remove_clears_value() {
        let mut m = PrefixMap::new();
        m.insert(p("2001:db8::/32"), 7);
        assert_eq!(m.remove(&p("2001:db8::/32")), Some(7));
        assert_eq!(m.remove(&p("2001:db8::/32")), None);
        assert!(m.is_empty());
        assert!(!m.covers(a("2001:db8::1")));
    }

    #[test]
    fn covering_prefix_for_prefixes() {
        let mut m = PrefixMap::new();
        m.insert(p("2001:db8::/32"), ());
        assert!(m.covering_prefix(&p("2001:db8:1::/48")).is_some());
        assert!(m.covering_prefix(&p("2001:db9::/48")).is_none());
        // A /64 entry does not cover its own /48 parent.
        let mut m2: PrefixMap<()> = PrefixMap::new();
        m2.insert(p("2001:db8:1:1::/64"), ());
        assert!(m2.covering_prefix(&p("2001:db8:1::/48")).is_none());
    }

    #[test]
    fn iter_in_bit_order() {
        let mut m = PrefixMap::new();
        m.insert(p("4000::/2"), 3);
        m.insert(p("2001:db8::/32"), 2);
        m.insert(p("::/1"), 1);
        let got: Vec<_> = m.iter().map(|(pre, &v)| (pre, v)).collect();
        assert_eq!(
            got,
            vec![(p("::/1"), 1), (p("2001:db8::/32"), 2), (p("4000::/2"), 3)]
        );
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn from_iterator() {
        let m: PrefixMap<u32> = [(p("2001:db8::/32"), 1), (p("2001:db8:1::/48"), 2)]
            .into_iter()
            .collect();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn nested_values_on_same_path() {
        let mut m = PrefixMap::new();
        m.insert(p("2001:db8::/32"), 32);
        m.insert(p("2001:db8::/48"), 48);
        m.insert(p("2001:db8::/64"), 64);
        let (_, v) = m.longest_match(a("2001:db8::1")).unwrap();
        assert_eq!(*v, 64);
        let (_, v) = m.longest_match(a("2001:db8:0:1::1")).unwrap();
        assert_eq!(*v, 48);
        let (_, v) = m.longest_match(a("2001:db8:1::1")).unwrap();
        assert_eq!(*v, 32);
    }
}
