//! # v6addr — IPv6 address mechanics
//!
//! Foundation crate for the `ipv6-hitlists` workspace, a reproduction of
//! *IPv6 Hitlists at Scale: Be Careful What You Wish For* (SIGCOMM 2023).
//!
//! Everything the paper's analyses do with an IPv6 address lives here:
//!
//! * [`Prefix`] — CIDR prefixes with containment, splitting and aggregation
//!   (the paper aggregates addresses to /48s and studies /64 customer nets).
//! * [`Iid`] — the 64-bit Interface Identifier (lower half of an address),
//!   with nibble access and classification helpers.
//! * [`entropy`] — normalized Shannon entropy of an IID, the paper's proxy
//!   for "is this a random client address or a manually assigned one".
//! * [`Mac`] / [`Oui`] / [`eui64`] — MAC addresses, vendor OUIs, and the
//!   EUI-64 SLAAC embedding that leaks them into IPv6 addresses (§5).
//! * [`OuiDb`](oui_db::OuiDb) — an IEEE-registry-like OUI→manufacturer
//!   database (synthetic; seeded with the paper's Table 2 vendors).
//! * [`ipv4_embed`] — detection of IPv4 addresses embedded in IIDs.
//! * [`pattern`] — the seven address classes of the paper's Figure 5.
//! * [`AddrSet`] — a compact sorted set of addresses with the
//!   set algebra (intersection counts, /48 aggregation) Table 1 needs.
//! * [`PrefixMap`] — a binary radix trie for
//!   longest-prefix-match lookups (AS origin, alias lists, geo DBs).
//!
//! The crate is `std`-only, has no I/O, and every operation is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entropy;
pub mod eui64;
pub mod ipv4_embed;
pub mod mac;
pub mod oui_db;
pub mod pattern;
pub mod prefix;
pub mod set;
pub mod trie;

mod iid;

pub use entropy::{iid_entropy, EntropyClass};
pub use iid::Iid;
pub use mac::{Mac, Oui};
pub use pattern::AddressClass;
pub use prefix::{Prefix, PrefixParseError};
pub use set::{shard48, AddrSet};
pub use trie::PrefixMap;

use std::net::Ipv6Addr;

/// Converts an [`Ipv6Addr`] to its 128-bit big-endian integer form.
#[inline]
pub fn to_u128(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

/// Converts a 128-bit big-endian integer to an [`Ipv6Addr`].
#[inline]
pub fn from_u128(bits: u128) -> Ipv6Addr {
    Ipv6Addr::from(bits)
}

/// Extracts the upper 64 bits (the routing prefix + subnet id) of an address.
#[inline]
pub fn upper64(addr: Ipv6Addr) -> u64 {
    (to_u128(addr) >> 64) as u64
}

/// Extracts the lower 64 bits of an address as an [`Iid`].
#[inline]
pub fn iid(addr: Ipv6Addr) -> Iid {
    Iid::from_addr(addr)
}

/// Builds an address from its upper 64 bits and an [`Iid`].
#[inline]
pub fn join(upper: u64, iid: Iid) -> Ipv6Addr {
    from_u128(((upper as u128) << 64) | iid.as_u64() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_round_trip() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(from_u128(to_u128(a)), a);
    }

    #[test]
    fn upper_and_iid_split() {
        let a: Ipv6Addr = "2001:db8:1:2:3:4:5:6".parse().unwrap();
        assert_eq!(upper64(a), 0x2001_0db8_0001_0002);
        assert_eq!(iid(a).as_u64(), 0x0003_0004_0005_0006);
        assert_eq!(join(upper64(a), iid(a)), a);
    }
}
