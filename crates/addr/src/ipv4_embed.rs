//! Detection of IPv4 addresses embedded in IPv6 Interface Identifiers.
//!
//! Some operators encode an interface's IPv4 address into its IPv6 IID
//! (§2.1, §4.3). The paper checks **three encodings** and then applies an
//! AS-level plausibility filter (≥100 instances in the AS *and* >10% of the
//! AS's addresses) to weed out random IIDs that decode by coincidence; that
//! filter lives in `v6hitlist::analysis::patterns` where AS context exists.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use crate::iid::Iid;

/// The three IID↦IPv4 encodings the detector understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ipv4Encoding {
    /// The IPv4 address occupies the low 32 bits of the IID and the upper
    /// 32 bits are zero: `2001:db8::c000:0201` ⇒ `192.0.2.1`.
    LowHex,
    /// Each IPv4 octet is written in *decimal* into its own hextet:
    /// `2001:db8::192:0:2:1` ⇒ `192.0.2.1` (hextet `0x0192` read as "192").
    DottedDecimal,
    /// Each IPv4 octet occupies the low byte of one of the four hextets
    /// with high bytes zero: `2001:db8::c0:0:2:1` ⇒ `192.0.2.1`.
    BytePerHextet,
}

impl Ipv4Encoding {
    /// All encodings, in the order the detector tries them.
    pub const ALL: [Ipv4Encoding; 3] = [
        Ipv4Encoding::LowHex,
        Ipv4Encoding::DottedDecimal,
        Ipv4Encoding::BytePerHextet,
    ];

    /// Encodes an IPv4 address into an IID under this scheme.
    pub fn encode(self, v4: Ipv4Addr) -> Iid {
        let o = v4.octets();
        match self {
            Ipv4Encoding::LowHex => Iid::new(u32::from(v4) as u64),
            Ipv4Encoding::DottedDecimal => {
                let hextet = |b: u8| -> u64 {
                    // Write the decimal digits of b as hex nibbles: 192 → 0x192.
                    let (h, t, u) = ((b / 100) as u64, ((b / 10) % 10) as u64, (b % 10) as u64);
                    (h << 8) | (t << 4) | u
                };
                Iid::new(
                    (hextet(o[0]) << 48)
                        | (hextet(o[1]) << 32)
                        | (hextet(o[2]) << 16)
                        | hextet(o[3]),
                )
            }
            Ipv4Encoding::BytePerHextet => Iid::new(
                ((o[0] as u64) << 48)
                    | ((o[1] as u64) << 32)
                    | ((o[2] as u64) << 16)
                    | (o[3] as u64),
            ),
        }
    }

    /// Attempts to decode an IPv4 address from an IID under this scheme.
    pub fn decode(self, iid: Iid) -> Option<Ipv4Addr> {
        let v = iid.as_u64();
        match self {
            Ipv4Encoding::LowHex => {
                if v >> 32 != 0 || v == 0 {
                    return None;
                }
                Some(Ipv4Addr::from(v as u32))
            }
            Ipv4Encoding::DottedDecimal => {
                let mut octets = [0u8; 4];
                for (i, o) in octets.iter_mut().enumerate() {
                    let hextet = (v >> (48 - 16 * i)) & 0xffff;
                    *o = decode_decimal_hextet(hextet as u16)?;
                }
                if octets == [0, 0, 0, 0] {
                    return None;
                }
                Some(Ipv4Addr::from(octets))
            }
            Ipv4Encoding::BytePerHextet => {
                let mut octets = [0u8; 4];
                for (i, o) in octets.iter_mut().enumerate() {
                    let hextet = (v >> (48 - 16 * i)) & 0xffff;
                    if hextet > 0xff {
                        return None;
                    }
                    *o = hextet as u8;
                }
                if octets == [0, 0, 0, 0] {
                    return None;
                }
                Some(Ipv4Addr::from(octets))
            }
        }
    }
}

/// Reads a hextet whose hex digits spell a decimal number 0–255.
///
/// `0x0192` → `192`; `0x01ab` → `None` (contains non-decimal nibbles);
/// `0x0999` → `None` (999 > 255).
fn decode_decimal_hextet(h: u16) -> Option<u8> {
    let mut value: u32 = 0;
    for shift in [12u32, 8, 4, 0] {
        let nibble = (h >> shift) & 0xf;
        if nibble > 9 {
            return None;
        }
        value = value * 10 + nibble as u32;
    }
    u8::try_from(value).ok()
}

/// A successful embedded-IPv4 decode: the encoding and the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddedV4 {
    /// Which encoding matched.
    pub encoding: Ipv4Encoding,
    /// The decoded IPv4 address.
    pub v4: Ipv4Addr,
}

/// Tries all three encodings and returns every decode that succeeds.
///
/// More than one can match (e.g. `BytePerHextet` values below 10 per octet
/// also decode as `DottedDecimal`); callers resolve ambiguity with the
/// AS-level plausibility filter.
pub fn decode_all(iid: Iid) -> Vec<EmbeddedV4> {
    Ipv4Encoding::ALL
        .iter()
        .filter_map(|&encoding| encoding.decode(iid).map(|v4| EmbeddedV4 { encoding, v4 }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn low_hex_round_trip() {
        let a = v4("192.0.2.1");
        let iid = Ipv4Encoding::LowHex.encode(a);
        assert_eq!(iid.as_u64(), 0xc000_0201);
        assert_eq!(Ipv4Encoding::LowHex.decode(iid), Some(a));
    }

    #[test]
    fn dotted_decimal_round_trip() {
        let a = v4("192.0.2.1");
        let iid = Ipv4Encoding::DottedDecimal.encode(a);
        assert_eq!(iid.as_u64(), 0x0192_0000_0002_0001);
        assert_eq!(Ipv4Encoding::DottedDecimal.decode(iid), Some(a));
    }

    #[test]
    fn byte_per_hextet_round_trip() {
        let a = v4("192.0.2.1");
        let iid = Ipv4Encoding::BytePerHextet.encode(a);
        assert_eq!(iid.as_u64(), 0x00c0_0000_0002_0001);
        assert_eq!(Ipv4Encoding::BytePerHextet.decode(iid), Some(a));
    }

    #[test]
    fn round_trips_all_encodings() {
        for addr in ["10.1.2.3", "255.255.255.255", "1.0.0.1", "100.64.17.200"] {
            let a = v4(addr);
            for enc in Ipv4Encoding::ALL {
                assert_eq!(enc.decode(enc.encode(a)), Some(a), "{enc:?} {addr}");
            }
        }
    }

    #[test]
    fn decimal_hextet_rejects_hex_digits() {
        assert_eq!(decode_decimal_hextet(0x0192), Some(192));
        assert_eq!(decode_decimal_hextet(0x01ab), None);
        assert_eq!(decode_decimal_hextet(0x0999), None);
        assert_eq!(decode_decimal_hextet(0x0000), Some(0));
        assert_eq!(decode_decimal_hextet(0x0255), Some(255));
        assert_eq!(decode_decimal_hextet(0x0256), None);
    }

    #[test]
    fn zero_iid_decodes_nothing() {
        assert!(decode_all(Iid::ZERO).is_empty());
    }

    #[test]
    fn random_high_iid_fails_low_hex() {
        // Upper 32 bits set → not a LowHex embedding.
        let iid = Iid::new(0xdead_beef_c000_0201);
        assert_eq!(Ipv4Encoding::LowHex.decode(iid), None);
    }

    #[test]
    fn ambiguous_decodes_reported_together() {
        // 1.2.3.4 in BytePerHextet is also a valid DottedDecimal decode.
        let iid = Ipv4Encoding::BytePerHextet.encode(v4("1.2.3.4"));
        let all = decode_all(iid);
        assert!(all.len() >= 2, "{all:?}");
        assert!(all
            .iter()
            .any(|e| e.encoding == Ipv4Encoding::BytePerHextet && e.v4 == v4("1.2.3.4")));
    }
}
