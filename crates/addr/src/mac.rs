//! MAC (EUI-48) addresses and Organizationally Unique Identifiers.
//!
//! The paper's §5 privacy attacks pivot on MAC addresses leaked through
//! EUI-64 SLAAC: the embedded MAC identifies the device vendor (via its
//! [`Oui`]) and — through per-OUI wired→wireless offsets — the WiFi BSSID
//! of the same device, which wardriving databases geolocate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE MAC address (EUI-48).
///
/// Stored big-endian in six bytes, exactly as written on the wire:
/// `aa:bb:cc:dd:ee:ff` has `bytes() == [0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mac([u8; 6]);

impl Mac {
    /// The all-zero MAC, `00:00:00:00:00:00`. Some manufacturers ship it as
    /// a (broken) default, which the paper observes reused across devices.
    pub const ZERO: Mac = Mac([0; 6]);

    /// Builds a MAC from its six big-endian bytes.
    #[inline]
    pub const fn new(bytes: [u8; 6]) -> Self {
        Mac(bytes)
    }

    /// Builds a MAC from the low 48 bits of `v` (big-endian byte order).
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        Mac([
            (v >> 40) as u8,
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ])
    }

    /// Returns the address as a 48-bit integer (upper 16 bits zero).
    #[inline]
    pub const fn as_u64(self) -> u64 {
        ((self.0[0] as u64) << 40)
            | ((self.0[1] as u64) << 32)
            | ((self.0[2] as u64) << 24)
            | ((self.0[3] as u64) << 16)
            | ((self.0[4] as u64) << 8)
            | (self.0[5] as u64)
    }

    /// The six raw bytes, most significant first.
    #[inline]
    pub const fn bytes(self) -> [u8; 6] {
        self.0
    }

    /// The vendor-assigned OUI: the three most significant bytes.
    #[inline]
    pub const fn oui(self) -> Oui {
        Oui([self.0[0], self.0[1], self.0[2]])
    }

    /// The device-specific lower 24 bits ("NIC-specific" portion).
    #[inline]
    pub const fn nic(self) -> u32 {
        ((self.0[3] as u32) << 16) | ((self.0[4] as u32) << 8) | (self.0[5] as u32)
    }

    /// True if the Universal/Local bit (bit 1 of the first byte) is set,
    /// i.e. the address is locally administered rather than vendor-assigned.
    #[inline]
    pub const fn is_local(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// True if the Individual/Group bit is set (multicast MAC).
    #[inline]
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns this MAC with the Universal/Local bit flipped.
    ///
    /// EUI-64 SLAAC flips this bit when embedding a MAC into an IID, so
    /// recovering the original MAC flips it back.
    #[inline]
    pub const fn flip_local_bit(self) -> Self {
        let mut b = self.0;
        b[0] ^= 0x02;
        Mac(b)
    }

    /// Adds a signed offset to the *NIC-specific* 24 bits, wrapping within
    /// the same OUI.
    ///
    /// This models how manufacturers allocate consecutive identifiers to the
    /// interfaces of one device: a CPE router's WiFi BSSID is typically the
    /// wired (WAN) MAC plus a small constant. The paper's geolocation attack
    /// (§5.3) infers that constant per OUI.
    #[inline]
    pub fn wrapping_add_nic(self, offset: i64) -> Self {
        let nic = self.nic() as i64;
        let new = (nic + offset).rem_euclid(1 << 24) as u32;
        let o = self.oui().0;
        Mac([
            o[0],
            o[1],
            o[2],
            (new >> 16) as u8,
            (new >> 8) as u8,
            new as u8,
        ])
    }

    /// Signed NIC-portion distance `other - self`, choosing the
    /// representative in `(-2^23, 2^23]` (shortest wrap-around distance).
    ///
    /// Returns `None` when the two addresses have different OUIs — the
    /// offset inference only applies within a single vendor block.
    pub fn nic_offset_to(self, other: Mac) -> Option<i64> {
        if self.oui() != other.oui() {
            return None;
        }
        let d = (other.nic() as i64 - self.nic() as i64).rem_euclid(1 << 24);
        Some(if d > (1 << 23) { d - (1 << 24) } else { d })
    }
}

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mac({self})")
    }
}

/// Error returned when parsing a [`Mac`] or [`Oui`] from text fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacParseError;

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid MAC address syntax")
    }
}

impl std::error::Error for MacParseError {}

fn parse_hex_bytes(s: &str, out: &mut [u8]) -> Result<(), MacParseError> {
    let mut parts = s.split([':', '-']);
    for slot in out.iter_mut() {
        let p = parts.next().ok_or(MacParseError)?;
        if p.len() != 2 {
            return Err(MacParseError);
        }
        *slot = u8::from_str_radix(p, 16).map_err(|_| MacParseError)?;
    }
    if parts.next().is_some() {
        return Err(MacParseError);
    }
    Ok(())
}

impl FromStr for Mac {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut b = [0u8; 6];
        parse_hex_bytes(s, &mut b)?;
        Ok(Mac(b))
    }
}

/// A 24-bit Organizationally Unique Identifier: the vendor block that the
/// IEEE assigns a manufacturer, i.e. the top three bytes of a [`Mac`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Oui(pub [u8; 3]);

impl Oui {
    /// Builds an OUI from the low 24 bits of `v`.
    #[inline]
    pub const fn from_u32(v: u32) -> Self {
        Oui([(v >> 16) as u8, (v >> 8) as u8, v as u8])
    }

    /// The OUI as a 24-bit integer.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        ((self.0[0] as u32) << 16) | ((self.0[1] as u32) << 8) | (self.0[2] as u32)
    }

    /// Builds the MAC with this OUI and the given 24-bit NIC portion.
    #[inline]
    pub const fn mac(self, nic: u32) -> Mac {
        Mac([
            self.0[0],
            self.0[1],
            self.0[2],
            (nic >> 16) as u8,
            (nic >> 8) as u8,
            nic as u8,
        ])
    }
}

impl fmt::Display for Oui {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}:{:02x}:{:02x}", self.0[0], self.0[1], self.0[2])
    }
}

impl fmt::Debug for Oui {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oui({self})")
    }
}

impl FromStr for Oui {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut b = [0u8; 3];
        parse_hex_bytes(s, &mut b)?;
        Ok(Oui(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let m: Mac = "f0:02:20:ab:cd:ef".parse().unwrap();
        assert_eq!(m.to_string(), "f0:02:20:ab:cd:ef");
        assert_eq!(m.oui().to_string(), "f0:02:20");
        assert_eq!(m.nic(), 0xabcdef);
    }

    #[test]
    fn parses_dash_separators() {
        let m: Mac = "F0-02-20-AB-CD-EF".parse().unwrap();
        assert_eq!(m, Mac::new([0xf0, 0x02, 0x20, 0xab, 0xcd, 0xef]));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!("f0:02:20:ab:cd".parse::<Mac>().is_err());
        assert!("f0:02:20:ab:cd:ef:01".parse::<Mac>().is_err());
        assert!("g0:02:20:ab:cd:ef".parse::<Mac>().is_err());
        assert!("f0:2:20:ab:cd:ef".parse::<Mac>().is_err());
    }

    #[test]
    fn u64_round_trip() {
        let m = Mac::from_u64(0xf00220abcdef);
        assert_eq!(m.as_u64(), 0xf00220abcdef);
        assert_eq!(Mac::from_u64(m.as_u64()), m);
    }

    #[test]
    fn local_bit() {
        let m: Mac = "02:00:00:00:00:01".parse().unwrap();
        assert!(m.is_local());
        assert!(!m.flip_local_bit().is_local());
        assert_eq!(m.flip_local_bit().flip_local_bit(), m);
    }

    #[test]
    fn multicast_bit() {
        let m: Mac = "01:00:5e:00:00:01".parse().unwrap();
        assert!(m.is_multicast());
        assert!(!Mac::ZERO.is_multicast());
    }

    #[test]
    fn nic_offset_within_oui() {
        let a: Mac = "aa:bb:cc:00:00:10".parse().unwrap();
        let b: Mac = "aa:bb:cc:00:00:18".parse().unwrap();
        assert_eq!(a.nic_offset_to(b), Some(8));
        assert_eq!(b.nic_offset_to(a), Some(-8));
        assert_eq!(a.wrapping_add_nic(8), b);
    }

    #[test]
    fn nic_offset_wraps_shortest_way() {
        let a: Mac = "aa:bb:cc:ff:ff:ff".parse().unwrap();
        let b: Mac = "aa:bb:cc:00:00:01".parse().unwrap();
        assert_eq!(a.nic_offset_to(b), Some(2));
        assert_eq!(a.wrapping_add_nic(2), b);
    }

    #[test]
    fn nic_offset_cross_oui_is_none() {
        let a: Mac = "aa:bb:cc:00:00:10".parse().unwrap();
        let b: Mac = "aa:bb:cd:00:00:10".parse().unwrap();
        assert_eq!(a.nic_offset_to(b), None);
    }

    #[test]
    fn oui_mac_construction() {
        let oui: Oui = "f0:02:20".parse().unwrap();
        assert_eq!(oui.mac(0x123456).to_string(), "f0:02:20:12:34:56");
        assert_eq!(oui.as_u32(), 0xf00220);
        assert_eq!(Oui::from_u32(0xf00220), oui);
    }
}
