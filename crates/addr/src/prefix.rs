//! CIDR prefixes over the IPv6 address space.
//!
//! Hitlist work constantly moves between aggregation levels: routed prefixes
//! (≤/32 … /48), customer delegations (/48 … /64), and the /64 subnets that
//! the paper's backscanning and tracking analyses key on. [`Prefix`] is the
//! single canonical representation for all of them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// An IPv6 CIDR prefix in canonical form (host bits forced to zero).
///
/// ```
/// use v6addr::Prefix;
///
/// let p: Prefix = "2001:db8::/32".parse().unwrap();
/// assert!(p.contains("2001:db8:1::1".parse().unwrap()));
/// assert_eq!(p.subprefix(48, 5).to_string(), "2001:db8:5::/48");
/// assert_eq!(p.subprefix_count(48), 1 << 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    bits: u128,
    len: u8,
}

impl Prefix {
    /// The whole IPv6 address space, `::/0`.
    pub const ALL: Prefix = Prefix { bits: 0, len: 0 };

    /// Builds a prefix from an address and length, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range");
        Prefix {
            bits: u128::from(addr) & Self::mask(len),
            len,
        }
    }

    /// Builds a prefix from raw bits and a length, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn from_bits(bits: u128, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range");
        Prefix {
            bits: bits & Self::mask(len),
            len,
        }
    }

    /// The network mask for a given prefix length.
    #[inline]
    pub const fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    /// The network address (all host bits zero).
    #[inline]
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits)
    }

    /// The network address as raw bits.
    #[inline]
    pub const fn bits(&self) -> u128 {
        self.bits
    }

    /// The prefix length.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a /0 is ::/0, not "empty"
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True only for `::/0` (mirrors the `len`/`is_empty` convention).
    #[inline]
    pub const fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// The last address covered by this prefix.
    #[inline]
    pub fn last(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits | !Self::mask(self.len))
    }

    /// Number of addresses covered, saturating at `u128::MAX` for `::/0`.
    #[inline]
    pub fn size(&self) -> u128 {
        if self.len == 0 {
            u128::MAX
        } else {
            1u128 << (128 - self.len)
        }
    }

    /// True if `addr` falls inside this prefix.
    #[inline]
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        u128::from(addr) & Self::mask(self.len) == self.bits
    }

    /// True if `other` is fully contained in (or equal to) this prefix.
    #[inline]
    pub fn contains_prefix(&self, other: &Prefix) -> bool {
        other.len >= self.len && other.bits & Self::mask(self.len) == self.bits
    }

    /// The enclosing prefix of `addr` at length `len` (e.g. "the /48 of x").
    #[inline]
    pub fn of(addr: Ipv6Addr, len: u8) -> Self {
        Prefix::new(addr, len)
    }

    /// This prefix re-truncated to a shorter length.
    ///
    /// # Panics
    /// Panics if `len` is longer than the current length.
    pub fn truncate(&self, len: u8) -> Self {
        assert!(len <= self.len, "cannot truncate /{} to /{}", self.len, len);
        Prefix::from_bits(self.bits, len)
    }

    /// The `i`-th subprefix of length `sub_len`.
    ///
    /// # Panics
    /// Panics if `sub_len < self.len`, if the split is wider than 2⁶⁴
    /// subnets, or if `i` is out of range.
    pub fn subprefix(&self, sub_len: u8, i: u64) -> Self {
        assert!(sub_len >= self.len && sub_len <= 128);
        let width = sub_len - self.len;
        assert!(width <= 64, "split of {width} bits is too wide to index");
        if width < 64 {
            assert!(i < 1u64 << width, "subprefix index {i} out of range");
        }
        Prefix {
            bits: self.bits | ((i as u128) << (128 - sub_len)),
            len: sub_len,
        }
    }

    /// Number of subprefixes of length `sub_len`, saturating at `u64::MAX`.
    pub fn subprefix_count(&self, sub_len: u8) -> u64 {
        assert!(sub_len >= self.len && sub_len <= 128);
        let width = sub_len - self.len;
        if width >= 64 {
            u64::MAX
        } else {
            1u64 << width
        }
    }

    /// Iterates over all subprefixes of length `sub_len` in address order.
    ///
    /// # Panics
    /// Panics if the split is wider than 2⁶⁴ subnets.
    pub fn split(&self, sub_len: u8) -> impl Iterator<Item = Prefix> + '_ {
        let n = self.subprefix_count(sub_len);
        assert!(n < u64::MAX, "split too wide to enumerate");
        (0..n).map(move |i| self.subprefix(sub_len, i))
    }

    /// The address at host-offset `i` within this prefix.
    ///
    /// `offset(0)` is the network address itself, the `::` of the prefix —
    /// and `offset(1)` is the `::1` address that CAIDA's routed /48
    /// methodology probes in every /48.
    pub fn offset(&self, i: u128) -> Ipv6Addr {
        debug_assert!(self.len == 0 || i < self.size(), "offset out of range");
        Ipv6Addr::from(self.bits | (i & !Self::mask(self.len)))
    }

    /// The single shard (keyed as in [`crate::set::shard48`]) containing
    /// every address of this prefix, or `None` when the prefix is shorter
    /// than /48 and may span several shards.
    ///
    /// A prefix of length `L` fixes address bits `128-L..128`; the shard
    /// key occupies bits `80..80+shard_bits`, so the key is fully
    /// determined exactly when `L >= 48`.
    pub fn shard48(&self, shard_bits: u32) -> Option<usize> {
        if self.len >= 48 {
            Some(crate::set::shard48(self.bits, shard_bits))
        } else {
            None
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

/// Error returned when parsing a [`Prefix`] from `addr/len` text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The string had no `/` separator.
    MissingSlash,
    /// The address part did not parse as an IPv6 address.
    BadAddress,
    /// The length part was not an integer in `0..=128`.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::MissingSlash => f.write_str("missing '/' in prefix"),
            PrefixParseError::BadAddress => f.write_str("invalid IPv6 address in prefix"),
            PrefixParseError::BadLength => f.write_str("invalid prefix length"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        let addr: Ipv6Addr = addr.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 128 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let pre = p("2001:db8::1234/32");
        assert_eq!(pre.to_string(), "2001:db8::/32");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "2001:db8::".parse::<Prefix>(),
            Err(PrefixParseError::MissingSlash)
        );
        assert_eq!(
            "zz::/32".parse::<Prefix>(),
            Err(PrefixParseError::BadAddress)
        );
        assert_eq!(
            "2001:db8::/129".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
        assert_eq!(
            "2001:db8::/x".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
    }

    #[test]
    fn containment() {
        let pre = p("2001:db8::/32");
        assert!(pre.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!pre.contains("2001:db9::1".parse().unwrap()));
        assert!(pre.contains_prefix(&p("2001:db8:1::/48")));
        assert!(!pre.contains_prefix(&p("2001:db9::/48")));
        assert!(pre.contains_prefix(&pre));
        assert!(!p("2001:db8::/48").contains_prefix(&pre));
        assert!(Prefix::ALL.contains_prefix(&pre));
    }

    #[test]
    fn split_into_48s() {
        let pre = p("2001:db8::/46");
        let subs: Vec<_> = pre.split(48).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("2001:db8::/48"));
        assert_eq!(subs[3], p("2001:db8:3::/48"));
        for s in &subs {
            assert!(pre.contains_prefix(s));
        }
    }

    #[test]
    fn subprefix_count_saturates() {
        assert_eq!(p("2001:db8::/32").subprefix_count(48), 1 << 16);
        assert_eq!(Prefix::ALL.subprefix_count(64), u64::MAX);
    }

    #[test]
    fn offset_addresses() {
        let pre = p("2001:db8:1::/48");
        assert_eq!(pre.offset(0), "2001:db8:1::".parse::<Ipv6Addr>().unwrap());
        assert_eq!(pre.offset(1), "2001:db8:1::1".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn last_and_size() {
        let pre = p("2001:db8::/126");
        assert_eq!(pre.size(), 4);
        assert_eq!(pre.last(), "2001:db8::3".parse::<Ipv6Addr>().unwrap());
        assert_eq!(Prefix::ALL.size(), u128::MAX);
    }

    #[test]
    fn truncate_to_shorter() {
        let pre = p("2001:db8:1:2::/64");
        assert_eq!(pre.truncate(48), p("2001:db8:1::/48"));
        assert_eq!(pre.truncate(64), pre);
    }

    #[test]
    #[should_panic]
    fn truncate_to_longer_panics() {
        let _ = p("2001:db8::/32").truncate(48);
    }

    #[test]
    fn enclosing_prefix_of_address() {
        let a: Ipv6Addr = "2001:db8:aaaa:bbbb:1:2:3:4".parse().unwrap();
        assert_eq!(Prefix::of(a, 48), p("2001:db8:aaaa::/48"));
        assert_eq!(Prefix::of(a, 64), p("2001:db8:aaaa:bbbb::/64"));
    }

    #[test]
    fn ordering_is_by_bits_then_len() {
        let mut v = vec![p("2001:db8:1::/48"), p("2001:db8::/32"), p("2001:db8::/48")];
        v.sort();
        assert_eq!(
            v,
            vec![p("2001:db8::/32"), p("2001:db8::/48"), p("2001:db8:1::/48")]
        );
    }

    #[test]
    fn shard48_agrees_with_member_addresses() {
        let pre = p("2001:db8:77::/48");
        for shard_bits in [0u32, 2, 4] {
            let shard = pre.shard48(shard_bits).expect("/48 has one shard");
            for i in [0u128, 1, 999] {
                let addr = pre.offset(i);
                assert_eq!(crate::set::shard48(u128::from(addr), shard_bits), shard);
            }
        }
        // Longer-than-/48 prefixes are shard-local too; shorter are not.
        assert!(p("2001:db8:77:1::/64").shard48(4).is_some());
        assert_eq!(
            p("2001:db8:77::/48").shard48(4),
            p("2001:db8:77:1::/64").shard48(4)
        );
        assert!(p("2001:db8::/32").shard48(4).is_none());
    }
}
