//! EUI-64 SLAAC address analysis helpers.
//!
//! [`Iid::from_mac`]/[`Iid::to_mac`](crate::Iid::to_mac) implement the raw
//! transform; this module layers on the corpus-level statistics the paper
//! uses in §5.1 to argue that observed EUI-64 addresses are real and not
//! random-IID false positives.

use crate::iid::Iid;
use crate::mac::Mac;
use std::net::Ipv6Addr;

/// Expected number of *random* IIDs that would coincidentally carry the
/// `ff:fe` EUI-64 signature in a corpus of `n` uniformly random IIDs.
///
/// The signature occupies 16 fixed bits, so the rate is 2⁻¹⁶. The paper
/// applies this to its 7.9 B corpus to bound false positives below 121 k
/// against 238 M observed — proof the EUI-64 population is real.
pub fn expected_random_eui64(n: u64) -> f64 {
    n as f64 / 65_536.0
}

/// Extracts the embedded MAC from a full address, if it has EUI-64 shape.
pub fn extract_mac(addr: Ipv6Addr) -> Option<Mac> {
    Iid::from_addr(addr).to_mac()
}

/// Builds the SLAAC EUI-64 address for a MAC inside a /64 prefix.
///
/// # Panics
/// Panics if `prefix_upper64` is not the upper half of a /64 (this is a
/// plain u64, so it always is; the function exists for symmetry and reads
/// better at call sites than manual bit twiddling).
pub fn slaac_address(prefix_upper64: u64, mac: Mac) -> Ipv6Addr {
    crate::join(prefix_upper64, Iid::from_mac(mac))
}

/// Outcome of screening one observed IID for EUI-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eui64Screen {
    /// No `ff:fe` signature: definitely not EUI-64.
    NotEui64,
    /// Signature present; carries the recovered MAC.
    Candidate(Mac),
}

/// Screens an IID, returning the recovered MAC when the signature matches.
pub fn screen(iid: Iid) -> Eui64Screen {
    match iid.to_mac() {
        Some(mac) => Eui64Screen::Candidate(mac),
        None => Eui64Screen::NotEui64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_false_positive_bound() {
        // §5.1: 7,914,066,999 / 65,536 < 121,000.
        let fp = expected_random_eui64(7_914_066_999);
        assert!(fp < 121_000.0);
        assert!(fp > 120_000.0);
    }

    #[test]
    fn slaac_address_construction() {
        let mac: Mac = "00:12:34:56:78:9a".parse().unwrap();
        let addr = slaac_address(0x2001_0db8_0000_0001, mac);
        assert_eq!(
            addr,
            "2001:db8:0:1:212:34ff:fe56:789a"
                .parse::<Ipv6Addr>()
                .unwrap()
        );
        assert_eq!(extract_mac(addr), Some(mac));
    }

    #[test]
    fn screen_rejects_random() {
        assert_eq!(
            screen(Iid::new(0xdead_beef_cafe_f00d)),
            Eui64Screen::NotEui64
        );
    }

    #[test]
    fn screen_accepts_signature() {
        let mac: Mac = "a8:aa:20:01:02:03".parse().unwrap();
        assert_eq!(screen(Iid::from_mac(mac)), Eui64Screen::Candidate(mac));
    }
}
