//! Alias discovery by backscanning (§4.2): probe a random address next to
//! every NTP client and watch aliased /64s light up — including aliased
//! client networks that active-only measurement can never tell apart from
//! live hosts.
//!
//! ```sh
//! cargo run --release --example alias_discovery
//! ```

use ipv6_hitlists::hitlist::analysis::backscan::{alias_findings, backscan, BackscanConfig};
use ipv6_hitlists::hitlist::collect::active::collect_hitlist;
use ipv6_hitlists::hitlist::NtpCorpus;
use ipv6_hitlists::netsim::{World, WorldConfig};
use ipv6_hitlists::scan::{AliasList, HitlistCampaignConfig};

fn main() {
    let world = World::build(WorldConfig::tiny(), 55);

    // The comparison baseline: a hitlist campaign with its alias list.
    eprintln!("running hitlist campaign (for its alias list) …");
    let hitlist = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let hl_aliases = AliasList::from_prefixes(hitlist.campaign.aliased.iter().copied());
    println!("hitlist alias list: {} prefixes", hl_aliases.len());

    // The backscan week: five servers, ten-minute batches, ICMPv6 only.
    eprintln!("running backscan week …");
    let result = backscan(&world, &BackscanConfig::default());
    println!(
        "clients probed: {} ({:.0}% responsive)",
        result.clients_probed,
        result.client_response_rate() * 100.0
    );
    println!(
        "random same-/64 probes: {} ({:.1}% responsive → aliases)",
        result.random_probed,
        result.random_response_rate() * 100.0
    );
    println!("aliased /64s inferred: {}", result.aliased_64s.len());

    // Cross-reference with the hitlist's view of the world.
    eprintln!("collecting passive corpus for cross-reference …");
    let corpus = NtpCorpus::collect_study(&world);
    let findings = alias_findings(
        &world,
        &result,
        &hl_aliases,
        &corpus.dataset().addr_set(),
        &hitlist.dataset.addr_set(),
    );
    println!(
        "\nof those aliased /64s: {} already on the hitlist alias list, {} NEW",
        findings.known_to_hitlist, findings.new_aliased
    );
    println!(
        "NTP clients living inside aliased /64s: {} (from {} ASes)\n\
         hitlist addresses in the same /64s: {}",
        findings.ntp_clients_in_aliased, findings.client_ases, findings.hitlist_clients_in_aliased
    );
    println!(
        "\nActive measurement cannot distinguish those clients from alias\n\
         responses — passive collection is the only way to see them (§4.2)."
    );
}
