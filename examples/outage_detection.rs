//! Outage detection: the passive corpus as an Internet-health sensor —
//! one of the applications the paper's introduction motivates for live-
//! address knowledge.
//!
//! We inject a ground-truth outage into the synthetic Internet, collect
//! the corpus, and let the detector find it from query volumes alone.
//!
//! ```sh
//! cargo run --release --example outage_detection
//! ```

use ipv6_hitlists::hitlist::analysis::outage::{
    daily_series, detect_outages, OutageDetectorConfig,
};
use ipv6_hitlists::hitlist::NtpCorpus;
use ipv6_hitlists::netsim::config::OutageSpec;
use ipv6_hitlists::netsim::{SimDuration, SimTime, World, WorldConfig};

fn main() {
    // Ground truth: ChinaNet goes dark for four days starting day 25.
    let mut cfg = WorldConfig::tiny();
    cfg.outages.push(OutageSpec {
        as_name: "ChinaNet".into(),
        start_day: 25,
        duration_days: 4,
    });
    let world = World::build(cfg, 2023);

    eprintln!("collecting 45 days of passive NTP data …");
    let corpus = NtpCorpus::collect(&world, SimTime::START, SimDuration::days(45));

    // Show the affected AS's daily series around the event.
    let chinanet = world
        .ases
        .iter()
        .find(|a| a.info.name == "ChinaNet")
        .expect("ChinaNet is in the catalog");
    let series = daily_series(&corpus);
    if let Some(s) = series.get(&chinanet.index) {
        println!("ChinaNet daily NTP query volume (days 20–34):");
        for (day, n) in s.iter().enumerate().take(35).skip(20) {
            let bar = "#".repeat((*n / 8).min(60) as usize);
            println!("  day {day:>2}: {n:>5} {bar}");
        }
    }

    // The detector sees only the corpus.
    let found = detect_outages(&world, &corpus, &OutageDetectorConfig::default());
    println!("\ndetected outages:");
    for o in &found {
        println!(
            "  {} dark from day {} for {} days (baseline {} queries/day)",
            o.as_name, o.start_day, o.duration_days, o.baseline
        );
    }
    assert!(
        found
            .iter()
            .any(|o| o.as_name == "ChinaNet" && o.start_day.abs_diff(25) <= 1),
        "the injected outage was missed"
    );
    println!(
        "\nThe injected event was recovered from passive NTP metadata alone\n\
         — no probing, no cooperation from the affected network."
    );
}
