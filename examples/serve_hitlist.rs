//! Serving a hitlist: turn a campaign's weekly publications into a
//! concurrently queryable store and ask it the questions a hitlist
//! consumer would.
//!
//! ```sh
//! cargo run --release --example serve_hitlist
//! ```

use std::sync::Arc;

use ipv6_hitlists::addr::Prefix;
use ipv6_hitlists::hitlist::collect::active::collect_hitlist;
use ipv6_hitlists::hitlist::HitlistService;
use ipv6_hitlists::netsim::{World, WorldConfig};
use ipv6_hitlists::scan::HitlistCampaignConfig;
use ipv6_hitlists::serve::{HitlistStore, Ingestor, PublicationUpdate, QueryEngine};

fn main() {
    // 1. Run a 3-week hitlist campaign on a tiny synthetic Internet.
    let world = World::build(WorldConfig::tiny(), 42);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("IPv6 Hitlist Service", &hl.campaign);
    println!(
        "campaign: {} weekly releases, {} responsive addresses, {} aliased prefixes",
        service.snapshots.len(),
        service.total_responsive(),
        service.aliased.len()
    );

    // 2. Publish it through the concurrent ingestion pipeline: weekly
    //    releases flow through bounded channels into sharded, immutable
    //    snapshots; each update becomes a new epoch.
    let store = Arc::new(HitlistStore::new(&service.name, 8));
    let ingest = Ingestor::default().spawn(store.clone());
    ingest
        .submit(PublicationUpdate::Service(service.clone()))
        .expect("ingest pipeline alive");
    let stats = ingest.finish();
    println!(
        "ingested: {} unique addresses ({} duplicates coalesced), epoch {}",
        stats.unique_addresses,
        stats.duplicates,
        store.epoch()
    );

    // 3. Query it. Readers clone an Arc to the current snapshot, so
    //    these calls never block publication (and vice versa).
    let engine = QueryEngine::new(store.clone());
    let sample = service.snapshots[0].new_responsive[0];

    let ans = engine.lookup(sample);
    println!(
        "lookup {sample}: present={}, first seen week {:?}, aliased={}",
        ans.present,
        ans.first_week,
        ans.alias.is_some()
    );

    let net = Prefix::of(sample, 48);
    println!(
        "density: {} responsive addresses in {net}",
        engine.count_within(&net)
    );

    let first_week = service.snapshots.first().map(|s| s.week).unwrap_or(0);
    println!(
        "weekly diff: {} addresses are new since the week-{first_week} release",
        engine.new_since(first_week)
    );

    let batch: Vec<_> = service
        .responsive_as_of(u64::MAX)
        .into_iter()
        .take(64)
        .collect();
    let ans = engine.batch_lookup(&batch);
    println!(
        "batch of {}: {} present, {} aliased (served by epoch {})",
        batch.len(),
        ans.present,
        ans.aliased,
        ans.epoch
    );

    print!("{}", store.metrics().render_text());
}
