//! The §5.2 tracking attack: follow EUI-64 devices across networks using
//! nothing but a passively collected corpus.
//!
//! ```sh
//! cargo run --release --example tracking_attack
//! ```

use ipv6_hitlists::hitlist::analysis::tracking::{analyze, exemplars};
use ipv6_hitlists::hitlist::NtpCorpus;
use ipv6_hitlists::netsim::{World, WorldConfig};

fn main() {
    let world = World::build(WorldConfig::tiny(), 99);
    eprintln!("collecting passive NTP corpus (full study window) …");
    let corpus = NtpCorpus::collect_study(&world);

    let t = analyze(&world, &corpus, 10);
    println!(
        "corpus: {} unique addresses; {} EUI-64 ({:.1}%), {} embedded MACs",
        t.stats.corpus_addresses,
        t.stats.eui64_addresses,
        t.stats.fraction() * 100.0,
        t.stats.unique_macs
    );
    println!(
        "expected EUI-64 lookalikes if IIDs were random: {:.1} — the\n\
         population is real, and every one of these MACs is trackable.",
        t.stats.expected_random
    );

    println!("\ntop manufacturers of leaked MACs (Table 2):");
    for m in t.manufacturers.iter().take(5) {
        println!("  {:<48} {}", m.manufacturer, m.macs);
    }

    println!(
        "\n{} MACs ({:.1}%) appeared in ≥2 /64s — classified:",
        t.multi_prefix_macs,
        t.multi_prefix_macs as f64 / t.stats.unique_macs.max(1) as f64 * 100.0
    );
    for &(class, n) in &t.class_counts {
        println!("  {:<28} {n}", class.label());
    }

    println!("\nexemplar timelines (the paper's Figure 7):");
    for ex in exemplars(&world, &t) {
        println!("-- {} ({:?})", ex.mac, ex.class);
        for (day, prefix, as_name) in ex.timeline.iter().take(8) {
            println!("   day {day:>3}: /64 #{prefix} in {as_name}");
        }
    }
    println!(
        "\nEvery line above tracks one physical device across prefixes,\n\
         providers and networks — from NTP metadata alone. This is the\n\
         paper's case for releasing hitlists at /48 granularity only."
    );
}
