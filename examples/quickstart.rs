//! Quickstart: build a small synthetic Internet, run the passive NTP
//! collection for a simulated month, and look at what a hitlist built
//! this way contains.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ipv6_hitlists::hitlist::analysis::lifetime::address_lifetimes;
use ipv6_hitlists::hitlist::{NtpCorpus, Release48};
use ipv6_hitlists::netsim::{SimDuration, SimTime, World, WorldConfig};

fn main() {
    // 1. A deterministic synthetic Internet (seeded — rebuildable).
    let world = World::build(WorldConfig::tiny(), 42);
    println!(
        "world: {} ASes, {} home networks, {} devices, {} NTP vantage points",
        world.ases.len(),
        world.networks.len(),
        world.device_count(),
        world.vantage_points.len()
    );

    // 2. Run the 27 pool servers passively for a simulated month.
    let corpus = NtpCorpus::collect(&world, SimTime::START, SimDuration::days(30));
    let dataset = corpus.dataset();
    println!(
        "passive collection: {} NTP queries from {} unique IPv6 addresses",
        corpus.len(),
        dataset.len()
    );

    // 3. What does a passively collected hitlist look like?
    println!(
        "coverage: {} distinct /48s, {:.1} addresses per /48, {} origin ASes",
        dataset.distinct_48s(),
        dataset.density_per_48(),
        dataset.distinct_asns(&world).len()
    );
    let lt = address_lifetimes(&dataset);
    println!(
        "ephemerality: {:.0}% of addresses observed exactly once",
        lt.seen_once * 100.0
    );

    // 4. The ethically releasable artifact: /48s only, no IIDs.
    let release = Release48::from_addr_set("quickstart corpus", &dataset.addr_set());
    assert!(release.verify_privacy_invariant());
    println!(
        "release: {} /48 prefixes (privacy invariant holds); first three:",
        release.len()
    );
    for p in release.prefixes.iter().take(3) {
        println!("  {p}");
    }
}
