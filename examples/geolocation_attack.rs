//! The §5.3 geolocation attack: join MACs leaked through EUI-64 IPv6
//! addresses against a wardriving database of geolocated WiFi BSSIDs.
//!
//! The attack never sees the simulator's hidden wired→wireless offset; it
//! infers it per OUI from pair statistics, exactly as IPvSeeYou does.
//!
//! ```sh
//! cargo run --release --example geolocation_attack
//! ```

use ipv6_hitlists::addr::Iid;
use ipv6_hitlists::geo::WardriveDb;
use ipv6_hitlists::hitlist::analysis::geoloc::{geolocate, GeolocConfig};
use ipv6_hitlists::hitlist::NtpCorpus;
use ipv6_hitlists::netsim::{World, WorldConfig};

fn main() {
    let world = World::build(WorldConfig::tiny(), 123);

    // The attacker's only inputs: a passive corpus and public databases.
    eprintln!("collecting passive NTP corpus …");
    let corpus = NtpCorpus::collect_study(&world);
    let wardrive = WardriveDb::collect(&world);
    println!(
        "wardriving DB: {} geolocated BSSIDs across {} OUIs",
        wardrive.len(),
        wardrive.ouis().len()
    );

    // Step 0: extract every MAC leaked through an EUI-64 IID.
    let mut macs: Vec<ipv6_hitlists::addr::Mac> = corpus
        .observations
        .iter()
        .filter_map(|o| Iid::new(o.addr as u64).to_mac())
        .collect();
    macs.sort_unstable();
    macs.dedup();
    println!("EUI-64 leaked MACs in corpus: {}", macs.len());

    // Steps 1+2: infer per-OUI offsets, join into the BSSID database.
    let cfg = GeolocConfig {
        min_pairs: 4,
        ..Default::default()
    };
    let report = geolocate(&macs, &wardrive, &cfg);
    println!(
        "inferred offsets for {} OUIs; geolocated {} devices",
        report.offsets.len(),
        report.geolocated.len()
    );
    for o in report.offsets.iter().take(5) {
        println!(
            "  OUI {}  offset {:+}  ({} of {} pairs agreed)",
            o.oui, o.offset, o.votes, o.pairs
        );
    }

    println!("\ncountry distribution of geolocated devices:");
    for (c, n) in report.country_histogram(&world).iter().take(5) {
        println!("  {c}  {n}");
    }
    if let Some(err) = report.validate(&world) {
        println!(
            "\nvalidation vs simulator ground truth: median error {err:.1} km\n\
             — street-level geolocation from a *passive* NTP corpus."
        );
    }
    println!("\nDefense (the paper's plea): stop using EUI-64; randomize IIDs.");
}
