//! Passive vs. active: reproduce the paper's core comparison (§4.1) on a
//! small world — run the passive NTP collection alongside the two active
//! baselines (IPv6-Hitlist-style and CAIDA-routed-/48-style campaigns)
//! and print the Table-1-shaped result.
//!
//! ```sh
//! cargo run --release --example passive_vs_active
//! ```

use ipv6_hitlists::hitlist::analysis::compare::table1;
use ipv6_hitlists::hitlist::analysis::entropy_dist::entropy_cdf;
use ipv6_hitlists::hitlist::collect::active::{collect_caida, collect_hitlist};
use ipv6_hitlists::hitlist::NtpCorpus;
use ipv6_hitlists::netsim::{World, WorldConfig};
use ipv6_hitlists::scan::{CaidaCampaignConfig, HitlistCampaignConfig};

fn main() {
    let world = World::build(WorldConfig::tiny(), 7);

    // Passive: 27 NTP pool servers, full study window.
    eprintln!("collecting passive NTP corpus …");
    let corpus = NtpCorpus::collect_study(&world);
    let ntp = corpus.dataset();

    // Active baseline 1: weekly hitlist campaign (seeds + TGA + low-IID
    // probing + traceroute + alias filtering).
    eprintln!("running IPv6-Hitlist-style campaign …");
    let hitlist = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 4,
            ..Default::default()
        },
    );

    // Active baseline 2: Yarrp to ::1 of sampled routed /48s.
    eprintln!("running CAIDA-routed-/48-style campaign …");
    let caida = collect_caida(
        &world,
        1,
        &CaidaCampaignConfig {
            stride: 256,
            ..Default::default()
        },
    );

    // The comparison (Table 1 of the paper).
    let t = table1(&world, &ntp, &[&hitlist.dataset, &caida.dataset]);
    println!("\n{}", t.render());

    // The device-type lens (Figure 1): entropy medians.
    for d in [&ntp, &hitlist.dataset, &caida.dataset] {
        let cdf = entropy_cdf(d);
        println!(
            "{:<18} median IID entropy: {:.2}   (n = {})",
            d.name(),
            cdf.median().unwrap_or(0.0),
            cdf.len()
        );
    }
    println!(
        "\nThe passive corpus dwarfs both active datasets in addresses and\n\
         density but sees fewer ASes — the active/passive complementarity\n\
         the paper argues for."
    );
}
