//! Cross-crate integration: run the whole study on a tiny world and
//! assert the paper's qualitative results hold end to end.

use std::sync::OnceLock;

use ipv6_hitlists::hitlist::analysis::compare::table1;
use ipv6_hitlists::hitlist::analysis::entropy_dist::entropy_cdf;
use ipv6_hitlists::hitlist::analysis::lifetime::address_lifetimes;
use ipv6_hitlists::hitlist::analysis::tracking::TrackClass;
use ipv6_hitlists::hitlist::{Experiment, ExperimentConfig, Release48};

fn experiment() -> &'static Experiment {
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| Experiment::run(ExperimentConfig::tiny(20230831)))
}

#[test]
fn dataset_size_ordering_matches_paper() {
    let e = experiment();
    // NTP ≫ active datasets (paper: 370x and 681x).
    assert!(e.ntp.len() > 10 * e.hitlist.dataset.len());
    assert!(e.ntp.len() > 10 * e.caida.dataset.len());
    assert!(!e.hitlist.dataset.is_empty());
    assert!(!e.caida.dataset.is_empty());
}

#[test]
fn as_coverage_is_reversed() {
    let e = experiment();
    let t = table1(&e.world, &e.ntp, &[&e.hitlist.dataset, &e.caida.dataset]);
    // The paper's surprising reversal: the giant passive corpus sees
    // *fewer* ASes than either traceroute-based dataset.
    assert!(t.rows[0].asns < t.rows[1].asns);
    assert!(t.rows[0].asns < t.rows[2].asns);
}

#[test]
fn density_ordering_matches_paper() {
    let e = experiment();
    let ntp = e.ntp.density_per_48();
    let hl = e.hitlist.dataset.density_per_48();
    let ca = e.caida.dataset.density_per_48();
    assert!(ntp > hl, "NTP {ntp:.1} ≤ Hitlist {hl:.1}");
    assert!(hl >= ca, "Hitlist {hl:.1} < CAIDA {ca:.1}");
    assert!(ca < 3.0, "CAIDA should be ≈1 per /48, got {ca:.1}");
}

#[test]
fn entropy_ordering_matches_paper() {
    let e = experiment();
    let m = |d: &ipv6_hitlists::hitlist::Dataset| entropy_cdf(d).median().unwrap();
    let (ntp, hl, ca) = (m(&e.ntp), m(&e.hitlist.dataset), m(&e.caida.dataset));
    assert!(ntp > hl, "NTP median {ntp:.2} ≤ Hitlist {hl:.2}");
    assert!(hl > ca, "Hitlist median {hl:.2} ≤ CAIDA {ca:.2}");
    assert!(ca < 0.25, "CAIDA median should be near zero, got {ca:.2}");
}

#[test]
fn datasets_are_nearly_disjoint() {
    let e = experiment();
    let common = e.ntp.common_addresses(&e.hitlist.dataset);
    // Paper: the NTP corpus contains only 1.3% of Hitlist addresses.
    assert!(
        (common as f64) < 0.5 * e.hitlist.dataset.len() as f64,
        "{common} of {} shared",
        e.hitlist.dataset.len()
    );
}

#[test]
fn most_addresses_are_ephemeral() {
    let e = experiment();
    let lt = address_lifetimes(&e.ntp);
    assert!(lt.seen_once > 0.4, "seen-once {:.2}", lt.seen_once);
    assert!(lt.week_or_longer < 0.3);
    assert!(lt.six_months_or_longer <= lt.month_or_longer);
    assert!(lt.month_or_longer <= lt.week_or_longer);
}

#[test]
fn backscan_rates_match_paper_shape() {
    let e = experiment();
    let cr = e.backscan.client_response_rate();
    let rr = e.backscan.random_response_rate();
    assert!((0.35..0.95).contains(&cr), "client rate {cr:.2}");
    assert!(rr < cr / 3.0, "random {rr:.3} not ≪ client {cr:.3}");
    assert!(!e.backscan.aliased_64s.is_empty());
}

#[test]
fn alias_complementarity() {
    let e = experiment();
    let f = &e.alias_findings;
    // Backscanning must surface aliased client space with NTP clients in
    // it that the hitlist dataset essentially lacks (paper: 3.8M vs 23).
    assert!(f.ntp_clients_in_aliased > 0);
    assert!(f.hitlist_clients_in_aliased <= f.ntp_clients_in_aliased / 10);
}

#[test]
fn tracking_taxonomy_present() {
    let e = experiment();
    let t = &e.tracking;
    assert!(t.stats.unique_macs > 100);
    assert!(t.multi_prefix_macs > 10);
    let count = |c: TrackClass| {
        t.class_counts
            .iter()
            .find(|&&(k, _)| k == c)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    };
    // Static + prefix reassignment dominate; movement exists but small.
    let dominant = count(TrackClass::MostlyStatic) + count(TrackClass::PrefixReassignment);
    assert!(dominant * 2 > t.multi_prefix_macs);
    assert!(count(TrackClass::UserMovement) > 0);
    assert!(count(TrackClass::UserMovement) < t.multi_prefix_macs / 4);
}

#[test]
fn geolocation_attack_succeeds_and_validates() {
    let e = experiment();
    let g = &e.geolocation;
    assert!(!g.geolocated.is_empty(), "no devices geolocated");
    let med = g.validate(&e.world).expect("no validation overlap");
    assert!(med < 50.0, "median geolocation error {med:.0} km");
    // Germany must lead (AVM EUI-64 CPE + wardriving coverage).
    let hist = g.country_histogram(&e.world);
    assert_eq!(hist[0].0.as_str(), "DE", "{hist:?}");
}

#[test]
fn release_never_leaks_iids() {
    let e = experiment();
    let r = Release48::from_addr_set("corpus", &e.ntp.addr_set());
    assert!(r.verify_privacy_invariant());
    assert!(!r.is_empty());
    assert!((r.len() as u64) < r.source_addresses);
}
