//! Wire-level integration: the protocol codecs compose correctly across
//! crates — NTP request/response between real client and server state
//! machines, ICMPv6 checksums on the scanner receive path, and Yarrp path
//! reconstruction against the world's actual topology.

use ipv6_hitlists::netsim::{SimTime, World, WorldConfig};
use ipv6_hitlists::ntp::{Mode, NtpClient, NtpPacket, NtpTimestamp, Stratum2Server};
use ipv6_hitlists::scan::{scan, trace, WorldProber, YarrpConfig, Zmap6Config};

fn world() -> World {
    World::build(WorldConfig::tiny(), 314)
}

#[test]
fn ntp_exchange_through_real_packets() {
    let w = world();
    let mut server = Stratum2Server::new(w.vantage_points[3].clone());
    let now = SimTime(100_000);
    let src: std::net::Ipv6Addr = "2a00:7:8000:100::aa".parse().unwrap();

    let t1 = NtpTimestamp::from_sim(now, 111_111_111);
    let (client, request_wire) = NtpClient::start(t1);
    // The request is a well-formed mode-3 NTPv4 packet on the wire.
    let parsed = NtpPacket::decode(&request_wire).unwrap();
    assert_eq!(parsed.mode, Mode::Client);
    assert_eq!(parsed.version, 4);

    let response_wire = server.handle(&request_wire, src, now).unwrap();
    let t4 = NtpTimestamp::from_sim(now, 222_222_222);
    let sync = client.finish(&response_wire, t4).unwrap();
    assert_eq!(sync.server_stratum, 2);
    assert!(sync.delay >= 0.0);
    // The server logged exactly the source address (the paper's datum).
    assert_eq!(server.log().len(), 1);
    assert_eq!(server.log()[0].src, src);
}

#[test]
fn zmap_finds_every_router_interface() {
    let w = world();
    let prober = WorldProber::new(&w, 2);
    let targets: Vec<std::net::Ipv6Addr> = w
        .ases
        .iter()
        .flat_map(|a| a.router_ids.iter().filter_map(|&r| w.device(r).fixed_addr))
        .collect();
    let result = scan(&prober, &targets, &Zmap6Config::default());
    assert_eq!(result.stats.sent, targets.len() as u64);
    assert_eq!(result.stats.failed_validation, 0);
    // Routers answer ~98% of the time.
    let rate = result.stats.validated as f64 / targets.len() as f64;
    assert!(rate > 0.9, "router response rate {rate:.2}");
}

#[test]
fn yarrp_paths_agree_with_world_topology() {
    let w = world();
    let vp = &w.vantage_points[0];
    let prober = WorldProber::new(&w, vp.id);
    let t = SimTime(0);
    // Trace to a CPE WAN address (always resolvable, often responsive).
    let net = &w.networks[5];
    let dst = w.home_addr_at(net.cpe, t).unwrap();
    let expected = w.route_hops(vp.as_index, dst, t);
    let cfg = YarrpConfig {
        start: t,
        ttl_max: 12,
        ..Default::default()
    };
    let r = trace(&prober, &[dst], &cfg);
    let path = r.path_to(dst);
    // Every recovered hop must sit at its topological position.
    for (ttl, hop) in &path {
        assert_eq!(
            expected.get(*ttl as usize - 1),
            Some(hop),
            "hop mismatch at ttl {ttl}"
        );
    }
    // Rate-limited TTL-exceeded generation may drop some hops but most
    // of the real path must be recovered.
    assert!(
        path.len() * 10 >= expected.len() * 6,
        "{} of {} hops recovered",
        path.len(),
        expected.len()
    );
}

#[test]
fn backscan_week_has_fresh_addresses() {
    // The backscan runs months after the study window: privacy clients
    // must present different addresses by then (regression guard for the
    // epoch plumbing between netsim time and the collectors).
    let w = world();
    let dev = w
        .devices
        .iter()
        .find(|d| {
            d.strategy == ipv6_hitlists::netsim::addressing::IidStrategy::PrivacyRandom
                && d.home.is_some()
        })
        .unwrap();
    let a_study = w.home_addr_at(dev.id, SimTime(1000)).unwrap();
    let a_backscan = w
        .home_addr_at(dev.id, ipv6_hitlists::netsim::time::BACKSCAN_START)
        .unwrap();
    assert_ne!(a_study, a_backscan);
}
