//! Reproducibility: the entire study is a pure function of (config, seed).

use ipv6_hitlists::hitlist::NtpCorpus;
use ipv6_hitlists::netsim::{NtpEventStream, SimDuration, SimTime, World, WorldConfig};

#[test]
fn same_seed_same_world_same_corpus() {
    let a = World::build(WorldConfig::tiny(), 1234);
    let b = World::build(WorldConfig::tiny(), 1234);
    assert_eq!(a.device_count(), b.device_count());
    let ca = NtpCorpus::collect(&a, SimTime::START, SimDuration::days(10));
    let cb = NtpCorpus::collect(&b, SimTime::START, SimDuration::days(10));
    assert_eq!(ca.observations, cb.observations);
    assert_eq!(ca.served_per_vp, cb.served_per_vp);
}

#[test]
fn different_seed_different_corpus() {
    let a = World::build(WorldConfig::tiny(), 1);
    let b = World::build(WorldConfig::tiny(), 2);
    let ca = NtpCorpus::collect(&a, SimTime::START, SimDuration::days(5));
    let cb = NtpCorpus::collect(&b, SimTime::START, SimDuration::days(5));
    assert_ne!(ca.observations, cb.observations);
}

#[test]
fn event_stream_windows_compose() {
    // Events of [0, 10d) = events of [0, 5d) ∪ [5d, 10d) — the lazy
    // statistical generator must be consistent under windowing.
    let w = World::build(WorldConfig::tiny(), 77);
    let full: Vec<_> = NtpEventStream::new(&w, SimTime::START, SimDuration::days(10)).collect();
    let mut parts: Vec<_> = NtpEventStream::new(&w, SimTime::START, SimDuration::days(5)).collect();
    parts.extend(NtpEventStream::new(
        &w,
        SimTime(SimDuration::days(5).as_secs()),
        SimDuration::days(5),
    ));
    let key = |e: &ipv6_hitlists::netsim::NtpEvent| (e.device, e.t, u128::from(e.src));
    let mut a: Vec<_> = full.iter().map(key).collect();
    let mut b: Vec<_> = parts.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn probe_surface_is_stable_for_same_window() {
    let w = World::build(WorldConfig::tiny(), 42);
    let t = SimTime(12_345);
    let target = w.home_addr_at(w.networks[0].cpe, t).unwrap();
    let o1 = w.probe_echo(0, target, t);
    let o2 = w.probe_echo(0, target, t);
    assert_eq!(o1, o2);
}
