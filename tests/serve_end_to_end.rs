//! Cross-crate integration: collect a hitlist from the simulator,
//! publish it through the v6serve ingestion pipeline, and query the
//! resulting store — the full collect → publish → serve → query loop.

use std::sync::Arc;

use ipv6_hitlists::hitlist::collect::active::collect_hitlist;
use ipv6_hitlists::hitlist::HitlistService;
use ipv6_hitlists::netsim::{World, WorldConfig};
use ipv6_hitlists::scan::HitlistCampaignConfig;
use ipv6_hitlists::serve::{
    loadgen, HitlistStore, Ingestor, LoadSpec, PublicationUpdate, QueryEngine,
};

#[test]
fn collect_publish_serve_query() {
    // Collect: a 3-week campaign on a tiny world.
    let world = World::build(WorldConfig::tiny(), 909);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("integration", &hl.campaign);
    assert!(service.total_responsive() > 0, "campaign found nothing");

    // Publish: week by week through the concurrent ingestion pipeline.
    let store = Arc::new(HitlistStore::new("integration", 4));
    let ingest = Ingestor::default().spawn(store.clone());
    for snap in &service.snapshots {
        ingest.submit(PublicationUpdate::Week {
            week: snap.week,
            addresses: snap.new_responsive.clone(),
        });
    }
    ingest.submit(PublicationUpdate::Aliases {
        week: 0,
        prefixes: service.aliased.clone(),
    });
    let stats = ingest.finish();
    assert_eq!(stats.updates, service.snapshots.len() as u64 + 1);
    assert_eq!(stats.unique_addresses, service.total_responsive());
    assert_eq!(stats.epochs_published, stats.updates);

    // Serve: the final snapshot matches the service's cumulative set.
    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert_eq!(snap.len(), service.total_responsive());
    let engine = QueryEngine::new(store.clone());

    // Query: every published address answers, with its publication week.
    for weekly in &service.snapshots {
        for &a in &weekly.new_responsive {
            let ans = engine.lookup(a);
            assert!(ans.present, "{a} missing from the served snapshot");
            assert_eq!(ans.first_week, Some(weekly.week as u32));
        }
    }
    // The alias list is served too.
    for p in &service.aliased {
        assert!(engine.lookup(p.offset(1)).alias.is_some());
    }
    // Density totals across all /48s equal the full set.
    let mut nets: Vec<_> = service
        .responsive_as_of(u64::MAX)
        .iter()
        .map(|&a| ipv6_hitlists::addr::Prefix::of(a, 48))
        .collect();
    nets.dedup();
    let total: u64 = nets.iter().map(|p| engine.count_within(p)).sum();
    assert_eq!(total, service.total_responsive());

    // And a small deterministic load run stays consistent.
    let report = loadgen::run(
        &engine,
        &LoadSpec {
            queries: 50_000,
            threads: 2,
            ..Default::default()
        },
    );
    assert!(report.queries >= 50_000);
    assert_eq!(report.verification_failures, 0);
    assert!(report.present_hits > 0);
}
