//! Cross-crate integration: collect a hitlist from the simulator,
//! publish it through the v6serve ingestion pipeline, and query the
//! resulting store — the full collect → publish → serve → query loop.

use std::sync::Arc;

use ipv6_hitlists::addr::shard48;
use ipv6_hitlists::chaos::{ScriptedChaos, SiteScript};
use ipv6_hitlists::hitlist::collect::active::collect_hitlist;
use ipv6_hitlists::hitlist::{HitlistService, NtpCorpus};
use ipv6_hitlists::netsim::{SimDuration, SimTime, World, WorldConfig};
use ipv6_hitlists::scan::HitlistCampaignConfig;
use ipv6_hitlists::serve::{
    loadgen, HitlistStore, Ingestor, LoadSpec, PublicationUpdate, QueryEngine, ServeStatus,
};

#[test]
fn collect_publish_serve_query() {
    // Collect: a 3-week campaign on a tiny world.
    let world = World::build(WorldConfig::tiny(), 909);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("integration", &hl.campaign);
    assert!(service.total_responsive() > 0, "campaign found nothing");

    // Publish: week by week through the concurrent ingestion pipeline.
    let store = Arc::new(HitlistStore::new("integration", 4));
    let ingest = Ingestor::default().spawn(store.clone());
    for snap in &service.snapshots {
        ingest
            .submit(PublicationUpdate::Week {
                week: snap.week,
                addresses: snap.new_responsive.clone(),
            })
            .expect("ingest pipeline alive");
    }
    ingest
        .submit(PublicationUpdate::Aliases {
            week: 0,
            prefixes: service.aliased.clone(),
        })
        .expect("ingest pipeline alive");
    let stats = ingest.finish();
    assert_eq!(stats.updates, service.snapshots.len() as u64 + 1);
    assert_eq!(stats.unique_addresses, service.total_responsive());
    assert_eq!(stats.epochs_published, stats.updates);

    // Serve: the final snapshot matches the service's cumulative set.
    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert_eq!(snap.len(), service.total_responsive());
    let engine = QueryEngine::new(store.clone());

    // Query: every published address answers, with its publication week.
    for weekly in &service.snapshots {
        for &a in &weekly.new_responsive {
            let ans = engine.lookup(a);
            assert!(ans.present, "{a} missing from the served snapshot");
            assert_eq!(ans.first_week, Some(weekly.week as u32));
        }
    }
    // The alias list is served too.
    for p in &service.aliased {
        assert!(engine.lookup(p.offset(1)).alias.is_some());
    }
    // Density totals across all /48s equal the full set.
    let mut nets: Vec<_> = service
        .responsive_as_of(u64::MAX)
        .iter()
        .map(|&a| ipv6_hitlists::addr::Prefix::of(a, 48))
        .collect();
    nets.dedup();
    let total: u64 = nets.iter().map(|p| engine.count_within(p)).sum();
    assert_eq!(total, service.total_responsive());

    // And a small deterministic load run stays consistent.
    let report = loadgen::run(
        &engine,
        &LoadSpec {
            queries: 50_000,
            threads: 2,
            ..Default::default()
        },
    );
    assert!(report.queries >= 50_000);
    assert_eq!(report.verification_failures, 0);
    assert!(report.present_hits > 0);
}

#[test]
fn degraded_epochs_surface_end_to_end() {
    // The full publication mix — active weekly releases plus the passive
    // NTP corpus — with one shard's merges failing permanently: the
    // store must keep publishing degraded epochs, the query API must
    // flag stale answers, and the ingest report must say exactly what
    // was lost.
    //
    // The two sources split the shard space naturally: campaign
    // discoveries sit in router and hosting /48s whose shard key is 0,
    // while passive client addresses live in delegated /48s spread
    // across every key — so quarantining a passive shard leaves the
    // campaign (and most of the corpus) as survivors.
    let world = World::build(WorldConfig::tiny(), 909);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 3,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("degraded", &hl.campaign);
    let corpus = NtpCorpus::collect_with_threads(&world, SimTime::START, SimDuration::days(7), 4);

    // Everything published, deduplicated — the ground truth the served
    // content plus the loss report must add back up to.
    let mut union: Vec<u128> = service
        .responsive_as_of(u64::MAX)
        .iter()
        .map(|&a| u128::from(a))
        .chain(corpus.observations.iter().map(|o| o.addr))
        .collect();
    union.sort_unstable();
    union.dedup();

    // Quarantine the busiest non-zero shard so the campaign survives.
    let shard_bits = 3u32;
    let mut per_shard = vec![0u64; 1 << shard_bits];
    for &b in &union {
        per_shard[shard48(b, shard_bits)] += 1;
    }
    let target = (1..per_shard.len()).max_by_key(|&i| per_shard[i]).unwrap() as u32;
    let in_lost_shard = |b: u128| shard48(b, shard_bits) as u32 == target;
    let lost_count = per_shard[target as usize];
    assert!(
        lost_count > 0 && lost_count < union.len() as u64,
        "need both lost addresses and survivors; got {per_shard:?}"
    );

    let store = Arc::new(HitlistStore::new("degraded", 1 << shard_bits));
    let chaos = ScriptedChaos::new().with(format!("serve.shard.{target}"), SiteScript::permanent());
    // One worker keeps the merge order deterministic: the three weekly
    // epochs publish healthy (the campaign never touches the poisoned
    // shard), then the corpus epoch degrades.
    let ingest = Ingestor {
        workers: 1,
        queue_capacity: 8,
    }
    .spawn_chaos(store.clone(), Arc::new(chaos));
    for snap in &service.snapshots {
        ingest
            .submit(PublicationUpdate::Week {
                week: snap.week,
                addresses: snap.new_responsive.clone(),
            })
            .expect("ingest pipeline alive");
    }
    ingest
        .submit(PublicationUpdate::from_corpus(&corpus))
        .expect("ingest pipeline alive");
    let report = ingest.finish_report();

    // The loss is accounted, not silently dropped.
    assert!(!report.is_complete());
    assert_eq!(report.quarantined_shards, vec![target]);
    assert!(report.lost_updates.is_empty());
    assert_eq!(report.stats.epochs_published, 4);
    assert_eq!(report.stats.degraded_epochs, 1);
    let loss = report.loss().to_string();
    assert!(
        loss.starts_with(&format!("LOST serve.shard.{target} (")),
        "unexpected loss report: {loss}"
    );

    // The served epoch is degraded but internally consistent: what it
    // holds plus what the report lost is exactly what went in.
    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert_eq!(snap.missing_shards(), &[target]);
    assert_eq!(snap.len() + lost_count, union.len() as u64);
    assert!(store.metrics().degraded_publishes() > 0);

    // Readers get the surviving shards' answers plus a Degraded status;
    // every answer touching the stale shard is flagged.
    let engine = QueryEngine::new(store.clone());
    assert_eq!(
        engine.status(),
        ServeStatus::Degraded {
            missing_shards: vec![target]
        }
    );
    let queries: Vec<std::net::Ipv6Addr> =
        union.iter().map(|&b| std::net::Ipv6Addr::from(b)).collect();
    let batch = engine.batch_lookup(&queries);
    assert_eq!(
        batch.status,
        ServeStatus::Degraded {
            missing_shards: vec![target]
        }
    );
    for (&b, ans) in union.iter().zip(&batch.answers) {
        assert_eq!(ans.degraded, in_lost_shard(b), "{b:x}");
        assert_eq!(ans.present, !in_lost_shard(b), "{b:x}");
    }
    assert_eq!(batch.present + lost_count, union.len() as u64);
}
