//! Cross-crate integration: collect a hitlist from the simulator,
//! publish it into the serving store, and query it through the v6wire
//! front door — including over a faulty transport, where the client
//! reconnects and retries until the wire answers match direct snapshot
//! answers byte for byte.

use std::sync::Arc;
use std::time::Duration;

use ipv6_hitlists::chaos::{ScriptedChaos, SiteScript};
use ipv6_hitlists::hitlist::collect::active::collect_hitlist;
use ipv6_hitlists::hitlist::HitlistService;
use ipv6_hitlists::netsim::{World, WorldConfig};
use ipv6_hitlists::scan::HitlistCampaignConfig;
use ipv6_hitlists::serve::{
    sample_present, HitlistStore, Ingestor, PublicationUpdate, QueryEngine,
};
use ipv6_hitlists::wire::proto::{Request, Response};
use ipv6_hitlists::wire::{
    duplex, serve_request, AdmissionConfig, ChaosTransport, WireClient, WireServer,
};

/// Collects a small campaign and publishes it through the ingestion
/// pipeline, returning the store the front door will serve from.
fn published_store() -> Arc<HitlistStore> {
    let world = World::build(WorldConfig::tiny(), 909);
    let hl = collect_hitlist(
        &world,
        0,
        &HitlistCampaignConfig {
            weeks: 2,
            ..Default::default()
        },
    );
    let service = HitlistService::from_campaign("wire-e2e", &hl.campaign);
    assert!(service.total_responsive() > 0, "campaign found nothing");
    let store = Arc::new(HitlistStore::new("wire-e2e", 4));
    let ingest = Ingestor::default().spawn(store.clone());
    for snap in &service.snapshots {
        ingest
            .submit(PublicationUpdate::Week {
                week: snap.week,
                addresses: snap.new_responsive.clone(),
            })
            .expect("ingest pipeline alive");
    }
    ingest
        .submit(PublicationUpdate::Aliases {
            week: 0,
            prefixes: service.aliased.clone(),
        })
        .expect("ingest pipeline alive");
    ingest.finish();
    store
}

#[test]
fn wire_answers_match_direct_queries() {
    let store = published_store();
    let snap = store.snapshot();
    let engine = QueryEngine::new(store.clone());
    let server = WireServer::new(engine, AdmissionConfig::default(), 0);

    let present: Vec<u128> = sample_present(&snap, 64);
    assert!(!present.is_empty());

    let mut conn = server.open_connection(1);
    let (client_end, mut server_end) = duplex();
    let mut client = WireClient::connect(client_end, 0).expect("connect");

    // Pipeline one of each query shape, plus a batch over the sample.
    let mut requests = vec![
        Request::Status,
        Request::NewSince { week: 1 },
        Request::Batch {
            addrs: present.clone(),
        },
    ];
    for &a in present.iter().take(8) {
        requests.push(Request::Lookup { addr: a });
        requests.push(Request::Membership { addr: a });
    }
    for req in &requests {
        client.send(req, 0).expect("send");
    }
    conn.pump(&mut server_end, 0).expect("pump");
    let responses = client.poll(0).expect("poll");
    assert_eq!(responses.len(), requests.len());

    // Every wire answer equals the pure dispatch against the same
    // snapshot: the transport, framing, and admission layers are
    // answer-transparent for an admitted steady client.
    for ((_, got), req) in responses.iter().zip(&requests) {
        assert_eq!(got, &serve_request(&snap, req.clone()), "for {req:?}");
    }
    match &responses[2].1 {
        Response::Batch {
            answers,
            present: n,
            ..
        } => {
            assert_eq!(answers.len(), present.len());
            assert_eq!(*n, present.len() as u64, "sampled addresses all present");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn chaos_corruption_and_loss_survive_reconnect_and_retry() {
    let store = published_store();
    let snap = store.snapshot();
    let engine = QueryEngine::new(store);
    let server = WireServer::new(engine, AdmissionConfig::default(), 0);

    let probe = sample_present(&snap, 1)[0];
    let want = serve_request(&snap, Request::Lookup { addr: probe });

    // Each attempt sends two pings then the lookup, so the lookup is
    // the transport's chunk 3 (preamble = 0). Attempt 0: the lookup
    // frame is corrupted in transit — the flip lands in the payload,
    // the server's checksum catches it, and the connection closes.
    // Attempt 1: the lookup frame is lost. Attempt 2: clean. Sites are
    // sequence-numbered per transport, so each attempt's fate is
    // scripted exactly.
    let chaos = ScriptedChaos::new()
        .with("wire.c2s0.3", SiteScript::permanent_panic())
        .with("wire.c2s1.3", SiteScript::permanent());

    let mut answer = None;
    let mut attempts = 0u32;
    while answer.is_none() && attempts < 5 {
        let (client_end, mut server_end) = duplex();
        let faulty = ChaosTransport::new(client_end, chaos.clone(), format!("c2s{attempts}"));
        let mut conn = server.open_connection(100 + u64::from(attempts));
        let mut client = WireClient::connect(faulty, 0).expect("connect");
        client.send(&Request::Ping, 0).expect("send");
        client.send(&Request::Ping, 0).expect("send");
        let lookup_id = client
            .send(&Request::Lookup { addr: probe }, 0)
            .expect("send");
        // Bounded pump/poll rounds; a lost request never answers and a
        // corrupted one closes the connection — both end in a retry.
        'rounds: for round in 0..4u64 {
            let now = round * 1_000;
            if conn.pump(&mut server_end, now).is_err() {
                break;
            }
            match client.poll(now) {
                Ok(responses) => {
                    for (id, resp) in responses {
                        if id == lookup_id {
                            answer = Some(resp);
                            break 'rounds;
                        }
                    }
                }
                Err(_) => break, // protocol violation or closed: reconnect
            }
        }
        attempts += 1;
    }

    assert_eq!(attempts, 3, "corruption, loss, then a clean attempt");
    assert_eq!(answer.expect("retry converged"), want);
    // The corrupted attempt is visible as a protocol error; nothing was
    // silently mis-served.
    let metrics = server.metrics().registry().snapshot();
    assert_eq!(metrics.counter("wire.conn.protocol_errors"), Some(1));
}

#[test]
fn stalled_requests_answer_late_but_correct() {
    let store = published_store();
    let snap = store.snapshot();
    let engine = QueryEngine::new(store);
    let server = WireServer::new(engine, AdmissionConfig::default(), 0);

    let probe = sample_present(&snap, 1)[0];
    let want = serve_request(&snap, Request::Lookup { addr: probe });

    // The request frame stalls 5 ms in transit (slow peer): invisible
    // to the server until release, answered correctly afterwards.
    let chaos = ScriptedChaos::new().with(
        "wire.slow.1",
        SiteScript::ok().with_stall(Duration::from_millis(5)),
    );
    let (client_end, mut server_end) = duplex();
    let mut conn = server.open_connection(7);
    let mut client =
        WireClient::connect(ChaosTransport::new(client_end, chaos, "slow"), 0).expect("connect");
    client
        .send(&Request::Lookup { addr: probe }, 0)
        .expect("send");

    conn.pump(&mut server_end, 1_000).expect("pump");
    assert!(client.poll(1_000).expect("poll").is_empty(), "not due yet");

    // Past the stall deadline the client's recv releases the chunk.
    assert!(client.poll(6_000).expect("poll").is_empty());
    conn.pump(&mut server_end, 6_000).expect("pump");
    let responses = client.poll(6_000).expect("poll");
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].1, want);
}
