//! Cluster acceptance: the PR-9 convergence invariant, end to end.
//!
//! A seeded run drives the full multi-node stack — weekly publishes
//! replicated as framed deltas over `v6wire` links, a node death and
//! crash-recovery restart, a network partition that is later healed —
//! and then pins the two contracts the cluster exists to keep:
//!
//! 1. **Convergence**: once faults heal, every replica of every
//!    partition reaches a byte-identical epoch `content_checksum`.
//! 2. **Honest staleness**: every hedged read answered below the
//!    committed epoch was labeled degraded, never fresh.

use std::collections::BTreeMap;
use std::sync::Arc;

use ipv6_hitlists::cluster::{partition_of, Cluster, ClusterConfig, PublishOutcome, ReadStatus};
use ipv6_hitlists::netsim::rng::hash64;

/// Rejection-samples an address that routes to partition `pid`: the
/// variable bits live inside the top /48 (the partition key), so a
/// handful of draws always lands.
fn addr_in(seed: u64, pid: u32, partitions: u32, tag: u64) -> u128 {
    for j in 0u64..4096 {
        let h = hash64(seed ^ tag ^ (j << 52), b"cluster-e2e-addr");
        let bits = (0x2001u128 << 112) | (u128::from(h) << 40) | u128::from(tag & 0xffff);
        if partition_of(bits, partitions) == pid {
            return bits;
        }
    }
    unreachable!("rejection sampling must land within 4096 draws")
}

/// Cumulative weekly content for one partition.
fn entries_through(seed: u64, pid: u32, partitions: u32, week: u64) -> Vec<(u128, u32)> {
    (1..=week)
        .flat_map(|w| (0..4u64).map(move |i| (w, i)))
        .map(|(w, i)| {
            let tag = (u64::from(pid) << 20) | (w << 8) | i;
            (addr_in(seed, pid, partitions, tag), w as u32)
        })
        .collect()
}

/// Publishes `week` to every partition and settles a few rounds.
fn publish_week(cluster: &mut Cluster, seed: u64, week: u64) -> u64 {
    let partitions = cluster.config().partitions;
    let mut committed = 0;
    for pid in 0..partitions {
        if let PublishOutcome::Committed { .. } = cluster.publish(
            pid,
            week,
            entries_through(seed, pid, partitions, week),
            vec![],
        ) {
            committed += 1;
        }
    }
    for _ in 0..3 {
        cluster.pump_round();
    }
    committed
}

#[test]
fn node_death_and_healed_partition_converge_with_honest_reads() {
    let seed = 0xc1u64;
    let mut cluster = Cluster::new(ClusterConfig::new(5, 3, seed)).expect("scratch dirs");
    let partitions = cluster.config().partitions;

    // Two healthy weeks, then a node dies mid-campaign.
    assert_eq!(publish_week(&mut cluster, seed, 1), u64::from(partitions));
    publish_week(&mut cluster, seed, 2);
    cluster.kill("n1");
    cluster.pump_round();

    // Publishes continue around the corpse; then the survivors are
    // split from the rest (the client rides with group 0).
    publish_week(&mut cluster, seed, 3);
    let groups: BTreeMap<String, u8> = [("n0", 0u8), ("n1", 0), ("n2", 0), ("n3", 1), ("n4", 1)]
        .into_iter()
        .map(|(n, g)| (n.to_string(), g))
        .collect();
    cluster.set_partition(&groups);
    publish_week(&mut cluster, seed, 4);

    // Reads under the partition: whatever comes back, an answer below
    // the committed epoch must carry the degraded label.
    let mut answered = 0;
    for pid in 0..partitions {
        let out = cluster.read(addr_in(
            seed,
            pid,
            partitions,
            (u64::from(pid) << 20) | (1 << 8),
        ));
        if out.status != ReadStatus::Unavailable {
            answered += 1;
            if out.epoch < out.committed_epoch {
                assert_eq!(
                    out.status,
                    ReadStatus::Degraded,
                    "stale answer for p{pid} not labeled degraded"
                );
            }
        }
    }
    assert!(answered > 0, "partitioned cluster answered nothing at all");

    // Heal, publish once more, converge: every replica byte-identical.
    cluster.heal();
    publish_week(&mut cluster, seed, 5);
    let report = cluster.converge(256);
    assert!(report.converged, "replicas did not converge:\n{report}");
    for p in &report.partitions {
        assert!(p.in_sync, "p{} replicas disagree after heal", p.partition);
        assert_eq!(p.replicas.len(), 3, "p{} lost a replica", p.partition);
    }

    // The audited invariant, over every hedged read the run issued.
    assert_eq!(
        cluster.unlabeled_stale_reads(),
        0,
        "a stale answer was labeled fresh"
    );

    // The kill really went through crash recovery.
    let events = cluster.events();
    assert!(
        events.iter().any(|e| e.contains(": KILL n1")),
        "no kill event"
    );
    assert!(
        events.iter().any(|e| e.contains(": RESTART n1")),
        "n1 never restarted through recovery"
    );

    // After convergence a fresh read serves the committed epoch.
    let out = cluster.read(addr_in(seed, 0, partitions, 1 << 8));
    assert_eq!(out.status, ReadStatus::Fresh);
    assert!(out.present, "week-1 address lost after convergence");
    assert_eq!(out.epoch, out.committed_epoch);
}

#[test]
fn chaotic_fabric_still_converges_byte_identical() {
    use ipv6_hitlists::chaos::{FaultPlan, FaultSpec};

    let seed = 0x5eedu64;
    let plan = FaultPlan::new(
        seed,
        FaultSpec {
            stall_ms: 1,
            ..FaultSpec::with_permanent(0.10, 0.4)
        },
    );
    let cfg = ClusterConfig::new(4, 3, seed);
    let partitions = cfg.partitions;
    let mut cluster = Cluster::with_chaos(cfg, Arc::new(plan)).expect("scratch dirs");

    for week in 1..=4u64 {
        publish_week(&mut cluster, seed, week);
    }
    let report = cluster.converge(512);
    assert!(report.converged, "chaotic run did not converge:\n{report}");
    assert_eq!(report.partitions.len(), partitions as usize);
    assert_eq!(cluster.unlabeled_stale_reads(), 0);
}
