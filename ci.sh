#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q --workspace (V6_THREADS=1) =="
V6_THREADS=1 cargo test -q --workspace

echo "== cargo test -q --workspace (V6_THREADS=4) =="
V6_THREADS=4 cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo doc --no-deps (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== chaos suite: transient fault plans reproduce the fault-free digest =="
for seed in 7 19 1041; do
  V6HL_SCALE=tiny V6_CHAOS_MODE=transient V6_CHAOS_SEED="$seed" V6_THREADS=4 \
    cargo run --release -q -p v6bench --bin chaos
done

echo "== chaos suite: permanent-fault loss report matches the golden file =="
V6HL_SCALE=tiny V6_CHAOS_MODE=permanent V6_CHAOS_SEED=11 V6_THREADS=4 \
  cargo run --release -q -p v6bench --bin chaos 2>/dev/null | grep '^LOST ' \
  | diff -u tests/golden/chaos_loss_seed11.txt -

echo "== crash-recovery matrix: kill-and-recover matches the golden reports =="
for seed in 5 23; do
  V6_CHAOS_MODE=recovery V6_CHAOS_SEED="$seed" \
    cargo run --release -q -p v6bench --bin chaos 2>/dev/null | grep '^RECOVER' \
    | diff -u "tests/golden/store_recovery_seed${seed}.txt" -
done

echo "== cluster chaos matrix: kill/partition runs match the golden fixtures =="
for seed in 41 97; do
  V6_CHAOS_MODE=cluster V6_CHAOS_SEED="$seed" \
    cargo run --release -q -p v6bench --bin chaos 2>/dev/null \
    | diff -u "tests/golden/cluster_seed${seed}.txt" -
done

echo "== stream chaos matrix: faulty-delivery operator runs match the golden fixtures =="
for seed in 13 27; do
  V6_CHAOS_MODE=stream V6_CHAOS_SEED="$seed" \
    cargo run --release -q -p v6bench --bin chaos 2>/dev/null \
    | diff -u "tests/golden/stream_seed${seed}.txt" -
done

echo "== wire chaos: faulty-transport reconnect/retry converges on exact answers =="
V6_CHAOS_MODE=wire V6_CHAOS_SEED=31 \
  cargo run --release -q -p v6bench --bin chaos 2>/dev/null | grep -q '^CHAOS_OK mode=wire'

echo "== wire format v1 is byte-pinned to the golden fixtures =="
cargo test -q -p v6wire --test golden_wire
cargo test -q -p v6wire --test fuzz_codec

echo "== digest equivalence at V6_THREADS={1,4} =="
for t in 1 4; do
  V6_THREADS="$t" cargo test -q -p v6hitlist --test parallel_equivalence
  V6_THREADS="$t" cargo test -q -p v6hitlist --test metrics_invariance
done

echo "== pipeline bench smoke (tiny, V6_THREADS=2) =="
rm -f BENCH_pipeline.json
V6HL_SCALE=tiny V6_THREADS=2 cargo run --release -q -p v6bench --bin pipeline
test -s BENCH_pipeline.json
grep -q '"digest"' BENCH_pipeline.json
grep -q '"total_threadsn_ms"' BENCH_pipeline.json
grep -q '"cutoffs"' BENCH_pipeline.json
grep -q '"metrics"' BENCH_pipeline.json

echo "== perf smoke: parallel run must not regress the pipeline =="
# The persistent pool's overhead budget: parallel wall time may be at
# most ~11% worse than sequential even on a single-core runner (where
# no speedup is possible). The threshold is deliberately generous to
# keep the gate deadline-proof against noisy CI boxes.
speedup=$(grep -o '"speedup": [0-9.]*' BENCH_pipeline.json | head -1 | tr -dc '0-9.')
cores=$(grep -o '"cores": [0-9]*' BENCH_pipeline.json | head -1 | tr -dc '0-9')
echo "pipeline speedup: ${speedup}x on ${cores} core(s)"
if [ "${cores}" = "1" ]; then
  echo "SKIP: single-core runner — parallel speedup is not measurable, gate waived"
else
  awk -v s="$speedup" 'BEGIN { exit !(s >= 0.9) }' \
    || { echo "FAIL: pipeline speedup ${speedup} < 0.9 (parallel overhead regression)"; exit 1; }
fi

echo "== serve bench smoke (load run + persistence on/off + cold recovery) =="
rm -f BENCH_serve.json
V6SERVE_QUERIES=200000 cargo run --release -q -p v6bench --bin serve >/dev/null
test -s BENCH_serve.json
grep -q '"cores"' BENCH_serve.json
grep -q '"durable_publish_ms"' BENCH_serve.json
grep -q '"cold_recovery_ms"' BENCH_serve.json
grep -q 'store.log.appends' BENCH_serve.json
grep -q 'store.recover.replayed' BENCH_serve.json
grep -q 'serve.store.bytes.raw' BENCH_serve.json
grep -q 'serve.store.bytes.compressed' BENCH_serve.json
# Front-door rows: the adversarial wire mix ran, the flooder was
# classified, and every refusal is accounted for in the wire metrics.
grep -q '"wire"' BENCH_serve.json
grep -q '"adversarial"' BENCH_serve.json
grep -q '"flood_classified_at_frame"' BENCH_serve.json
grep -q 'wire.admit.throttled' BENCH_serve.json
grep -q 'wire.shed.global_overload' BENCH_serve.json
# Cluster rows: the multi-node run replicated, killed/recovered a node,
# and converged to byte-identical replicas with an honest read audit.
grep -q '"cluster"' BENCH_serve.json
grep -q '"converged": true' BENCH_serve.json
grep -q '"unlabeled_stale_reads": 0' BENCH_serve.json
grep -q '"combined_checksum"' BENCH_serve.json
grep -q 'cluster.repl.deltas_applied' BENCH_serve.json
grep -q 'fabric.cluster.net.chunks' BENCH_serve.json
# Derived throughput rows ride the persistence and cluster blocks.
grep -q '"addrs_per_sec"' BENCH_serve.json
# Stream rows: incremental operators matched the batch rebuild at every
# scale, and the per-epoch cost stayed flat while batch grew.
grep -q '"stream"' BENCH_serve.json
grep -q '"incremental_ms"' BENCH_serve.json
grep -q '"batch_ms"' BENCH_serve.json
grep -q '"batch_growth"' BENCH_serve.json
grep -q '"checksums_equal": true' BENCH_serve.json
grep -q '"flat": true' BENCH_serve.json
grep -q 'stream.op.applied' BENCH_serve.json

echo "== kernels bench emits BENCH_kernels.json =="
rm -f BENCH_kernels.json
cargo bench -q -p v6bench --bench kernels >/dev/null
test -s BENCH_kernels.json
grep -q '"kway_merge"' BENCH_kernels.json
grep -q '"sort_comparison"' BENCH_kernels.json
grep -q '"sort_radix"' BENCH_kernels.json
grep -q '"sorted_vec"' BENCH_kernels.json
grep -q '"compressed_run"' BENCH_kernels.json
grep -q '"bloom_fronted"' BENCH_kernels.json

echo "== observability smoke (trace tree + metrics exposition) =="
V6HL_SCALE=tiny V6_THREADS=2 V6_TRACE=1 \
  cargo run --release -q -p v6bench --bin obs

echo "CI OK"
