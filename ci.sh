#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
