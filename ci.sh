#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q --workspace (V6_THREADS=1) =="
V6_THREADS=1 cargo test -q --workspace

echo "== cargo test -q --workspace (V6_THREADS=4) =="
V6_THREADS=4 cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== pipeline bench smoke (tiny, V6_THREADS=2) =="
rm -f BENCH_pipeline.json
V6HL_SCALE=tiny V6_THREADS=2 cargo run --release -q -p v6bench --bin pipeline
test -s BENCH_pipeline.json
grep -q '"digest"' BENCH_pipeline.json
grep -q '"total_threadsn_ms"' BENCH_pipeline.json

echo "CI OK"
