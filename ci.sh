#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q --workspace (V6_THREADS=1) =="
V6_THREADS=1 cargo test -q --workspace

echo "== cargo test -q --workspace (V6_THREADS=4) =="
V6_THREADS=4 cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo doc --no-deps (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== chaos suite: transient fault plans reproduce the fault-free digest =="
for seed in 7 19 1041; do
  V6HL_SCALE=tiny V6_CHAOS_MODE=transient V6_CHAOS_SEED="$seed" V6_THREADS=4 \
    cargo run --release -q -p v6bench --bin chaos
done

echo "== chaos suite: permanent-fault loss report matches the golden file =="
V6HL_SCALE=tiny V6_CHAOS_MODE=permanent V6_CHAOS_SEED=11 V6_THREADS=4 \
  cargo run --release -q -p v6bench --bin chaos 2>/dev/null | grep '^LOST ' \
  | diff -u tests/golden/chaos_loss_seed11.txt -

echo "== pipeline bench smoke (tiny, V6_THREADS=2) =="
rm -f BENCH_pipeline.json
V6HL_SCALE=tiny V6_THREADS=2 cargo run --release -q -p v6bench --bin pipeline
test -s BENCH_pipeline.json
grep -q '"digest"' BENCH_pipeline.json
grep -q '"total_threadsn_ms"' BENCH_pipeline.json
grep -q '"metrics"' BENCH_pipeline.json

echo "== observability smoke (trace tree + metrics exposition) =="
V6HL_SCALE=tiny V6_THREADS=2 V6_TRACE=1 \
  cargo run --release -q -p v6bench --bin obs

echo "CI OK"
